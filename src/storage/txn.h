#ifndef LDV_STORAGE_TXN_H_
#define LDV_STORAGE_TXN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace ldv::storage {

/// Undo scope of one explicit transaction (BEGIN .. COMMIT/ROLLBACK).
///
/// Begin() captures a mark on every table (forcing version tracking so
/// UPDATE/DELETE pre-images reach the archive) plus the database statement
/// sequence. Rollback() restores exactly the captured state — values,
/// tombstones, rowid allocation and the statement sequence — which keeps a
/// rolled-back transaction invisible to WAL redo determinism: a redo of the
/// log (which never contains aborted transactions) produces the same rowids
/// and version stamps the live engine handed out after the rollback.
///
/// The engine serializes statements, holds off DDL while a scope is active,
/// and runs at most one scope at a time, so the captured table set is stable.
class TxnScope {
 public:
  TxnScope() = default;

  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;

  /// Captures marks for every table in `db`. No-op guard: Begin on an
  /// active scope is an internal error.
  Status Begin(Database* db);

  bool active() const { return db_ != nullptr; }

  /// Keeps the transaction's effects; restores per-table tracking flags.
  void Commit();

  /// Restores the captured state on every table and the statement sequence.
  Status Rollback();

 private:
  Database* db_ = nullptr;
  int64_t stmt_seq_mark_ = 0;
  std::vector<std::pair<Table*, TableTxnMark>> marks_;
};

}  // namespace ldv::storage

#endif  // LDV_STORAGE_TXN_H_
