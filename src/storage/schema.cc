#include "storage/schema.h"

#include "util/strings.h"

namespace ldv::storage {

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddColumn(Column column) {
  if (IndexOf(column.name) >= 0) {
    return Status::AlreadyExists("column exists: " + column.name);
  }
  columns_.push_back(std::move(column));
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

void Schema::Serialize(BufferWriter* w) const {
  w->PutVarint(static_cast<int64_t>(columns_.size()));
  for (const Column& c : columns_) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
}

Result<Schema> Schema::Deserialize(BufferReader* r) {
  LDV_ASSIGN_OR_RETURN(int64_t n, r->GetVarint());
  // Each column costs at least two bytes; anything larger than the
  // remaining payload is corruption (keeps reserve() sane on fuzzed input).
  if (n < 0 || static_cast<uint64_t>(n) > r->remaining()) {
    return Status::IOError("corrupt column count in serialized schema");
  }
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Column c;
    LDV_ASSIGN_OR_RETURN(c.name, r->GetString());
    LDV_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    c.type = static_cast<ValueType>(type);
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

bool IsProvPseudoColumn(std::string_view name) {
  return EqualsIgnoreCase(name, kProvRowIdColumn) ||
         EqualsIgnoreCase(name, kProvVersionColumn) ||
         EqualsIgnoreCase(name, kProvUsedByColumn) ||
         EqualsIgnoreCase(name, kProvProcessColumn);
}

}  // namespace ldv::storage
