#include "storage/txn.h"

namespace ldv::storage {

Status TxnScope::Begin(Database* db) {
  if (active()) {
    return Status::Internal("TxnScope::Begin with a transaction already open");
  }
  db_ = db;
  stmt_seq_mark_ = db->current_statement_seq();
  marks_.clear();
  for (const std::string& name : db->TableNames()) {
    Table* table = db->FindTable(name);
    marks_.emplace_back(table, table->BeginTxnCapture());
  }
  return Status::Ok();
}

void TxnScope::Commit() {
  for (auto& [table, mark] : marks_) table->CommitTxnCapture(mark);
  marks_.clear();
  db_ = nullptr;
}

Status TxnScope::Rollback() {
  Status status = Status::Ok();
  for (auto& [table, mark] : marks_) {
    Status rolled = table->RollbackToMark(mark);
    if (!rolled.ok() && status.ok()) status = rolled;
  }
  if (db_ != nullptr) db_->set_statement_seq(stmt_seq_mark_);
  marks_.clear();
  db_ = nullptr;
  return status;
}

}  // namespace ldv::storage
