#ifndef LDV_STORAGE_VALUE_H_
#define LDV_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "util/serde.h"

namespace ldv::storage {

/// Column/value types supported by the engine. Dates are stored as ISO-8601
/// strings (lexicographic order equals chronological order), which is all
/// the TPC-H workload needs.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view ValueTypeName(ValueType type);

/// Parses a SQL type name (INT, BIGINT, DOUBLE, DECIMAL, VARCHAR, TEXT,
/// DATE, ...) into a ValueType.
Result<ValueType> ValueTypeFromSqlName(std::string_view name);

/// A single SQL value: NULL, 64-bit integer, double, or string.
class Value {
 public:
  /// NULL by default.
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value Str(std::string v);
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Typed accessors; type must match.
  int64_t AsInt() const;
  double AsDouble() const;  // accepts kInt64 too (widening)
  const std::string& AsString() const;

  /// Truthiness for WHERE clauses: non-zero numeric; NULL is false.
  bool IsTruthy() const;

  /// Three-way comparison with numeric coercion between int and double.
  /// NULLs sort first. Comparing a string with a number is an error.
  Result<int> Compare(const Value& other) const;

  /// Structural equality (same type and payload; int 1 != double 1.0).
  bool operator==(const Value& other) const;

  /// Display / CSV form. NULL renders as empty string; see FromText.
  std::string ToText() const;

  /// Parses a CSV/text field into a value of `type`. Empty string parses to
  /// NULL for numeric types and to the empty string for kString.
  static Result<Value> FromText(ValueType type, std::string_view text);

  void Serialize(BufferWriter* w) const;
  static Result<Value> Deserialize(BufferReader* r);

  /// Hash compatible with operator==.
  uint64_t Hash() const;

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
};

/// A row of values.
using Tuple = std::vector<Value>;

/// Per-type hash primitives. `Value::Hash()` and the vectorized kernels are
/// both built on these so a columnar cell hashes to exactly the same bits as
/// the equivalent `Value` — hash-join/aggregate/distinct tables built from
/// either representation agree. Kept `inline` so the hot kernels pay no call.
inline constexpr uint64_t kNullValueHash = 0x9E3779B97F4A7C15ULL;
inline constexpr uint64_t kTupleHashSeed = 14695981039346656037ULL;

uint64_t HashInt64Value(int64_t v);
uint64_t HashDoubleValue(double v);
uint64_t HashStringValue(std::string_view v);

/// Folds one value hash into a running tuple hash (order-sensitive); start
/// from kTupleHashSeed. Matches HashTuple exactly.
inline uint64_t CombineValueHash(uint64_t h, uint64_t value_hash) {
  return h ^ (value_hash + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

/// Hash of a whole tuple (order-sensitive).
uint64_t HashTuple(const Tuple& t);

/// Renders "(v1, v2, ...)".
std::string TupleToText(const Tuple& t);

}  // namespace ldv::storage

#endif  // LDV_STORAGE_VALUE_H_
