#ifndef LDV_STORAGE_DATABASE_H_
#define LDV_STORAGE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace ldv::storage {

/// Catalog of tables plus the database-wide statement sequence used to stamp
/// tuple versions (the prov_v attribute). Single-threaded engine; the server
/// layer serializes access.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table. Fails with AlreadyExists unless
  /// `if_not_exists`.
  Result<Table*> CreateTable(const std::string& name, Schema schema,
                             bool if_not_exists = false);

  Status DropTable(const std::string& name);

  /// Case-insensitive lookup; nullptr when absent.
  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;
  Table* FindTableById(int32_t id);
  const Table* FindTableById(int32_t id) const;

  /// Table names in creation order.
  std::vector<std::string> TableNames() const;

  /// All tables in creation order (ids ascending) — catalog iteration for
  /// the engine's lock hierarchy and archive GC sweeps.
  std::vector<Table*> Tables();

  /// Next statement sequence number (monotone, starts at 1). Every executed
  /// statement obtains one; DML stamps created tuple versions with it.
  int64_t NextStatementSeq() { return ++stmt_seq_; }
  int64_t current_statement_seq() const { return stmt_seq_; }
  void set_statement_seq(int64_t seq) { stmt_seq_ = seq; }

  /// Process-unique identity of this Database object. Part of plan-cache
  /// keys, so cached plans never leak across databases (including a fresh
  /// Database allocated at the address of a destroyed one).
  int64_t instance_id() const { return instance_id_; }

  /// Catalog version: bumped by CREATE/DROP TABLE (internally), and by the
  /// executor for ALTER TABLE, CREATE INDEX and COPY. Plan-cache entries
  /// are stamped with it and treated as stale once it moves. Atomic because
  /// concurrent readers validate cache entries under a shared catalog lock
  /// while COPY bumps under its table lock only.
  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_acquire);
  }
  void BumpSchemaVersion() {
    schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Turns MVCC retention (Table::set_mvcc_retention) on for every current
  /// table and every table created afterwards. The engine enables this when
  /// it starts serving snapshot reads; WAL redo and raw-Database users keep
  /// it off so their archives stay empty without tracking.
  void SetMvccRetention(bool enabled);
  bool mvcc_retention() const { return mvcc_retention_; }

  int64_t TotalLiveRows() const;
  int64_t ApproxBytes() const;

 private:
  static int64_t NextInstanceId();

  std::vector<std::unique_ptr<Table>> tables_;  // creation order
  int32_t next_table_id_ = 1;
  int64_t stmt_seq_ = 0;
  bool mvcc_retention_ = false;
  const int64_t instance_id_ = NextInstanceId();
  std::atomic<uint64_t> schema_version_{0};
};

}  // namespace ldv::storage

#endif  // LDV_STORAGE_DATABASE_H_
