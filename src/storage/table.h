#ifndef LDV_STORAGE_TABLE_H_
#define LDV_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace ldv::storage {

/// Stable identifier of a row within a table; never reused.
using RowId = int64_t;

/// Identity of one tuple *version* — the unit of DB provenance in the P_Lin
/// model (paper §IV-D). An UPDATE creates a new version of the same rowid.
struct TupleVid {
  int32_t table_id = -1;
  RowId rowid = -1;
  int64_t version = 0;

  bool operator==(const TupleVid& other) const {
    return table_id == other.table_id && rowid == other.rowid &&
           version == other.version;
  }
  bool operator<(const TupleVid& other) const {
    if (table_id != other.table_id) return table_id < other.table_id;
    if (rowid != other.rowid) return rowid < other.rowid;
    return version < other.version;
  }

  std::string ToString() const;
};

struct TupleVidHash {
  size_t operator()(const TupleVid& v) const {
    uint64_t h = static_cast<uint64_t>(v.table_id) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(v.rowid) + 0x9E3779B97F4A7C15ULL + (h << 6);
    h ^= static_cast<uint64_t>(v.version) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// One stored tuple version together with its provenance metadata
/// (the prov_rowid / prov_v / prov_usedby / prov_p attributes of §VII-B).
struct RowVersion {
  RowId rowid = -1;
  /// Statement sequence number of the statement that created this version.
  int64_t version = 0;
  /// Last query id that read this version under provenance auditing (0 =
  /// never).
  int64_t used_by_query = 0;
  /// Process id of that query's client (0 = never).
  int64_t used_by_process = 0;
  /// Statement sequence of the statement that replaced this version (set
  /// when it is archived; 0 while live). Monotone along the archive, which
  /// is what lets snapshot GC drop a prefix (DESIGN.md §12). Runtime-only:
  /// never persisted.
  int64_t superseded = 0;
  Tuple values;
  bool deleted = false;
};

/// Per-table state captured at BEGIN so an explicit transaction can be
/// rolled back. While the marks are held, version tracking is forced on, so
/// every superseded row version lands in the archive and can be restored.
struct TableTxnMark {
  size_t rows_size = 0;
  size_t archive_size = 0;
  RowId next_rowid = 1;
  int64_t live_count = 0;
  bool was_tracking = false;
};

/// A heap table: live rows plus (when provenance tracking is registered) an
/// archive of superseded versions, which reenactment uses to retrieve the
/// pre-state of UPDATE/DELETE statements.
class Table {
 public:
  Table(int32_t id, std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  int32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// When enabled, superseded versions of updated/deleted rows are kept in
  /// the archive. LDV registers every table the audited application touches
  /// (the analog of the prototype's schema extension on first access).
  void set_provenance_tracking(bool enabled) { track_versions_ = enabled; }
  bool provenance_tracking() const { return track_versions_; }

  /// MVCC retention (DESIGN.md §12): like provenance tracking, superseded
  /// versions are archived — but for snapshot readers rather than
  /// reenactment, so they are garbage-collected once no live snapshot can
  /// see them (GcArchive) instead of kept forever. The engine enables this
  /// on every table it serves; raw Table users (unit tests, WAL redo) keep
  /// the historical semantics of no archive without tracking.
  void set_mvcc_retention(bool enabled) { mvcc_retention_ = enabled; }
  bool mvcc_retention() const { return mvcc_retention_; }

  /// Highest statement sequence that mutated this table's rows (insert,
  /// update, delete). A snapshot at epoch >= this value sees exactly the
  /// live rows, so scans and index probes skip version resolution.
  int64_t last_mutation_seq() const { return last_mutation_seq_; }

  /// Resolves the version of `slot`'s row visible at `epoch`: the newest
  /// version created at or before the epoch. Returns the live slot itself,
  /// an archived pre-image, or nullptr when the row is invisible (created
  /// after the epoch, or a tombstone at it).
  const RowVersion* VisibleVersion(const RowVersion& slot,
                                   int64_t epoch) const;

  /// Drops the longest archive prefix no live snapshot can still need:
  /// entries superseded at or before `oldest_epoch`. No-op while provenance
  /// tracking is on (reenactment needs the full archive). Returns entries
  /// dropped. Caller must exclude concurrent readers (table write lock) and
  /// must not hold TableTxnMarks across the call (archive indices shift).
  size_t GcArchive(int64_t oldest_epoch);

  /// Inserts a row; `stmt_seq` becomes the version stamp. The tuple arity
  /// must match the schema.
  Result<RowId> Insert(Tuple values, int64_t stmt_seq);

  /// Replaces the values of `rowid`, bumping its version to `stmt_seq`.
  /// The previous version is archived when tracking is on.
  Status Update(RowId rowid, Tuple values, int64_t stmt_seq);

  /// Deletes `rowid`; the final version is archived when tracking is on.
  Status Delete(RowId rowid, int64_t stmt_seq);

  /// Live row lookup; nullptr when absent/deleted.
  const RowVersion* Find(RowId rowid) const;
  RowVersion* FindMutable(RowId rowid);

  /// All rows including tombstones; scans must skip `deleted`.
  const std::vector<RowVersion>& rows() const { return rows_; }
  /// Mutable row access for lineage-tracked scans, which stamp the
  /// prov_usedby / prov_p metadata of tuples they read.
  std::vector<RowVersion>& mutable_rows() { return rows_; }
  /// Superseded versions, oldest first.
  const std::vector<RowVersion>& archive() const { return archive_; }

  int64_t live_row_count() const { return live_count_; }
  RowId max_rowid() const { return next_rowid_ - 1; }

  /// Appends a column with `fill` for existing rows (ALTER TABLE ADD COLUMN).
  Status AddColumn(Column column, const Value& fill);

  /// Looks up a specific tuple version among live rows and the archive;
  /// nullptr when unknown.
  const RowVersion* FindVersion(RowId rowid, int64_t version) const;

  /// Restores a row with explicit identity (used when loading a package or a
  /// persisted database). Keeps next_rowid_ consistent.
  Status RestoreRow(RowVersion row);

  /// Approximate heap bytes of all live tuples (benchmark reporting).
  int64_t ApproxBytes() const;

  /// Transaction support. BeginTxnCapture marks the current state and forces
  /// version tracking so UPDATE/DELETE pre-images reach the archive;
  /// RollbackToMark restores exactly that state (values, tombstones, rowid
  /// allocation, archive, indexes); CommitTxnCapture keeps the new state and
  /// restores the tracking flag, dropping archive entries that only existed
  /// to make rollback possible. DDL between capture and resolution is the
  /// caller's responsibility to prevent.
  TableTxnMark BeginTxnCapture();
  void CommitTxnCapture(const TableTxnMark& mark);
  Status RollbackToMark(const TableTxnMark& mark);

  /// Creates a hash index over `column_index` for equality probes
  /// (CREATE INDEX). Existing rows are indexed; idempotent per column.
  Status CreateIndex(int column_index);
  bool HasIndexOn(int column_index) const;
  /// Live rowids whose value in `column_index` equals `v`, sorted.
  /// Requires an index on that column.
  std::vector<RowId> IndexLookup(int column_index, const Value& v) const;
  int num_indexes() const { return static_cast<int>(indexes_.size()); }

 private:
  struct HashIndex {
    int column = -1;
    std::unordered_multimap<uint64_t, RowId> map;
  };
  void IndexInsert(const RowVersion& row);
  void IndexRemove(const RowVersion& row);

  /// Archives the pre-image of `row` before an update/delete at `stmt_seq`
  /// when either retention mode wants it.
  void ArchivePreImage(const RowVersion& row, int64_t stmt_seq);

  int32_t id_;
  std::string name_;
  Schema schema_;
  bool track_versions_ = false;
  bool mvcc_retention_ = false;
  int64_t last_mutation_seq_ = 0;
  std::vector<RowVersion> rows_;
  std::vector<RowVersion> archive_;
  std::unordered_map<RowId, size_t> index_;  // rowid -> position in rows_
  std::vector<HashIndex> indexes_;
  int64_t live_count_ = 0;
  RowId next_rowid_ = 1;
};

}  // namespace ldv::storage

#endif  // LDV_STORAGE_TABLE_H_
