#include "storage/database.h"

#include "util/strings.h"

namespace ldv::storage {

int64_t Database::NextInstanceId() {
  static std::atomic<int64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema,
                                     bool if_not_exists) {
  Table* existing = FindTable(name);
  if (existing != nullptr) {
    if (if_not_exists) return existing;
    return Status::AlreadyExists("table exists: " + name);
  }
  tables_.push_back(
      std::make_unique<Table>(next_table_id_++, name, std::move(schema)));
  tables_.back()->set_mvcc_retention(mvcc_retention_);
  BumpSchemaVersion();
  return tables_.back().get();
}

void Database::SetMvccRetention(bool enabled) {
  mvcc_retention_ = enabled;
  for (auto& t : tables_) t->set_mvcc_retention(enabled);
}

Status Database::DropTable(const std::string& name) {
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (EqualsIgnoreCase((*it)->name(), name)) {
      tables_.erase(it);
      BumpSchemaVersion();
      return Status::Ok();
    }
  }
  return Status::NotFound("no such table: " + name);
}

Table* Database::FindTable(std::string_view name) {
  for (auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return nullptr;
}

const Table* Database::FindTable(std::string_view name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t->name(), name)) return t.get();
  }
  return nullptr;
}

Table* Database::FindTableById(int32_t id) {
  for (auto& t : tables_) {
    if (t->id() == id) return t.get();
  }
  return nullptr;
}

const Table* Database::FindTableById(int32_t id) const {
  for (const auto& t : tables_) {
    if (t->id() == id) return t.get();
  }
  return nullptr;
}

std::vector<Table*> Database::Tables() {
  std::vector<Table*> tables;
  tables.reserve(tables_.size());
  for (auto& t : tables_) tables.push_back(t.get());
  return tables;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name());
  return names;
}

int64_t Database::TotalLiveRows() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t->live_row_count();
  return total;
}

int64_t Database::ApproxBytes() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t->ApproxBytes();
  return total;
}

}  // namespace ldv::storage
