#include "storage/wal.h"

#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/fault.h"
#include "common/logging.h"
#include "util/crc32.h"
#include "util/fsutil.h"
#include "util/serde.h"
#include "util/strings.h"

namespace ldv::storage {

namespace {

/// First 8 bytes of every segment file.
constexpr char kSegmentMagic[8] = {'L', 'D', 'V', 'W', 'A', 'L', '1', '\n'};

/// A single record (one SQL statement plus framing) above this is treated as
/// corruption rather than an allocation request. Matches the transport's
/// frame cap.
constexpr uint64_t kMaxRecordBytes = 64ull << 20;

std::string SegmentFileName(int64_t index) {
  return StrFormat("wal-%08lld.log", static_cast<long long>(index));
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wal write: ") + strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void PutU32At(std::string* buf, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[pos + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

uint32_t ReadU32(std::string_view bytes, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(
             static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

/// Decodes the record frame at `pos`. Returns "" and sets *record and
/// *frame_len on success; otherwise returns a damage description.
std::string ParseRecordFrame(std::string_view bytes, size_t pos,
                             WalRecord* record, size_t* frame_len) {
  if (bytes.size() - pos < 8) {
    return StrFormat("truncated frame header at offset %zu", pos);
  }
  const uint64_t len = ReadU32(bytes, pos);
  const uint32_t stored_crc = ReadU32(bytes, pos + 4);
  if (len > kMaxRecordBytes) {
    return StrFormat("implausible record length %llu at offset %zu",
                     static_cast<unsigned long long>(len), pos);
  }
  if (bytes.size() - pos - 8 < len) {
    return StrFormat("torn record at offset %zu (%llu byte payload, "
                     "%zu bytes remain)",
                     pos, static_cast<unsigned long long>(len),
                     bytes.size() - pos - 8);
  }
  std::string_view body(bytes.data() + pos + 8, len);
  if (Crc32(body) != stored_crc) {
    return StrFormat("checksum mismatch at offset %zu", pos);
  }
  BufferReader reader(body);
  auto parse = [&]() -> Status {
    LDV_ASSIGN_OR_RETURN(uint64_t lsn, reader.GetU64());
    record->lsn = lsn;
    LDV_ASSIGN_OR_RETURN(uint8_t kind, reader.GetU8());
    if (kind < static_cast<uint8_t>(WalRecordKind::kBegin) ||
        kind > static_cast<uint8_t>(WalRecordKind::kCommit)) {
      return Status::IOError("unknown record kind");
    }
    record->kind = static_cast<WalRecordKind>(kind);
    LDV_ASSIGN_OR_RETURN(record->txn_id, reader.GetVarint());
    if (record->kind == WalRecordKind::kOp) {
      LDV_ASSIGN_OR_RETURN(record->op.stmt_seq_before, reader.GetVarint());
      LDV_ASSIGN_OR_RETURN(record->op.sql, reader.GetString());
    }
    return Status::Ok();
  };
  if (Status parsed = parse(); !parsed.ok()) {
    return StrFormat("undecodable record at offset %zu: %s", pos,
                     parsed.message().c_str());
  }
  *frame_len = 8 + static_cast<size_t>(len);
  return "";
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  BufferWriter payload;
  payload.PutU64(record.lsn);
  payload.PutU8(static_cast<uint8_t>(record.kind));
  payload.PutVarint(record.txn_id);
  if (record.kind == WalRecordKind::kOp) {
    payload.PutVarint(record.op.stmt_seq_before);
    payload.PutString(record.op.sql);
  }
  const std::string& body = payload.data();
  std::string frame(8, '\0');
  PutU32At(&frame, 0, static_cast<uint32_t>(body.size()));
  PutU32At(&frame, 4, Crc32(body));
  frame.append(body);
  return frame;
}

Result<WalSegmentScan> ScanWalSegment(const std::string& path) {
  LDV_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  WalSegmentScan scan;
  scan.file_bytes = bytes.size();
  if (bytes.size() < sizeof(kSegmentMagic) ||
      memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::IOError("wal segment " + path +
                           ": missing or bad segment header");
  }
  size_t pos = sizeof(kSegmentMagic);
  scan.valid_bytes = pos;
  while (pos < bytes.size()) {
    WalRecord record;
    size_t frame_len = 0;
    scan.damage = ParseRecordFrame(bytes, pos, &record, &frame_len);
    if (!scan.damage.empty()) return scan;
    scan.records.push_back(std::move(record));
    pos += frame_len;
    scan.valid_bytes = pos;
  }
  return scan;
}

Result<std::vector<WalRecord>> DecodeWalRecords(std::string_view bytes) {
  std::vector<WalRecord> records;
  size_t pos = 0;
  while (pos < bytes.size()) {
    WalRecord record;
    size_t frame_len = 0;
    std::string damage = ParseRecordFrame(bytes, pos, &record, &frame_len);
    if (!damage.empty()) {
      return Status::IOError("wal record batch: " + damage);
    }
    records.push_back(std::move(record));
    pos += frame_len;
  }
  return records;
}

int64_t WalSegmentIndex(const std::string& file_name) {
  if (file_name.size() != 16 || file_name.rfind("wal-", 0) != 0 ||
      file_name.substr(12) != ".log") {
    return -1;
  }
  int64_t index = 0;
  for (size_t i = 4; i < 12; ++i) {
    char c = file_name[i];
    if (c < '0' || c > '9') return -1;
    index = index * 10 + (c - '0');
  }
  return index;
}

Result<std::vector<std::string>> ListWalSegments(const std::string& dir) {
  std::vector<std::string> segments;
  if (!DirExists(dir)) return segments;
  LDV_ASSIGN_OR_RETURN(std::vector<std::string> files, ListTree(dir));
  for (const std::string& file : files) {
    if (WalSegmentIndex(file) >= 0) {
      segments.push_back(file);
    } else {
      // A stray file must not poison segment ordering, but it is almost
      // certainly operator error (or litter from a bad copy) — be loud.
      LDV_LOG(Warning) << "wal dir " << dir << ": ignoring non-segment file '"
                       << file << "'";
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const std::string& a, const std::string& b) {
              return WalSegmentIndex(a) < WalSegmentIndex(b);
            });
  return segments;
}

Result<WalSyncMode> ParseWalSyncMode(std::string_view name) {
  if (name == "fsync") return WalSyncMode::kFsync;
  if (name == "fdatasync") return WalSyncMode::kFdatasync;
  if (name == "none") return WalSyncMode::kNone;
  return Status::InvalidArgument("unknown sync mode '" + std::string(name) +
                                 "' (want fsync|fdatasync|none)");
}

Wal::Wal(std::string dir, const WalOptions& options, uint64_t next_lsn)
    : dir_(std::move(dir)),
      options_(options),
      next_lsn_(next_lsn == 0 ? 1 : next_lsn),
      // The log sequence continues from recovery: everything before
      // next_lsn_ is already durably appended (replication standbys resume
      // their stream from here), and so is trivially "synced" — there is
      // nothing buffered for Sync() to wait on.
      appended_lsn_(next_lsn_ - 1),
      synced_lsn_(next_lsn_ - 1) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  commits_ = reg.counter("wal.commits");
  append_bytes_ = reg.counter("wal.append_bytes");
  syncs_ = reg.counter("wal.syncs");
  piggybacked_syncs_ = reg.counter("wal.piggybacked_syncs");
}

Wal::~Wal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (options_.sync_mode != WalSyncMode::kNone) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const WalOptions& options,
                                       uint64_t next_lsn) {
  LDV_RETURN_IF_ERROR(MakeDirs(dir));
  LDV_ASSIGN_OR_RETURN(std::vector<std::string> segments, ListWalSegments(dir));
  int64_t next_index = 1;
  if (!segments.empty()) {
    next_index = WalSegmentIndex(segments.back()) + 1;
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options, next_lsn));
  std::lock_guard<std::mutex> lock(wal->mu_);
  LDV_RETURN_IF_ERROR(wal->OpenSegmentLocked(next_index));
  return wal;
}

Status Wal::OpenSegmentLocked(int64_t index) {
  const std::string path = JoinPath(dir_, SegmentFileName(index));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  Status header = WriteAll(fd, kSegmentMagic, sizeof(kSegmentMagic));
  if (!header.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return header;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  segment_index_ = index;
  segment_bytes_ = sizeof(kSegmentMagic);
  return Status::Ok();
}

int64_t Wal::segment_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_index_;
}

uint64_t Wal::last_appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_lsn_;
}

Result<uint64_t> Wal::AppendCommit(int64_t txn_id,
                                   const std::vector<WalOp>& ops) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::IOError("wal is broken after a failed partial write");
  }
  std::string group;
  WalRecord begin;
  begin.lsn = next_lsn_++;
  begin.kind = WalRecordKind::kBegin;
  begin.txn_id = txn_id;
  group += EncodeWalRecord(begin);
  for (const WalOp& op : ops) {
    WalRecord rec;
    rec.lsn = next_lsn_++;
    rec.kind = WalRecordKind::kOp;
    rec.txn_id = txn_id;
    rec.op = op;
    group += EncodeWalRecord(rec);
  }
  WalRecord commit;
  commit.lsn = next_lsn_++;
  commit.kind = WalRecordKind::kCommit;
  commit.txn_id = txn_id;
  group += EncodeWalRecord(commit);

  // A crash at `wal.append` loses the whole (unacknowledged) group; a crash
  // at `wal.tear` leaves a genuinely torn record for recovery to truncate.
  // Error-mode injections (and real write failures) roll the segment back to
  // the group start so later groups still land on a record boundary.
  const uint64_t group_start = segment_bytes_;
  auto unwind = [&](Status status) -> Status {
    if (::ftruncate(fd_, static_cast<off_t>(group_start)) != 0) {
      broken_ = true;
      return Status::IOError(status.message() +
                             " (and truncating the torn group failed: " +
                             strerror(errno) + ")");
    }
    return status;
  };
  if (Status s = CheckFault("wal.append"); !s.ok()) return s;
  const size_t half = group.size() / 2;
  if (Status s = WriteAll(fd_, group.data(), half); !s.ok()) {
    return unwind(s);
  }
  if (Status s = CheckFault("wal.tear"); !s.ok()) return unwind(s);
  if (Status s = WriteAll(fd_, group.data() + half, group.size() - half);
      !s.ok()) {
    return unwind(s);
  }
  segment_bytes_ += group.size();
  appended_lsn_ = commit.lsn;
  commits_->Add(1);
  append_bytes_->Add(static_cast<int64_t>(group.size()));
  if (commit_sink_) commit_sink_(begin.lsn, commit.lsn, group);
  return commit.lsn;
}

Status Wal::AppendRaw(std::string_view frames, uint64_t first_lsn,
                      uint64_t last_lsn) {
  if (frames.empty() || last_lsn < first_lsn) {
    return Status::InvalidArgument("wal raw append: empty or inverted batch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::IOError("wal is broken after a failed partial write");
  }
  if (first_lsn != next_lsn_) {
    return Status::InvalidArgument(StrFormat(
        "wal raw append: batch starts at lsn %llu, expected %llu",
        static_cast<unsigned long long>(first_lsn),
        static_cast<unsigned long long>(next_lsn_)));
  }
  const uint64_t group_start = segment_bytes_;
  if (Status s = WriteAll(fd_, frames.data(), frames.size()); !s.ok()) {
    if (::ftruncate(fd_, static_cast<off_t>(group_start)) != 0) {
      broken_ = true;
      return Status::IOError(s.message() +
                             " (and truncating the torn group failed: " +
                             strerror(errno) + ")");
    }
    return s;
  }
  segment_bytes_ += frames.size();
  next_lsn_ = last_lsn + 1;
  appended_lsn_ = last_lsn;
  commits_->Add(1);
  append_bytes_->Add(static_cast<int64_t>(frames.size()));
  if (commit_sink_) commit_sink_(first_lsn, last_lsn, frames);
  return Status::Ok();
}

void Wal::set_commit_sink(CommitSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  commit_sink_ = std::move(sink);
}

Status Wal::SyncFd() {
  LDV_FAULT_POINT("wal.fsync");
  int rc = options_.sync_mode == WalSyncMode::kFdatasync ? ::fdatasync(fd_)
                                                         : ::fsync(fd_);
  if (rc != 0) {
    return Status::IOError(std::string("wal fsync: ") + strerror(errno));
  }
  return Status::Ok();
}

Status Wal::Sync(uint64_t lsn) {
  if (options_.sync_mode == WalSyncMode::kNone) return Status::Ok();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (synced_lsn_ >= lsn) {
      // Another committer's fsync already covered this group.
      piggybacked_syncs_->Add(1);
      return Status::Ok();
    }
    if (!sync_in_progress_) break;
    sync_cv_.wait(lock);
  }
  // Leader: one syscall covers every group appended up to this moment. The
  // syscall runs with mu_ released so committers can keep appending behind
  // the in-flight fsync; fd_ stays valid because rotation waits for
  // sync_in_progress_ to clear.
  sync_in_progress_ = true;
  const uint64_t target = appended_lsn_;
  lock.unlock();
  Status synced = SyncFd();
  lock.lock();
  sync_in_progress_ = false;
  if (synced.ok()) synced_lsn_ = std::max(synced_lsn_, target);
  syncs_->Add(1);
  sync_cv_.notify_all();
  if (!synced.ok()) return synced;
  return synced_lsn_ >= lsn
             ? Status::Ok()
             : Status::IOError("wal sync raced a rotation; commit not durable");
}

Status Wal::Flush() {
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = appended_lsn_;
  }
  return Sync(target);
}

Status Wal::StartNewSegment() {
  std::unique_lock<std::mutex> lock(mu_);
  sync_cv_.wait(lock, [&] { return !sync_in_progress_; });
  if (options_.sync_mode != WalSyncMode::kNone) {
    LDV_RETURN_IF_ERROR(SyncFd());
    synced_lsn_ = std::max(synced_lsn_, appended_lsn_);
  }
  return OpenSegmentLocked(segment_index_ + 1);
}

Status Wal::RetireOldSegments(uint64_t min_keep_lsn) {
  int64_t current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current = segment_index_;
  }
  LDV_ASSIGN_OR_RETURN(std::vector<std::string> segments, ListWalSegments(dir_));
  for (const std::string& file : segments) {
    if (WalSegmentIndex(file) >= current) continue;
    if (min_keep_lsn != UINT64_MAX) {
      // A standby may still need this segment: keep it unless every record
      // in it is below the minimum acknowledged LSN.
      LDV_ASSIGN_OR_RETURN(WalSegmentScan scan,
                           ScanWalSegment(JoinPath(dir_, file)));
      if (!scan.records.empty() && scan.records.back().lsn >= min_keep_lsn) {
        continue;
      }
    }
    LDV_RETURN_IF_ERROR(RemoveAll(JoinPath(dir_, file)));
  }
  return Status::Ok();
}

}  // namespace ldv::storage
