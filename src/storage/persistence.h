#ifndef LDV_STORAGE_PERSISTENCE_H_
#define LDV_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace ldv::storage {

/// Native on-disk format of the engine ("the DB server's data files" in the
/// paper's terms): one binary `<table>.tbl` per table plus `catalog.json`.
/// PTU-style packages copy these files verbatim; loading them is the fast
/// path a PTU replay uses, in contrast to the server-included package path
/// that re-inserts the relevant tuples through SQL (§VIII).
///
/// Saves are crash-safe: every file is written via temp + fsync + rename,
/// table payloads carry a CRC-32 trailer recorded in catalog.json, rewrites
/// use generation-numbered file names, and the catalog rename is the single
/// commit point — an interrupted save leaves the previous state loadable.
Status SaveDatabase(const Database& db, const std::string& dir);

/// Loads a directory produced by SaveDatabase into an empty Database.
/// Distinguishes a missing data file (NotFound, names the table) from a
/// corrupt or truncated one (IOError on checksum mismatch).
Status LoadDatabase(Database* db, const std::string& dir);

/// Serializes one table (schema + live rows with identities) to bytes.
std::string SerializeTable(const Table& table);

/// Restores a table serialized by SerializeTable into `db`.
Status DeserializeTableInto(Database* db, const std::string& name,
                            std::string_view bytes);

}  // namespace ldv::storage

#endif  // LDV_STORAGE_PERSISTENCE_H_
