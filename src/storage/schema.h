#ifndef LDV_STORAGE_SCHEMA_H_
#define LDV_STORAGE_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace ldv::storage {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns describing a table or result set.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name` (ASCII case-insensitive), or -1.
  int IndexOf(std::string_view name) const;

  /// Appends a column; fails if the name already exists.
  Status AddColumn(Column column);

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

  void Serialize(BufferWriter* w) const;
  static Result<Schema> Deserialize(BufferReader* r);

 private:
  std::vector<Column> columns_;
};

/// Names of the tuple-version metadata pseudo-columns (paper §VII-B). These
/// are exposed by scans on provenance-registered tables.
inline constexpr std::string_view kProvRowIdColumn = "prov_rowid";
inline constexpr std::string_view kProvVersionColumn = "prov_v";
inline constexpr std::string_view kProvUsedByColumn = "prov_usedby";
inline constexpr std::string_view kProvProcessColumn = "prov_p";

/// True if `name` is one of the four prov_* pseudo-columns.
bool IsProvPseudoColumn(std::string_view name);

}  // namespace ldv::storage

#endif  // LDV_STORAGE_SCHEMA_H_
