#ifndef LDV_STORAGE_RECOVERY_H_
#define LDV_STORAGE_RECOVERY_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace ldv::storage {

/// What recovery found and did. `next_lsn` seeds Wal::Open so the LSN
/// sequence continues across restarts.
struct RecoveryStats {
  bool snapshot_loaded = false;
  int64_t snapshot_stmt_seq = 0;
  int64_t segments_scanned = 0;
  int64_t records_scanned = 0;
  int64_t txns_applied = 0;
  int64_t ops_applied = 0;
  /// Ops whose effects the snapshot already contains (checkpoint raced past
  /// them before the crash).
  int64_t ops_skipped = 0;
  /// Begin/op records with no commit (a group torn exactly at the tail).
  int64_t txns_discarded = 0;
  bool truncated_torn_tail = false;
  std::string torn_detail;  // file + offset + reason of the truncated tail
  uint64_t next_lsn = 1;

  std::string ToString() const;
};

/// Re-executes one logged SQL statement against the database being
/// recovered. RecoverDatabase positions the statement sequence first, so the
/// redo reproduces the original rowids and version stamps; the standard
/// implementation wraps exec::Executor (see exec/wal_redo.h — the storage
/// layer cannot depend on the executor).
using WalRedoFn = std::function<Status(const std::string& sql)>;

/// Crash recovery: loads the snapshot in `data_dir` (if any), then redoes
/// the committed-transaction suffix of the WAL in `wal_dir` (if any).
///
/// A torn or corrupt record at the tail of the *last* segment is the
/// expected signature of a crash mid-append: the tail is truncated (durably)
/// and recovery succeeds with the committed prefix. Damage anywhere else
/// means committed transactions may be missing, so recovery fails, naming
/// the segment file and byte offset. Recovery never appends to the log, so
/// recovering twice is a no-op: the second run sees the same snapshot and an
/// already-clean log and rebuilds the identical state.
Status RecoverDatabase(Database* db, const std::string& data_dir,
                       const std::string& wal_dir, const WalRedoFn& redo,
                       RecoveryStats* stats);

}  // namespace ldv::storage

#endif  // LDV_STORAGE_RECOVERY_H_
