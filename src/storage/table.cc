#include "storage/table.h"

#include <algorithm>

#include "util/strings.h"

namespace ldv::storage {

std::string TupleVid::ToString() const {
  return StrFormat("t%d.%lld.v%lld", table_id, static_cast<long long>(rowid),
                   static_cast<long long>(version));
}

Table::Table(int32_t id, std::string name, Schema schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)) {}

Result<RowId> Table::Insert(Tuple values, int64_t stmt_seq) {
  if (static_cast<int>(values.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("%s: INSERT arity %zu != schema arity %d", name_.c_str(),
                  values.size(), schema_.num_columns()));
  }
  RowVersion row;
  row.rowid = next_rowid_++;
  row.version = stmt_seq;
  row.values = std::move(values);
  index_[row.rowid] = rows_.size();
  RowId rowid = row.rowid;
  rows_.push_back(std::move(row));
  IndexInsert(rows_.back());
  ++live_count_;
  last_mutation_seq_ = std::max(last_mutation_seq_, stmt_seq);
  return rowid;
}

void Table::ArchivePreImage(const RowVersion& row, int64_t stmt_seq) {
  if (!track_versions_ && !mvcc_retention_) return;
  archive_.push_back(row);
  archive_.back().superseded = stmt_seq;
}

Status Table::Update(RowId rowid, Tuple values, int64_t stmt_seq) {
  RowVersion* row = FindMutable(rowid);
  if (row == nullptr) {
    return Status::NotFound(name_ + ": no row " + std::to_string(rowid));
  }
  if (static_cast<int>(values.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(name_ + ": UPDATE arity mismatch");
  }
  ArchivePreImage(*row, stmt_seq);
  IndexRemove(*row);
  row->values = std::move(values);
  row->version = stmt_seq;
  row->used_by_query = 0;
  row->used_by_process = 0;
  IndexInsert(*row);
  last_mutation_seq_ = std::max(last_mutation_seq_, stmt_seq);
  return Status::Ok();
}

Status Table::Delete(RowId rowid, int64_t stmt_seq) {
  RowVersion* row = FindMutable(rowid);
  if (row == nullptr) {
    return Status::NotFound(name_ + ": no row " + std::to_string(rowid));
  }
  ArchivePreImage(*row, stmt_seq);
  IndexRemove(*row);
  row->deleted = true;
  row->version = stmt_seq;
  --live_count_;
  last_mutation_seq_ = std::max(last_mutation_seq_, stmt_seq);
  return Status::Ok();
}

const RowVersion* Table::Find(RowId rowid) const {
  auto it = index_.find(rowid);
  if (it == index_.end()) return nullptr;
  const RowVersion& row = rows_[it->second];
  return row.deleted ? nullptr : &row;
}

RowVersion* Table::FindMutable(RowId rowid) {
  auto it = index_.find(rowid);
  if (it == index_.end()) return nullptr;
  RowVersion& row = rows_[it->second];
  return row.deleted ? nullptr : &row;
}

Status Table::AddColumn(Column column, const Value& fill) {
  LDV_RETURN_IF_ERROR(schema_.AddColumn(std::move(column)));
  for (RowVersion& row : rows_) row.values.push_back(fill);
  for (RowVersion& row : archive_) row.values.push_back(fill);
  return Status::Ok();
}

const RowVersion* Table::VisibleVersion(const RowVersion& slot,
                                        int64_t epoch) const {
  if (slot.version <= epoch) return slot.deleted ? nullptr : &slot;
  // The live version postdates the snapshot: the visible version, if any,
  // is the newest archived one created at or before the epoch. Entries for
  // one rowid appear in version order, so the first hit scanning backwards
  // is the newest.
  for (auto rit = archive_.rbegin(); rit != archive_.rend(); ++rit) {
    if (rit->rowid != slot.rowid) continue;
    if (rit->version <= epoch) return rit->deleted ? nullptr : &*rit;
  }
  return nullptr;
}

size_t Table::GcArchive(int64_t oldest_epoch) {
  if (track_versions_) return 0;  // reenactment needs the full archive
  size_t drop = 0;
  while (drop < archive_.size()) {
    const RowVersion& entry = archive_[drop];
    // `superseded` is monotone along the archive; the first entry some live
    // snapshot can still reach ends the droppable prefix.
    if (entry.superseded == 0 || entry.superseded > oldest_epoch) break;
    ++drop;
  }
  if (drop > 0) {
    archive_.erase(archive_.begin(),
                   archive_.begin() + static_cast<ptrdiff_t>(drop));
  }
  return drop;
}

const RowVersion* Table::FindVersion(RowId rowid, int64_t version) const {
  auto it = index_.find(rowid);
  if (it != index_.end()) {
    const RowVersion& row = rows_[it->second];
    if (row.version == version) return &row;
  }
  // Archive is scanned backwards: recent versions are the common lookups.
  for (auto rit = archive_.rbegin(); rit != archive_.rend(); ++rit) {
    if (rit->rowid == rowid && rit->version == version) return &*rit;
  }
  return nullptr;
}

Status Table::RestoreRow(RowVersion row) {
  if (static_cast<int>(row.values.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(name_ + ": restore arity mismatch");
  }
  if (row.rowid <= 0) {
    return Status::InvalidArgument(name_ + ": restore needs a valid rowid");
  }
  if (index_.contains(row.rowid)) {
    return Status::AlreadyExists(name_ + ": duplicate rowid " +
                                 std::to_string(row.rowid));
  }
  next_rowid_ = std::max(next_rowid_, row.rowid + 1);
  last_mutation_seq_ = std::max(last_mutation_seq_, row.version);
  index_[row.rowid] = rows_.size();
  if (!row.deleted) ++live_count_;
  rows_.push_back(std::move(row));
  if (!rows_.back().deleted) IndexInsert(rows_.back());
  return Status::Ok();
}

Status Table::CreateIndex(int column_index) {
  if (column_index < 0 || column_index >= schema_.num_columns()) {
    return Status::InvalidArgument(name_ + ": no such column to index");
  }
  if (HasIndexOn(column_index)) return Status::Ok();
  HashIndex hash_index;
  hash_index.column = column_index;
  for (const RowVersion& row : rows_) {
    if (row.deleted) continue;
    hash_index.map.emplace(
        row.values[static_cast<size_t>(column_index)].Hash(), row.rowid);
  }
  indexes_.push_back(std::move(hash_index));
  return Status::Ok();
}

bool Table::HasIndexOn(int column_index) const {
  for (const HashIndex& idx : indexes_) {
    if (idx.column == column_index) return true;
  }
  return false;
}

std::vector<RowId> Table::IndexLookup(int column_index,
                                      const Value& v) const {
  std::vector<RowId> out;
  for (const HashIndex& idx : indexes_) {
    if (idx.column != column_index) continue;
    auto [begin, end] = idx.map.equal_range(v.Hash());
    for (auto it = begin; it != end; ++it) {
      const RowVersion* row = Find(it->second);
      // Verify against hash collisions; equality follows SQL '=' (numeric
      // coercion).
      if (row == nullptr) continue;
      Result<int> cmp =
          row->values[static_cast<size_t>(column_index)].Compare(v);
      if (cmp.ok() && *cmp == 0 &&
          !row->values[static_cast<size_t>(column_index)].is_null() &&
          !v.is_null()) {
        out.push_back(row->rowid);
      }
    }
    break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Table::IndexInsert(const RowVersion& row) {
  for (HashIndex& idx : indexes_) {
    idx.map.emplace(row.values[static_cast<size_t>(idx.column)].Hash(),
                    row.rowid);
  }
}

void Table::IndexRemove(const RowVersion& row) {
  for (HashIndex& idx : indexes_) {
    auto [begin, end] =
        idx.map.equal_range(row.values[static_cast<size_t>(idx.column)].Hash());
    for (auto it = begin; it != end; ++it) {
      if (it->second == row.rowid) {
        idx.map.erase(it);
        break;
      }
    }
  }
}

TableTxnMark Table::BeginTxnCapture() {
  TableTxnMark mark;
  mark.rows_size = rows_.size();
  mark.archive_size = archive_.size();
  mark.next_rowid = next_rowid_;
  mark.live_count = live_count_;
  mark.was_tracking = track_versions_;
  track_versions_ = true;
  return mark;
}

void Table::CommitTxnCapture(const TableTxnMark& mark) {
  track_versions_ = mark.was_tracking;
  // Pre-images archived only for rollback's sake would not exist had the
  // statements run outside a transaction; drop them for identical state.
  // Under MVCC retention they stay: a concurrent snapshot older than the
  // commit may still need them, and GcArchive reclaims them once no live
  // snapshot can (DESIGN.md §12).
  if (!mark.was_tracking && !mvcc_retention_ &&
      archive_.size() > mark.archive_size) {
    archive_.resize(mark.archive_size);
  }
}

Status Table::RollbackToMark(const TableTxnMark& mark) {
  if (archive_.size() < mark.archive_size || rows_.size() < mark.rows_size) {
    return Status::Internal(name_ + ": transaction mark is ahead of state");
  }
  // Undo UPDATE/DELETE newest-first: every pre-image archived during the
  // transaction goes back into place. Restoring a tombstone revives the row.
  for (size_t i = archive_.size(); i > mark.archive_size; --i) {
    RowVersion& prior = archive_[i - 1];
    auto it = index_.find(prior.rowid);
    if (it == index_.end()) {
      return Status::Internal(name_ + ": archived rowid " +
                              std::to_string(prior.rowid) + " has no slot");
    }
    RowVersion& current = rows_[it->second];
    if (current.deleted) {
      ++live_count_;
    } else {
      IndexRemove(current);
    }
    current = prior;
    current.superseded = 0;  // live again
    IndexInsert(current);
  }
  archive_.resize(mark.archive_size);
  // Undo INSERTs: rows only ever append, so everything past the mark was
  // created inside the transaction.
  while (rows_.size() > mark.rows_size) {
    RowVersion& row = rows_.back();
    if (!row.deleted) {
      IndexRemove(row);
      --live_count_;
    }
    index_.erase(row.rowid);
    rows_.pop_back();
  }
  next_rowid_ = mark.next_rowid;
  track_versions_ = mark.was_tracking;
  if (live_count_ != mark.live_count) {
    return Status::Internal(name_ + ": rollback live-row count drifted");
  }
  return Status::Ok();
}

int64_t Table::ApproxBytes() const {
  int64_t total = 0;
  for (const RowVersion& row : rows_) {
    if (row.deleted) continue;
    total += 24;  // metadata
    for (const Value& v : row.values) {
      total += 16;
      if (v.type() == ValueType::kString) {
        total += static_cast<int64_t>(v.AsString().size());
      }
    }
  }
  return total;
}

}  // namespace ldv::storage
