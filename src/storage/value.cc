#include "storage/value.h"

#include <cmath>

#include "common/logging.h"
#include "util/strings.h"

namespace ldv::storage {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "TEXT";
  }
  return "?";
}

Result<ValueType> ValueTypeFromSqlName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "smallint" || lower == "int4" || lower == "int8") {
    return ValueType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real" ||
      lower == "decimal" || lower == "numeric" || lower == "double precision") {
    return ValueType::kDouble;
  }
  if (lower == "text" || lower == "varchar" || lower == "char" ||
      lower == "string" || lower == "date") {
    return ValueType::kString;
  }
  return Status::ParseError("unknown SQL type: " + std::string(name));
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = ValueType::kInt64;
  out.int_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.type_ = ValueType::kDouble;
  out.double_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.type_ = ValueType::kString;
  out.string_ = std::move(v);
  return out;
}

int64_t Value::AsInt() const {
  LDV_CHECK(type_ == ValueType::kInt64);
  return int_;
}

double Value::AsDouble() const {
  if (type_ == ValueType::kInt64) return static_cast<double>(int_);
  LDV_CHECK(type_ == ValueType::kDouble);
  return double_;
}

const std::string& Value::AsString() const {
  LDV_CHECK(type_ == ValueType::kString);
  return string_;
}

bool Value::IsTruthy() const {
  switch (type_) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return int_ != 0;
    case ValueType::kDouble:
      return double_ != 0;
    case ValueType::kString:
      return !string_.empty();
  }
  return false;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  const bool self_num = type_ != ValueType::kString;
  const bool other_num = other.type_ != ValueType::kString;
  if (self_num != other_num) {
    return Status::InvalidArgument("cannot compare " +
                                   std::string(ValueTypeName(type_)) + " and " +
                                   std::string(ValueTypeName(other.type_)));
  }
  if (self_num) {
    if (type_ == ValueType::kInt64 && other.type_ == ValueType::kInt64) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  int cmp = string_.compare(other.string_);
  return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return int_ == other.int_;
    case ValueType::kDouble:
      return double_ == other.double_;
    case ValueType::kString:
      return string_ == other.string_;
  }
  return false;
}

std::string Value::ToText() const {
  switch (type_) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(int_);
    case ValueType::kDouble: {
      // %.15g keeps round-trip fidelity for workload values while staying
      // human-readable in CSV files.
      return StrFormat("%.15g", double_);
    }
    case ValueType::kString:
      return string_;
  }
  return "";
}

Result<Value> Value::FromText(ValueType type, std::string_view text) {
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      if (text.empty()) return Value::Null();
      LDV_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      if (text.empty()) return Value::Null();
      LDV_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value::Real(v);
    }
    case ValueType::kString:
      return Value::Str(std::string(text));
  }
  return Status::Internal("bad value type");
}

void Value::Serialize(BufferWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type_));
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      w->PutVarint(int_);
      break;
    case ValueType::kDouble:
      w->PutDouble(double_);
      break;
    case ValueType::kString:
      w->PutString(string_);
      break;
  }
}

Result<Value> Value::Deserialize(BufferReader* r) {
  LDV_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      LDV_ASSIGN_OR_RETURN(int64_t v, r->GetVarint());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      LDV_ASSIGN_OR_RETURN(double v, r->GetDouble());
      return Value::Real(v);
    }
    case ValueType::kString: {
      LDV_ASSIGN_OR_RETURN(std::string v, r->GetString());
      return Value::Str(std::move(v));
    }
  }
  return Status::IOError("bad value tag");
}

uint64_t HashInt64Value(int64_t v) {
  return Fnv1a(
      std::string_view(reinterpret_cast<const char*>(&v), sizeof(v)));
}

uint64_t HashDoubleValue(double v) {
  double d = v == 0 ? 0 : v;  // normalize -0.0
  return Fnv1a(std::string_view(reinterpret_cast<const char*>(&d), sizeof(d)));
}

uint64_t HashStringValue(std::string_view v) { return Fnv1a(v); }

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return kNullValueHash;
    case ValueType::kInt64:
      return HashInt64Value(int_);
    case ValueType::kDouble:
      return HashDoubleValue(double_);
    case ValueType::kString:
      return HashStringValue(string_);
  }
  return 0;
}

uint64_t HashTuple(const Tuple& t) {
  uint64_t h = kTupleHashSeed;
  for (const Value& v : t) {
    h = CombineValueHash(h, v.Hash());
  }
  return h;
}

std::string TupleToText(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    if (t[i].type() == ValueType::kString) {
      out += "'" + t[i].ToText() + "'";
    } else if (t[i].is_null()) {
      out += "NULL";
    } else {
      out += t[i].ToText();
    }
  }
  out += ")";
  return out;
}

}  // namespace ldv::storage
