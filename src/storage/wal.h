#ifndef LDV_STORAGE_WAL_H_
#define LDV_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace ldv::storage {

/// How a committed group is made durable before the commit is acknowledged.
enum class WalSyncMode {
  kFsync,      // fsync(2) the segment file (default)
  kFdatasync,  // fdatasync(2): skips mtime, same data guarantee
  kNone,       // no sync: commits can be lost on power failure / crash
};

/// Parses "fsync" | "fdatasync" | "none" (the --sync-mode flag values).
Result<WalSyncMode> ParseWalSyncMode(std::string_view name);

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kFsync;
};

/// Record kinds of the on-disk log. A committed transaction is one
/// begin/op.../commit group appended and fsynced atomically; the log never
/// contains records of aborted transactions (logging is deferred to commit).
enum class WalRecordKind : uint8_t {
  kBegin = 1,
  kOp = 2,
  kCommit = 3,
};

/// One logged statement. `stmt_seq_before` is the database statement
/// sequence counter *before* the statement executed; redo restores it and
/// re-executes `sql`, which re-derives identical rowids and version stamps
/// (the engine is deterministic and single-writer).
struct WalOp {
  int64_t stmt_seq_before = 0;
  std::string sql;
};

/// One decoded record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordKind kind = WalRecordKind::kBegin;
  int64_t txn_id = 0;
  WalOp op;  // meaningful for kOp only
};

/// Encodes one record as its on-disk frame:
///   u32 payload_length | u32 crc32(payload) | payload
///   payload := u64 lsn | u8 kind | varint txn_id [| varint stmt_seq_before
///              | string sql]
std::string EncodeWalRecord(const WalRecord& record);

/// Result of scanning one segment file. `records` is the valid prefix;
/// `valid_bytes` is the offset of the first invalid byte (== file size for a
/// clean segment). A non-empty `damage` describes the first torn or corrupt
/// record.
struct WalSegmentScan {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  uint64_t file_bytes = 0;
  std::string damage;  // "" when the whole segment decoded
};

/// Decodes `path` up to the first torn/corrupt record. Only open/read
/// failures and a bad segment header are errors; tail damage is reported in
/// the scan result so the caller can decide to truncate (recovery of the
/// final segment) or fail (corruption in the middle of the log).
Result<WalSegmentScan> ScanWalSegment(const std::string& path);

/// Strictly decodes a buffer of concatenated record frames (no segment
/// header) — the payload format of the replication stream. Unlike a segment
/// scan, any torn or corrupt frame is an error: streamed batches arrive over
/// a checksummed transport and must decode completely.
Result<std::vector<WalRecord>> DecodeWalRecords(std::string_view bytes);

/// Segment file names under a WAL directory ("wal-00000001.log", ...),
/// sorted by segment index. Missing directory yields an empty list.
Result<std::vector<std::string>> ListWalSegments(const std::string& dir);

/// Segment index encoded in a segment file name (-1 if malformed).
int64_t WalSegmentIndex(const std::string& file_name);

/// Append-side of the write-ahead log. One process appends; commit groups
/// are framed records written under a mutex (commit order == engine
/// serialization order, the caller guarantees appends happen inside the
/// engine's commit critical section), then made durable by Sync(), which
/// implements group commit: the first committer to reach the sync becomes
/// the leader and fsyncs once for every group appended so far; concurrent
/// committers piggyback on that fsync instead of issuing their own.
///
/// Fault points: `wal.append` before a group is written (a crash loses the
/// whole unacknowledged group), `wal.tear` between the two halves of the
/// group write (a crash leaves a torn record for recovery to truncate), and
/// `wal.fsync` before the durability syscall.
class Wal {
 public:
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens `dir` for appending, creating it if needed. Appends go to a
  /// fresh segment numbered after the highest existing one; `next_lsn`
  /// continues the sequence recovery observed (1 for a new log).
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const WalOptions& options,
                                           uint64_t next_lsn);

  /// Appends begin/op.../commit as one buffered group and returns the
  /// commit record's LSN. Not yet durable — call Sync(lsn). On a partial
  /// write the group is truncated away so the segment stays clean.
  Result<uint64_t> AppendCommit(int64_t txn_id, const std::vector<WalOp>& ops);

  /// Appends pre-encoded record frames verbatim, preserving the LSNs the
  /// primary assigned (the standby's apply path: frames are made durable
  /// locally *before* they are applied, so standby crash-recovery replays
  /// the same log a primary would). `first_lsn` must continue the local
  /// sequence; `last_lsn` becomes the new last-appended LSN.
  Status AppendRaw(std::string_view frames, uint64_t first_lsn,
                   uint64_t last_lsn);

  /// Observes every group the moment it is appended (before it is synced),
  /// with the group's encoded frames. Invoked with the WAL mutex held —
  /// the sink must not call back into this Wal. Set once at startup,
  /// before traffic.
  using CommitSink = std::function<void(uint64_t first_lsn, uint64_t last_lsn,
                                        std::string_view frames)>;
  void set_commit_sink(CommitSink sink);

  /// Blocks until every record up to `lsn` is durable per the sync mode.
  Status Sync(uint64_t lsn);

  /// Syncs everything appended so far (shutdown / checkpoint barrier).
  Status Flush();

  /// Checkpoint support: syncs the current segment, then directs further
  /// appends to a fresh segment.
  Status StartNewSegment();

  /// Deletes segments older than the current one. Callers invoke this only
  /// after the snapshot covering them is durable. When `min_keep_lsn` is
  /// given, segments still holding records at or above it survive — they are
  /// the catch-up source for replication standbys that have not acknowledged
  /// past that point.
  Status RetireOldSegments(uint64_t min_keep_lsn = UINT64_MAX);

  const std::string& dir() const { return dir_; }
  int64_t segment_index() const;
  uint64_t last_appended_lsn() const;

 private:
  Wal(std::string dir, const WalOptions& options, uint64_t next_lsn);

  Status OpenSegmentLocked(int64_t index);
  Status SyncFd();    // issues the mode's syscall on fd_ (fd_ must be stable)

  std::string dir_;
  WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  int fd_ = -1;
  int64_t segment_index_ = 0;
  uint64_t segment_bytes_ = 0;  // bytes written to the current segment
  uint64_t next_lsn_ = 1;
  uint64_t appended_lsn_ = 0;  // last LSN fully written
  uint64_t synced_lsn_ = 0;    // last LSN known durable
  bool sync_in_progress_ = false;
  bool broken_ = false;  // a failed partial-write cleanup poisons the log
  CommitSink commit_sink_;

  obs::Counter* commits_ = nullptr;
  obs::Counter* append_bytes_ = nullptr;
  obs::Counter* syncs_ = nullptr;
  obs::Counter* piggybacked_syncs_ = nullptr;
};

}  // namespace ldv::storage

#endif  // LDV_STORAGE_WAL_H_
