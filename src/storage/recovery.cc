#include "storage/recovery.h"

#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <map>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/persistence.h"
#include "storage/wal.h"
#include "util/fsutil.h"
#include "util/strings.h"

namespace ldv::storage {

namespace {

/// Durably shortens `path` to `size` bytes (torn-tail removal). The
/// truncation itself is fsynced so a crash right after recovery cannot
/// resurrect the torn bytes.
Status TruncateFileDurably(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    Status status =
        Status::IOError("truncate " + path + ": " + strerror(errno));
    ::close(fd);
    return status;
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IOError("fsync " + path + ": " + strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace

std::string RecoveryStats::ToString() const {
  std::string out = StrFormat(
      "snapshot=%s seq=%lld segments=%lld records=%lld txns=%lld "
      "ops=%lld skipped=%lld discarded=%lld next_lsn=%llu",
      snapshot_loaded ? "yes" : "no",
      static_cast<long long>(snapshot_stmt_seq),
      static_cast<long long>(segments_scanned),
      static_cast<long long>(records_scanned),
      static_cast<long long>(txns_applied), static_cast<long long>(ops_applied),
      static_cast<long long>(ops_skipped),
      static_cast<long long>(txns_discarded),
      static_cast<unsigned long long>(next_lsn));
  if (truncated_torn_tail) out += " truncated[" + torn_detail + "]";
  return out;
}

Status RecoverDatabase(Database* db, const std::string& data_dir,
                       const std::string& wal_dir, const WalRedoFn& redo,
                       RecoveryStats* stats) {
  obs::Span span("storage.recovery", "storage");
  RecoveryStats local;
  RecoveryStats* out = stats != nullptr ? stats : &local;
  *out = RecoveryStats{};

  if (!data_dir.empty() && FileExists(JoinPath(data_dir, "catalog.json"))) {
    LDV_RETURN_IF_ERROR(LoadDatabase(db, data_dir));
    out->snapshot_loaded = true;
  }
  out->snapshot_stmt_seq = db->current_statement_seq();
  const int64_t snapshot_seq = out->snapshot_stmt_seq;

  if (wal_dir.empty()) return Status::Ok();
  LDV_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                       ListWalSegments(wal_dir));

  obs::Counter* redo_ops = obs::MetricsRegistry::Global().counter(
      "storage.recovery_redo_ops");
  obs::Counter* torn = obs::MetricsRegistry::Global().counter(
      "wal.torn_tail_truncated");
  obs::Counter* corruption = obs::MetricsRegistry::Global().counter(
      "storage.load_corruption");

  // Committed groups are applied in log order as their commit record
  // arrives; groups still pending when the scan ends were torn at the tail
  // and are discarded (they were never acknowledged).
  std::map<int64_t, std::vector<WalOp>> pending;
  uint64_t last_lsn = 0;

  auto apply_commit = [&](int64_t txn_id) -> Status {
    auto it = pending.find(txn_id);
    if (it == pending.end()) {
      // A commit without its begin would mean records vanished mid-log;
      // scanning already guarantees a contiguous prefix, so this is real
      // corruption.
      return Status::IOError(StrFormat(
          "wal: commit of unknown transaction %lld",
          static_cast<long long>(txn_id)));
    }
    for (const WalOp& op : it->second) {
      if (op.stmt_seq_before < snapshot_seq) {
        ++out->ops_skipped;
        continue;
      }
      db->set_statement_seq(op.stmt_seq_before);
      Status applied = redo(op.sql);
      if (!applied.ok()) {
        return Status::IOError("wal redo of \"" + op.sql +
                               "\" failed: " + applied.message());
      }
      // Statements that allocate no version stamp (DDL) still occupy one
      // sequence slot in the live engine; mirror that here so a checkpoint
      // boundary between statements stays unambiguous.
      db->set_statement_seq(
          std::max(db->current_statement_seq(), op.stmt_seq_before + 1));
      ++out->ops_applied;
      redo_ops->Add(1);
    }
    ++out->txns_applied;
    pending.erase(it);
    return Status::Ok();
  };

  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string path = JoinPath(wal_dir, segments[i]);
    LDV_ASSIGN_OR_RETURN(WalSegmentScan scan, ScanWalSegment(path));
    ++out->segments_scanned;
    for (const WalRecord& record : scan.records) {
      ++out->records_scanned;
      last_lsn = std::max(last_lsn, record.lsn);
      switch (record.kind) {
        case WalRecordKind::kBegin:
          pending[record.txn_id];
          break;
        case WalRecordKind::kOp:
          pending[record.txn_id].push_back(record.op);
          break;
        case WalRecordKind::kCommit:
          LDV_RETURN_IF_ERROR(apply_commit(record.txn_id));
          break;
      }
    }
    if (scan.damage.empty()) continue;
    const bool last_segment = i + 1 == segments.size();
    if (!last_segment) {
      // Damage with later segments behind it cannot be a crash tail:
      // committed transactions may be missing. Refuse to guess.
      corruption->Add(1);
      return Status::IOError("wal segment " + path + ": " + scan.damage +
                             " with " +
                             std::to_string(segments.size() - i - 1) +
                             " later segment(s); the log is corrupt, not torn");
    }
    // Torn tail of the final segment: the signature of a crash mid-append.
    // Truncate to the last valid record; the lost suffix was never
    // acknowledged.
    LDV_RETURN_IF_ERROR(TruncateFileDurably(path, scan.valid_bytes));
    out->truncated_torn_tail = true;
    out->torn_detail = segments[i] + ": " + scan.damage;
    torn->Add(1);
  }

  out->txns_discarded = static_cast<int64_t>(pending.size());
  db->set_statement_seq(std::max(db->current_statement_seq(), snapshot_seq));
  out->next_lsn = last_lsn + 1;
  return Status::Ok();
}

}  // namespace ldv::storage
