#include "storage/persistence.h"

#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fsutil.h"
#include "util/serde.h"
#include "util/strings.h"

namespace ldv::storage {

namespace {

/// Current catalog.json format. Format 1 (the original) listed table names
/// as plain strings and stored raw `.tbl` payloads; format 2 lists
/// {name, file, crc32, bytes} objects, appends a CRC-32 trailer to each
/// payload, and writes every file via temp + fsync + rename with a
/// generation-numbered name so an interrupted save can never corrupt the
/// previously committed state.
constexpr int64_t kCatalogFormat = 2;

std::string TableFileName(const std::string& table, int64_t generation) {
  // Generation 1 keeps the historical bare name; rewrites get a suffixed
  // name so the catalog rename stays the single commit point (old data
  // files are never overwritten in place).
  if (generation <= 1) return table + ".tbl";
  return table + ".g" + std::to_string(generation) + ".tbl";
}

std::string CrcTrailer(uint32_t crc) {
  char trailer[4];
  for (int i = 0; i < 4; ++i) {
    trailer[i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  return std::string(trailer, 4);
}

uint32_t ReadCrcTrailer(std::string_view trailer) {
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<uint32_t>(static_cast<unsigned char>(trailer[i]))
           << (8 * i);
  }
  return crc;
}

struct CatalogEntry {
  std::string name;
  std::string file;
  bool has_crc = false;
  uint32_t crc32 = 0;
};

Result<std::vector<CatalogEntry>> ParseCatalogTables(const Json& catalog) {
  const Json* tables = catalog.Find("tables");
  if (tables == nullptr || !tables->is_array()) {
    return Status::IOError("catalog.json missing tables array");
  }
  std::vector<CatalogEntry> entries;
  for (const Json& item : tables->AsArray()) {
    CatalogEntry entry;
    if (item.is_object()) {
      entry.name = item.GetString("name", "");
      if (entry.name.empty()) {
        return Status::IOError("catalog.json table entry missing name");
      }
      entry.file = item.GetString("file", entry.name + ".tbl");
      const Json* crc = item.Find("crc32");
      if (crc != nullptr) {
        entry.has_crc = true;
        entry.crc32 = static_cast<uint32_t>(crc->AsInt());
      }
    } else {
      // Format-1 catalog: bare table name, raw payload without trailer.
      entry.name = item.AsString();
      entry.file = entry.name + ".tbl";
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

std::string SerializeTable(const Table& table) {
  BufferWriter w;
  table.schema().Serialize(&w);
  w.PutVarint(table.live_row_count());
  for (const RowVersion& row : table.rows()) {
    if (row.deleted) continue;
    w.PutVarint(row.rowid);
    w.PutVarint(row.version);
    w.PutVarint(row.used_by_query);
    w.PutVarint(row.used_by_process);
    for (const Value& v : row.values) v.Serialize(&w);
  }
  return w.TakeData();
}

Status DeserializeTableInto(Database* db, const std::string& name,
                            std::string_view bytes) {
  BufferReader r(bytes);
  LDV_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(&r));
  const int num_columns = schema.num_columns();
  LDV_ASSIGN_OR_RETURN(Table * table,
                       db->CreateTable(name, std::move(schema)));
  LDV_ASSIGN_OR_RETURN(int64_t count, r.GetVarint());
  for (int64_t i = 0; i < count; ++i) {
    RowVersion row;
    LDV_ASSIGN_OR_RETURN(row.rowid, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(row.version, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(row.used_by_query, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(row.used_by_process, r.GetVarint());
    row.values.reserve(static_cast<size_t>(num_columns));
    for (int c = 0; c < num_columns; ++c) {
      LDV_ASSIGN_OR_RETURN(Value v, Value::Deserialize(&r));
      row.values.push_back(std::move(v));
    }
    LDV_RETURN_IF_ERROR(table->RestoreRow(std::move(row)));
  }
  return Status::Ok();
}

Status SaveDatabase(const Database& db, const std::string& dir) {
  LDV_RETURN_IF_ERROR(MakeDirs(dir));
  // A rewrite of an existing directory bumps the generation so new data
  // files never overwrite the committed ones; the catalog rename below is
  // the single commit point.
  int64_t generation = 1;
  const std::string catalog_path = JoinPath(dir, "catalog.json");
  if (FileExists(catalog_path)) {
    LDV_ASSIGN_OR_RETURN(std::string old_text, ReadFileToString(catalog_path));
    LDV_ASSIGN_OR_RETURN(Json old_catalog, Json::Parse(old_text));
    generation = old_catalog.GetInt("generation", 1) + 1;
  }

  Json catalog = Json::MakeObject();
  Json tables = Json::MakeArray();
  std::vector<std::string> live_files;
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.FindTable(name);
    std::string payload = SerializeTable(*table);
    uint32_t crc = Crc32(payload);
    std::string file = TableFileName(name, generation);
    payload.append(CrcTrailer(crc));
    LDV_RETURN_IF_ERROR(AtomicWriteFile(JoinPath(dir, file), payload));
    Json entry = Json::MakeObject();
    entry.Set("name", Json::MakeString(name));
    entry.Set("file", Json::MakeString(file));
    entry.Set("crc32", Json::MakeInt(static_cast<int64_t>(crc)));
    entry.Set("bytes", Json::MakeInt(static_cast<int64_t>(payload.size())));
    tables.Append(std::move(entry));
    live_files.push_back(std::move(file));
  }
  catalog.Set("format", Json::MakeInt(kCatalogFormat));
  catalog.Set("generation", Json::MakeInt(generation));
  catalog.Set("tables", std::move(tables));
  catalog.Set("stmt_seq", Json::MakeInt(db.current_statement_seq()));
  LDV_RETURN_IF_ERROR(AtomicWriteFile(catalog_path, catalog.Dump(true)));

  // Committed: garbage-collect data files of earlier generations. Failures
  // here are harmless (orphans are ignored by LoadDatabase and collected by
  // the next save), so errors are not propagated.
  auto listed = ListTree(dir);
  if (listed.ok()) {
    for (const std::string& file : *listed) {
      if (file.size() < 4 || file.substr(file.size() - 4) != ".tbl") continue;
      bool referenced = false;
      for (const std::string& live : live_files) referenced |= (file == live);
      if (!referenced) (void)RemoveAll(JoinPath(dir, file));
    }
  }
  return Status::Ok();
}

Status LoadDatabase(Database* db, const std::string& dir) {
  LDV_ASSIGN_OR_RETURN(std::string catalog_text,
                       ReadFileToString(JoinPath(dir, "catalog.json")));
  LDV_ASSIGN_OR_RETURN(Json catalog, Json::Parse(catalog_text));
  LDV_ASSIGN_OR_RETURN(std::vector<CatalogEntry> entries,
                       ParseCatalogTables(catalog));
  for (const CatalogEntry& entry : entries) {
    const std::string path = JoinPath(dir, entry.file);
    if (!FileExists(path)) {
      return Status::NotFound("table '" + entry.name +
                              "': missing data file " + entry.file);
    }
    LDV_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    std::string_view payload(bytes);
    if (entry.has_crc) {
      if (bytes.size() < 4) {
        return Status::IOError("table '" + entry.name + "': data file " +
                               entry.file + " is truncated (" +
                               std::to_string(bytes.size()) + " bytes)");
      }
      payload = std::string_view(bytes).substr(0, bytes.size() - 4);
      uint32_t stored = ReadCrcTrailer(
          std::string_view(bytes).substr(bytes.size() - 4));
      uint32_t computed = Crc32(payload);
      if (stored != computed || stored != entry.crc32) {
        obs::MetricsRegistry::Global().counter("storage.load_corruption")
            ->Add(1);
        return Status::IOError(StrFormat(
            "table '%s': checksum mismatch in %s at offset %zu "
            "(stored crc 0x%08x, computed 0x%08x, catalog 0x%08x; file is "
            "corrupt or truncated)",
            entry.name.c_str(), path.c_str(), payload.size(), stored, computed,
            entry.crc32));
      }
    }
    LDV_RETURN_IF_ERROR(DeserializeTableInto(db, entry.name, payload));
  }
  db->set_statement_seq(catalog.GetInt("stmt_seq", 0));
  return Status::Ok();
}

}  // namespace ldv::storage
