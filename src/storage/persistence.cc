#include "storage/persistence.h"

#include "common/json.h"
#include "util/fsutil.h"
#include "util/serde.h"

namespace ldv::storage {

std::string SerializeTable(const Table& table) {
  BufferWriter w;
  table.schema().Serialize(&w);
  w.PutVarint(table.live_row_count());
  for (const RowVersion& row : table.rows()) {
    if (row.deleted) continue;
    w.PutVarint(row.rowid);
    w.PutVarint(row.version);
    w.PutVarint(row.used_by_query);
    w.PutVarint(row.used_by_process);
    for (const Value& v : row.values) v.Serialize(&w);
  }
  return w.TakeData();
}

Status DeserializeTableInto(Database* db, const std::string& name,
                            std::string_view bytes) {
  BufferReader r(bytes);
  LDV_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(&r));
  const int num_columns = schema.num_columns();
  LDV_ASSIGN_OR_RETURN(Table * table,
                       db->CreateTable(name, std::move(schema)));
  LDV_ASSIGN_OR_RETURN(int64_t count, r.GetVarint());
  for (int64_t i = 0; i < count; ++i) {
    RowVersion row;
    LDV_ASSIGN_OR_RETURN(row.rowid, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(row.version, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(row.used_by_query, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(row.used_by_process, r.GetVarint());
    row.values.reserve(static_cast<size_t>(num_columns));
    for (int c = 0; c < num_columns; ++c) {
      LDV_ASSIGN_OR_RETURN(Value v, Value::Deserialize(&r));
      row.values.push_back(std::move(v));
    }
    LDV_RETURN_IF_ERROR(table->RestoreRow(std::move(row)));
  }
  return Status::Ok();
}

Status SaveDatabase(const Database& db, const std::string& dir) {
  LDV_RETURN_IF_ERROR(MakeDirs(dir));
  Json catalog = Json::MakeObject();
  Json tables = Json::MakeArray();
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.FindTable(name);
    LDV_RETURN_IF_ERROR(WriteStringToFile(JoinPath(dir, name + ".tbl"),
                                          SerializeTable(*table)));
    tables.Append(Json::MakeString(name));
  }
  catalog.Set("tables", std::move(tables));
  catalog.Set("stmt_seq", Json::MakeInt(db.current_statement_seq()));
  return WriteStringToFile(JoinPath(dir, "catalog.json"), catalog.Dump(true));
}

Status LoadDatabase(Database* db, const std::string& dir) {
  LDV_ASSIGN_OR_RETURN(std::string catalog_text,
                       ReadFileToString(JoinPath(dir, "catalog.json")));
  LDV_ASSIGN_OR_RETURN(Json catalog, Json::Parse(catalog_text));
  const Json* tables = catalog.Find("tables");
  if (tables == nullptr || !tables->is_array()) {
    return Status::IOError("catalog.json missing tables array");
  }
  for (const Json& name_json : tables->AsArray()) {
    const std::string& name = name_json.AsString();
    LDV_ASSIGN_OR_RETURN(std::string bytes,
                         ReadFileToString(JoinPath(dir, name + ".tbl")));
    LDV_RETURN_IF_ERROR(DeserializeTableInto(db, name, bytes));
  }
  db->set_statement_seq(catalog.GetInt("stmt_seq", 0));
  return Status::Ok();
}

}  // namespace ldv::storage
