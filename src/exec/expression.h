#ifndef LDV_EXEC_EXPRESSION_H_
#define LDV_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/value.h"

namespace ldv::exec {

/// One column visible while binding expressions: a qualifier (table alias),
/// a name, and a type. `hidden` columns (the prov_* pseudo-columns) are
/// resolvable by name but excluded from `SELECT *` expansion.
struct ScopeColumn {
  std::string qualifier;
  std::string name;
  storage::ValueType type = storage::ValueType::kString;
  bool hidden = false;
};

/// Name-resolution scope for an operator's output row layout.
class Scope {
 public:
  Scope() = default;

  void Add(ScopeColumn column) { columns_.push_back(std::move(column)); }

  /// Concatenates two scopes (join output: left columns then right).
  static Scope Concat(const Scope& left, const Scope& right);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::vector<ScopeColumn>& columns() const { return columns_; }
  const ScopeColumn& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }

  /// Resolves `qualifier.name` (qualifier may be empty) to a row index.
  /// Unqualified names must be unambiguous.
  Result<int> Resolve(const std::string& qualifier,
                      const std::string& name) const;

  /// True if some column resolves (used for conjunct placement).
  bool CanResolve(const std::string& qualifier, const std::string& name) const;

 private:
  std::vector<ScopeColumn> columns_;
};

/// An expression bound to a concrete row layout: column references carry row
/// indexes and every node carries an inferred result type.
struct BoundExpr {
  sql::ExprKind kind = sql::ExprKind::kLiteral;
  storage::Value literal;
  int column_index = -1;  // kColumnRef row index; kParameter slot index
  std::string func_name;  // kFuncCall
  sql::BinaryOp binary_op = sql::BinaryOp::kEq;
  sql::UnaryOp unary_op = sql::UnaryOp::kNot;
  bool negated = false;
  storage::ValueType result_type = storage::ValueType::kString;
  std::vector<std::unique_ptr<BoundExpr>> children;
};

/// Binds `expr` against `scope`. Aggregate calls are rejected here; the
/// planner rewrites them into synthetic columns before binding.
Result<std::unique_ptr<BoundExpr>> BindExpr(const sql::Expr& expr,
                                            const Scope& scope);

/// Evaluates a bound scalar expression over `row`. `params` supplies the
/// values for kParameter nodes (EXECUTE of a cached plan); evaluating a
/// parameter with no binding is a clean error, never a crash.
Result<storage::Value> EvalExpr(const BoundExpr& expr,
                                const storage::Tuple& row,
                                const storage::Tuple* params);

inline Result<storage::Value> EvalExpr(const BoundExpr& expr,
                                       const storage::Tuple& row) {
  return EvalExpr(expr, row, nullptr);
}

/// Evaluates an expression with no column references (INSERT literals).
Result<storage::Value> EvalConstExpr(const sql::Expr& expr);

/// Collects every column reference (qualifier, name) in the tree.
void CollectColumnRefs(const sql::Expr& expr,
                       std::vector<std::pair<std::string, std::string>>* out);

/// Coerces `v` to column type `type` (int->double widening, text parsing is
/// NOT performed). NULL passes through.
Result<storage::Value> CoerceValue(storage::Value v, storage::ValueType type);

}  // namespace ldv::exec

#endif  // LDV_EXEC_EXPRESSION_H_
