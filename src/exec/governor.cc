#include "exec/governor.h"

#include <algorithm>

#include "common/clock.h"
#include "common/fault.h"
#include "obs/metrics.h"

namespace ldv::exec {

namespace {

/// Counters/gauges the governance paths feed; resolved once (registry
/// lookups take a mutex, observations are relaxed atomics).
struct GovernorMetrics {
  obs::Counter* cancelled;
  obs::Counter* deadline_exceeded;
  obs::Counter* mem_rejected;
  obs::Gauge* mem_peak;
};

const GovernorMetrics& Metrics() {
  static const GovernorMetrics metrics{
      obs::MetricsRegistry::Global().counter("exec.cancelled"),
      obs::MetricsRegistry::Global().counter("exec.deadline_exceeded"),
      obs::MetricsRegistry::Global().counter("exec.mem_rejected"),
      obs::MetricsRegistry::Global().gauge("exec.mem_peak_bytes")};
  return metrics;
}

}  // namespace

bool IsGovernanceStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

size_t ApproxTupleBytes(const storage::Tuple& tuple) {
  size_t bytes = sizeof(storage::Tuple) +
                 tuple.capacity() * sizeof(storage::Value);
  for (const storage::Value& v : tuple) {
    if (v.type() == storage::ValueType::kString) {
      bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

Status MemoryBudget::Charge(size_t bytes) {
  const size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  if (limit_ > 0 && now > limit_) {
    return Status::ResourceExhausted(
        "per-query memory budget exceeded: " + std::to_string(now) +
        " bytes charged, limit " + std::to_string(limit_));
  }
  return Status::Ok();
}

QueryGovernor::~QueryGovernor() {
  // Publish the statement's high-water mark into the process-wide peak
  // gauge (monotone max; a lost race only under-reports transiently).
  const auto peak = static_cast<int64_t>(budget_.peak());
  obs::Gauge* gauge = Metrics().mem_peak;
  if (peak > gauge->Value()) gauge->Set(peak);
}

bool QueryGovernor::Cancel(StatusCode code, std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cancel_code_.load(std::memory_order_relaxed) != 0) return false;
  cancel_reason_ = std::move(reason);
  // Release pairs with Check()'s acquire: a worker that sees the code also
  // sees the reason (the reason is only ever read under mu_ anyway).
  cancel_code_.store(static_cast<int>(code), std::memory_order_release);
  return true;
}

Status QueryGovernor::VerdictLocked() {
  return Status(
      static_cast<StatusCode>(cancel_code_.load(std::memory_order_relaxed)),
      cancel_reason_);
}

Status QueryGovernor::Check() {
  LDV_FAULT_POINT("exec.cancel_check");
  if (cancel_code_.load(std::memory_order_acquire) == 0) {
    if (deadline_nanos_ <= 0 || NowNanos() <= deadline_nanos_) {
      return Status::Ok();
    }
    Cancel(StatusCode::kDeadlineExceeded, "statement deadline exceeded");
  }
  if (!kill_reported_.exchange(true)) {
    const auto code = static_cast<StatusCode>(
        cancel_code_.load(std::memory_order_acquire));
    if (code == StatusCode::kDeadlineExceeded) {
      Metrics().deadline_exceeded->Add(1);
    } else {
      Metrics().cancelled->Add(1);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  return VerdictLocked();
}

Status QueryGovernor::ChargeMemory(size_t bytes) {
  LDV_FAULT_POINT("governor.mem_charge");
  Status charged = budget_.Charge(bytes);
  if (!charged.ok() && !mem_reported_.exchange(true)) {
    Metrics().mem_rejected->Add(1);
  }
  return charged;
}

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* registry = new QueryRegistry();
  return *registry;
}

QueryRegistry::Registration::Registration(Registration&& other) noexcept
    : registry_(other.registry_), token_(other.token_) {
  other.registry_ = nullptr;
  other.token_ = 0;
}

QueryRegistry::Registration& QueryRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->Unregister(token_);
    registry_ = other.registry_;
    token_ = other.token_;
    other.registry_ = nullptr;
    other.token_ = 0;
  }
  return *this;
}

QueryRegistry::Registration::~Registration() {
  if (registry_ != nullptr) registry_->Unregister(token_);
}

QueryRegistry::Registration QueryRegistry::Register(QueryGovernor* governor,
                                                    InflightQuery info) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_token_++;
  entries_.emplace(token, Entry{governor, std::move(info)});
  return Registration(this, token);
}

void QueryRegistry::Unregister(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(token);
}

int64_t QueryRegistry::CancelQuery(int64_t process_id, int64_t query_id,
                                   StatusCode code, std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t signalled = 0;
  for (auto& [token, entry] : entries_) {
    if (entry.info.process_id != process_id) continue;
    if (query_id != 0 && entry.info.query_id != query_id) continue;
    if (entry.governor->Cancel(code, reason)) ++signalled;
  }
  return signalled;
}

int64_t QueryRegistry::CancelSession(int64_t session_id, StatusCode code,
                                     std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t signalled = 0;
  for (auto& [token, entry] : entries_) {
    if (entry.info.session_id != session_id) continue;
    if (entry.governor->Cancel(code, reason)) ++signalled;
  }
  return signalled;
}

std::vector<InflightQuery> QueryRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InflightQuery> out;
  out.reserve(entries_.size());
  for (const auto& [token, entry] : entries_) out.push_back(entry.info);
  return out;
}

int64_t QueryRegistry::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace ldv::exec
