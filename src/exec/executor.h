#ifndef LDV_EXEC_EXECUTOR_H_
#define LDV_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "exec/operators.h"
#include "obs/profile.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace ldv::exec {

struct SelectPlan;

/// One tuple version referenced by a statement's provenance, with its values
/// snapshot — what Perm's rewritten query returns alongside the results and
/// what the packager persists into the package's CSV files.
struct ProvTupleRecord {
  storage::TupleVid vid;
  std::string table;
  storage::Tuple values;
};

/// Provenance of one DML effect.
struct DmlRecord {
  enum class Kind { kInserted, kUpdated, kDeleted };
  Kind kind = Kind::kInserted;
  std::string table;
  /// The created tuple version (insert/update); for deletes, the removed
  /// version.
  storage::TupleVid vid;
  /// The prior version the statement read (update/delete).
  storage::TupleVid prior;
  bool has_prior = false;
};

/// Result of executing one statement.
struct ResultSet {
  storage::Schema schema;
  std::vector<storage::Tuple> rows;
  /// Per-row Lineage (parallel to rows) when provenance was requested.
  std::vector<LineageSet> lineage;
  /// Values of every distinct tuple version appearing in `lineage` or as a
  /// DML prior version.
  std::vector<ProvTupleRecord> prov_tuples;
  std::vector<DmlRecord> dml;
  int64_t affected = 0;
  bool has_provenance = false;
  /// Per-operator execution statistics, set when the statement ran with
  /// ExecOptions::profile (EXPLAIN ANALYZE). Not serialized over the wire;
  /// remote clients see the rendered QUERY PLAN rows instead.
  std::shared_ptr<const obs::QueryProfile> profile;

  /// Deterministic fingerprint of schema+rows, used by replay equivalence
  /// tests.
  uint64_t Fingerprint() const;
};

/// Per-statement execution options: the identifiers the (auditing) client
/// library assigned.
struct ExecOptions {
  int64_t query_id = 0;
  int64_t process_id = 0;
  /// Collect per-operator stats and attach a QueryProfile to the result.
  bool profile = false;
  /// Degree of parallelism for morsel-driven operators: number of threads
  /// (including the caller) a SELECT may use. 0 = the process default
  /// (ThreadPool::default_dop(), i.e. the --threads flag), 1 = serial.
  /// Results are bit-identical at any value. DML, reenactment, and WAL redo
  /// always run serial regardless (DESIGN.md §10).
  int threads = 0;
  /// Cooperative cancellation token + memory budget for this statement; may
  /// be null (internal statements run ungoverned). Owned by the caller and
  /// must outlive the Execute call (DESIGN.md §11).
  QueryGovernor* governor = nullptr;
  /// Read at this snapshot epoch instead of the live state (DESIGN.md §12).
  /// Set by the engine's concurrent read path; 0 = live state.
  int64_t snapshot_epoch = 0;
  /// Vectorized columnar execution (DESIGN.md §15): 0 = the process default
  /// (SetDefaultVectorize, i.e. the --no-vectorize flag), 1 = on, -1 = off.
  /// Results are bit-identical either way; this only selects the engine.
  int vectorize = 0;
};

/// Process-wide default for ExecOptions::vectorize == 0 (starts true).
void SetDefaultVectorize(bool on);
bool DefaultVectorize();

/// The query/DML engine over one Database. Statements carrying the
/// PROVENANCE prefix additionally return Lineage (queries) or reenactment
/// provenance (updates/deletes computed against the pre-state, GProM-style).
class Executor {
 public:
  explicit Executor(storage::Database* db) : db_(db) {}

  /// Parses and executes one statement.
  Result<ResultSet> Execute(std::string_view sql, const ExecOptions& options);

  /// Executes an already-parsed statement.
  Result<ResultSet> ExecuteParsed(const sql::Statement& stmt,
                                  const ExecOptions& options);

  /// Executes a prebuilt (shared, plan-cache) SELECT plan with `params`
  /// bound to its kParameter slots. The plan tree is treated as immutable:
  /// ExecContext::frozen_plan is set, so per-node stats/instrumentation are
  /// never touched and concurrent callers may share one tree. No lineage,
  /// profiling, or subqueries — PlanCacheEligible statements only.
  Result<ResultSet> ExecutePlanned(SelectPlan& plan,
                                   const storage::Tuple& params,
                                   const ExecOptions& options);

  storage::Database* db() { return db_; }

 private:
  Result<ResultSet> ExecSelect(const sql::SelectStmt& select, bool provenance,
                               const ExecOptions& options);
  /// EXPLAIN [ANALYZE] <select>: returns one "QUERY PLAN" text column, one
  /// row per plan-tree line (Postgres style). ANALYZE executes the query
  /// with profiling and attaches the structured profile to the result.
  Result<ResultSet> ExecExplain(const sql::Statement& stmt,
                                const ExecOptions& options);
  Result<ResultSet> ExecInsert(const sql::InsertStmt& insert, bool provenance,
                               const ExecOptions& options);
  Result<ResultSet> ExecCreateTable(const sql::CreateTableStmt& create);
  Result<ResultSet> ExecDropTable(const sql::DropTableStmt& drop);
  Result<ResultSet> ExecAlterTable(const sql::AlterTableAddColumnStmt& alter);
  Result<ResultSet> ExecCreateIndex(const sql::CreateIndexStmt& create);
  Result<ResultSet> ExecCopy(const sql::CopyStmt& copy);

  /// Evaluates every uncorrelated subquery in `expr`, replacing it with its
  /// computed value(s). Under provenance, the tuples the subqueries read are
  /// accumulated as ambient lineage — conservatively, every outer result row
  /// depends on them.
  Result<std::unique_ptr<sql::Expr>> FlattenExpr(
      const sql::Expr& expr, bool provenance, const ExecOptions& options,
      LineageSet* ambient_lineage, std::vector<ProvTupleRecord>* ambient);

  /// Clone of `select` with all subqueries flattened (null when `select`
  /// contains none).
  Result<std::unique_ptr<sql::SelectStmt>> FlattenSelect(
      const sql::SelectStmt& select, bool provenance,
      const ExecOptions& options, LineageSet* ambient_lineage,
      std::vector<ProvTupleRecord>* ambient);

  storage::Database* db_;
};

/// Converts the ExecContext prov-tuple map into sorted ProvTupleRecords.
std::vector<ProvTupleRecord> CollectProvTuples(const ExecContext& ctx,
                                               const storage::Database& db);

}  // namespace ldv::exec

#endif  // LDV_EXEC_EXECUTOR_H_
