#include "exec/operators.h"

#include <algorithm>
#include <optional>

#include "common/clock.h"
#include "obs/span.h"
#include "util/strings.h"

namespace ldv::exec {

using storage::RowVersion;
using storage::Tuple;
using storage::TupleVid;
using storage::Value;
using storage::ValueType;

// ---------------------------------------------------------------------------
// PlanNode instrumentation
// ---------------------------------------------------------------------------

Result<Batch> PlanNode::Execute(ExecContext* ctx) {
  if (!ctx->profile && !obs::TraceRecorder::enabled()) {
    return ExecuteImpl(ctx);
  }
  return ExecuteInstrumented(ctx);
}

Result<Batch> PlanNode::ExecuteInstrumented(ExecContext* ctx) {
  obs::Span span(label(), "exec");
  if (span.recording()) {
    std::string d = detail();
    if (!d.empty()) span.AddArg("detail", d);
  }
  const int64_t start = NowNanos();
  Result<Batch> result = ExecuteImpl(ctx);
  stats_.wall_nanos += NowNanos() - start;
  ++stats_.invocations;
  if (result.ok()) {
    stats_.rows_out += static_cast<int64_t>(result->rows.size());
    if (span.recording()) {
      span.AddArg("rows_out", std::to_string(result->rows.size()));
    }
  }
  return result;
}

void MergeLineage(LineageSet* dst, const LineageSet& src) {
  if (src.empty()) return;
  size_t old_size = dst->size();
  dst->insert(dst->end(), src.begin(), src.end());
  std::inplace_merge(dst->begin(), dst->begin() + static_cast<long>(old_size),
                     dst->end());
  dst->erase(std::unique(dst->begin(), dst->end()), dst->end());
}

// ---------------------------------------------------------------------------
// ScanNode
// ---------------------------------------------------------------------------

ScanNode::ScanNode(storage::Table* table, const std::string& alias,
                   bool expose_prov_columns)
    : table_(table), alias_(alias), expose_prov_columns_(expose_prov_columns) {
  for (const storage::Column& c : table->schema().columns()) {
    scope_.Add({alias, c.name, c.type, /*hidden=*/false});
  }
  if (expose_prov_columns_) {
    scope_.Add({alias, std::string(storage::kProvRowIdColumn),
                ValueType::kInt64, /*hidden=*/true});
    scope_.Add({alias, std::string(storage::kProvVersionColumn),
                ValueType::kInt64, /*hidden=*/true});
    scope_.Add({alias, std::string(storage::kProvUsedByColumn),
                ValueType::kInt64, /*hidden=*/true});
    scope_.Add({alias, std::string(storage::kProvProcessColumn),
                ValueType::kInt64, /*hidden=*/true});
  }
}

Status ScanNode::EmitRow(ExecContext* ctx, RowVersion* row, Batch* out) {
  Tuple values = row->values;
  if (expose_prov_columns_) {
    values.push_back(Value::Int(row->rowid));
    values.push_back(Value::Int(row->version));
    values.push_back(Value::Int(row->used_by_query));
    values.push_back(Value::Int(row->used_by_process));
  }
  if (filter_ != nullptr) {
    LDV_ASSIGN_OR_RETURN(Value keep, EvalExpr(*filter_, values));
    if (!keep.IsTruthy()) return Status::Ok();
  }
  if (ctx->track_lineage) {
    // Lineage-tracked scans stamp the prov_usedby / prov_p attributes of
    // every tuple they read (§VII-B).
    TupleVid vid{table_->id(), row->rowid, row->version};
    row->used_by_query = ctx->query_id;
    row->used_by_process = ctx->process_id;
    out->lineage.push_back({vid});
    ctx->prov_tuples.emplace(vid, row->values);
  }
  out->rows.push_back(std::move(values));
  return Status::Ok();
}

std::string ScanNode::detail() const {
  std::string d = table_->name();
  if (!alias_.empty() && alias_ != table_->name()) d += " AS " + alias_;
  if (has_index_probe()) d += " [index probe]";
  return d;
}

Result<Batch> ScanNode::ExecuteImpl(ExecContext* ctx) {
  Batch out;
  if (has_index_probe() && table_->HasIndexOn(probe_column_)) {
    // Point lookup through the hash index; rowid order keeps emission order
    // identical to a full scan over the same qualifying rows.
    for (storage::RowId rowid :
         table_->IndexLookup(probe_column_, probe_value_)) {
      RowVersion* row = table_->FindMutable(rowid);
      if (row == nullptr) continue;
      LDV_RETURN_IF_ERROR(EmitRow(ctx, row, &out));
    }
    return out;
  }
  for (RowVersion& row : table_->mutable_rows()) {
    if (row.deleted) continue;
    LDV_RETURN_IF_ERROR(EmitRow(ctx, &row, &out));
  }
  return out;
}

// ---------------------------------------------------------------------------
// JoinNode
// ---------------------------------------------------------------------------

JoinNode::JoinNode(std::unique_ptr<PlanNode> left,
                   std::unique_ptr<PlanNode> right,
                   std::vector<std::pair<int, int>> key_pairs,
                   bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      key_pairs_(std::move(key_pairs)),
      left_outer_(left_outer) {
  scope_ = Scope::Concat(left_->scope(), right_->scope());
}

std::string JoinNode::detail() const {
  std::string d;
  if (left_outer_) d = "left outer";
  if (!key_pairs_.empty()) {
    if (!d.empty()) d += ", ";
    d += std::to_string(key_pairs_.size()) + " key" +
         (key_pairs_.size() == 1 ? "" : "s");
  }
  return d;
}

Result<Batch> JoinNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch left, left_->Execute(ctx));
  LDV_ASSIGN_OR_RETURN(Batch right, right_->Execute(ctx));
  const bool lineage = ctx->track_lineage;
  const bool timing = ctx->profile;
  const size_t right_width =
      static_cast<size_t>(right_->scope().num_columns());
  Batch out;

  // Emits left[li] + right[ri]; returns whether the pair survived the
  // residual predicate (needed for outer-join match bookkeeping).
  auto emit = [&](size_t li, size_t ri) -> Result<bool> {
    Tuple row = left.rows[li];
    row.insert(row.end(), right.rows[ri].begin(), right.rows[ri].end());
    if (residual_ != nullptr) {
      LDV_ASSIGN_OR_RETURN(Value keep, EvalExpr(*residual_, row));
      if (!keep.IsTruthy()) return false;
    }
    if (lineage) {
      LineageSet merged = left.lineage[li];
      MergeLineage(&merged, right.lineage[ri]);
      out.lineage.push_back(std::move(merged));
    }
    out.rows.push_back(std::move(row));
    return true;
  };

  auto emit_unmatched = [&](size_t li) {
    Tuple row = left.rows[li];
    row.resize(row.size() + right_width);  // NULL padding
    if (lineage) out.lineage.push_back(left.lineage[li]);
    out.rows.push_back(std::move(row));
  };

  if (key_pairs_.empty()) {
    // Nested loop (the residual is the join predicate).
    for (size_t li = 0; li < left.rows.size(); ++li) {
      bool matched = false;
      for (size_t ri = 0; ri < right.rows.size(); ++ri) {
        LDV_ASSIGN_OR_RETURN(bool hit, emit(li, ri));
        matched |= hit;
      }
      if (left_outer_ && !matched) emit_unmatched(li);
    }
    return out;
  }

  // Build a hash table on the right input.
  std::unordered_multimap<uint64_t, size_t> build;
  build.reserve(right.rows.size());
  auto key_of = [&](const Tuple& row, bool is_right) {
    Tuple key;
    key.reserve(key_pairs_.size());
    for (const auto& [l, r] : key_pairs_) {
      key.push_back(row[static_cast<size_t>(is_right ? r : l)]);
    }
    return key;
  };
  const int64_t build_start = timing ? NowNanos() : 0;
  for (size_t ri = 0; ri < right.rows.size(); ++ri) {
    build.emplace(storage::HashTuple(key_of(right.rows[ri], true)), ri);
  }
  const int64_t probe_start = timing ? NowNanos() : 0;
  if (timing) stats_.build_nanos += probe_start - build_start;
  for (size_t li = 0; li < left.rows.size(); ++li) {
    Tuple probe = key_of(left.rows[li], false);
    bool null_key = false;
    for (const Value& v : probe) null_key |= v.is_null();
    bool matched = false;
    if (!null_key) {  // SQL equality never matches NULL
      auto [begin, end] = build.equal_range(storage::HashTuple(probe));
      for (auto it = begin; it != end; ++it) {
        size_t ri = it->second;
        // Verify equality (hash collisions, and = semantics with coercion).
        bool keys_equal = true;
        for (size_t k = 0; keys_equal && k < key_pairs_.size(); ++k) {
          const Value& lv =
              left.rows[li][static_cast<size_t>(key_pairs_[k].first)];
          const Value& rv =
              right.rows[ri][static_cast<size_t>(key_pairs_[k].second)];
          if (lv.is_null() || rv.is_null()) {
            keys_equal = false;
            break;
          }
          Result<int> cmp = lv.Compare(rv);
          if (!cmp.ok() || *cmp != 0) keys_equal = false;
        }
        if (keys_equal) {
          LDV_ASSIGN_OR_RETURN(bool hit, emit(li, ri));
          matched |= hit;
        }
      }
    }
    if (left_outer_ && !matched) emit_unmatched(li);
  }
  if (timing) stats_.probe_nanos += NowNanos() - probe_start;
  return out;
}

// ---------------------------------------------------------------------------
// FilterNode
// ---------------------------------------------------------------------------

FilterNode::FilterNode(std::unique_ptr<PlanNode> child,
                       std::unique_ptr<BoundExpr> predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  scope_ = child_->scope();
}

Result<Batch> FilterNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  Batch out;
  for (size_t i = 0; i < in.rows.size(); ++i) {
    LDV_ASSIGN_OR_RETURN(Value keep, EvalExpr(*predicate_, in.rows[i]));
    if (!keep.IsTruthy()) continue;
    out.rows.push_back(std::move(in.rows[i]));
    if (ctx->track_lineage) out.lineage.push_back(std::move(in.lineage[i]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ProjectNode
// ---------------------------------------------------------------------------

ProjectNode::ProjectNode(std::unique_ptr<PlanNode> child,
                         std::vector<std::unique_ptr<BoundExpr>> exprs,
                         std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  for (size_t i = 0; i < exprs_.size(); ++i) {
    scope_.Add({"", names[i], exprs_[i]->result_type, /*hidden=*/false});
  }
}

Result<Batch> ProjectNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  Batch out;
  out.rows.reserve(in.rows.size());
  for (size_t i = 0; i < in.rows.size(); ++i) {
    Tuple row;
    row.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in.rows[i]));
      row.push_back(std::move(v));
    }
    out.rows.push_back(std::move(row));
    if (ctx->track_lineage) out.lineage.push_back(std::move(in.lineage[i]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// AggregateNode
// ---------------------------------------------------------------------------

AggregateNode::AggregateNode(std::unique_ptr<PlanNode> child,
                             std::vector<std::unique_ptr<BoundExpr>> group_exprs,
                             std::vector<AggregateSpec> aggs)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    scope_.Add({"", "#grp" + std::to_string(i), group_exprs_[i]->result_type,
                /*hidden=*/false});
  }
  for (const AggregateSpec& a : aggs_) {
    scope_.Add({"", a.output_name, a.output_type, /*hidden=*/false});
  }
}

namespace {

/// Running state for one aggregate within one group.
struct AggState {
  int64_t count = 0;
  bool any = false;
  int64_t sum_int = 0;
  double sum_double = 0;
  bool sum_is_double = false;
  Value extreme;  // min/max
};

struct GroupState {
  Tuple keys;
  std::vector<AggState> aggs;
  LineageSet lineage;
};

Status Accumulate(AggState* state, AggregateSpec::Fn fn, const Value& v) {
  switch (fn) {
    case AggregateSpec::Fn::kCountStar:
      ++state->count;
      return Status::Ok();
    case AggregateSpec::Fn::kCount:
      if (!v.is_null()) ++state->count;
      return Status::Ok();
    case AggregateSpec::Fn::kSum:
    case AggregateSpec::Fn::kAvg:
      if (v.is_null()) return Status::Ok();
      ++state->count;
      state->any = true;
      if (v.type() == ValueType::kInt64 && !state->sum_is_double) {
        state->sum_int += v.AsInt();
      } else {
        if (!state->sum_is_double) {
          state->sum_double = static_cast<double>(state->sum_int);
          state->sum_is_double = true;
        }
        state->sum_double += v.AsDouble();
      }
      return Status::Ok();
    case AggregateSpec::Fn::kMin:
    case AggregateSpec::Fn::kMax: {
      if (v.is_null()) return Status::Ok();
      if (!state->any) {
        state->extreme = v;
        state->any = true;
        return Status::Ok();
      }
      LDV_ASSIGN_OR_RETURN(int cmp, v.Compare(state->extreme));
      if ((fn == AggregateSpec::Fn::kMin && cmp < 0) ||
          (fn == AggregateSpec::Fn::kMax && cmp > 0)) {
        state->extreme = v;
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable aggregate fn");
}

Value Finalize(const AggState& state, const AggregateSpec& spec) {
  switch (spec.fn) {
    case AggregateSpec::Fn::kCountStar:
    case AggregateSpec::Fn::kCount:
      return Value::Int(state.count);
    case AggregateSpec::Fn::kSum:
      if (!state.any) return Value::Null();
      return state.sum_is_double ? Value::Real(state.sum_double)
                                 : Value::Int(state.sum_int);
    case AggregateSpec::Fn::kAvg: {
      if (!state.any) return Value::Null();
      double total = state.sum_is_double ? state.sum_double
                                         : static_cast<double>(state.sum_int);
      return Value::Real(total / static_cast<double>(state.count));
    }
    case AggregateSpec::Fn::kMin:
    case AggregateSpec::Fn::kMax:
      return state.any ? state.extreme : Value::Null();
  }
  return Value::Null();
}

}  // namespace

std::string AggregateNode::detail() const {
  return std::to_string(group_exprs_.size()) + " group keys, " +
         std::to_string(aggs_.size()) + " aggregates";
}

Result<Batch> AggregateNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  const bool lineage = ctx->track_lineage;
  // Group index: key hash -> candidate group ids (chained for collisions).
  std::unordered_multimap<uint64_t, size_t> index;
  std::vector<GroupState> groups;

  for (size_t i = 0; i < in.rows.size(); ++i) {
    Tuple keys;
    keys.reserve(group_exprs_.size());
    for (const auto& g : group_exprs_) {
      LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, in.rows[i]));
      keys.push_back(std::move(v));
    }
    uint64_t h = storage::HashTuple(keys);
    size_t group_id = SIZE_MAX;
    auto [begin, end] = index.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      if (groups[it->second].keys == keys) {
        group_id = it->second;
        break;
      }
    }
    if (group_id == SIZE_MAX) {
      group_id = groups.size();
      GroupState g;
      g.keys = std::move(keys);
      g.aggs.resize(aggs_.size());
      groups.push_back(std::move(g));
      index.emplace(h, group_id);
    }
    GroupState& group = groups[group_id];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      Value arg;
      if (aggs_[a].arg != nullptr) {
        LDV_ASSIGN_OR_RETURN(arg, EvalExpr(*aggs_[a].arg, in.rows[i]));
      }
      LDV_RETURN_IF_ERROR(Accumulate(&group.aggs[a], aggs_[a].fn, arg));
    }
    if (lineage) {
      // Append now, dedup once at finalize: merging per-row keeps the whole
      // accumulation quadratic for large groups (e.g. count(*) over a join).
      group.lineage.insert(group.lineage.end(), in.lineage[i].begin(),
                           in.lineage[i].end());
    }
  }

  // A global aggregate (no GROUP BY) over empty input yields one row.
  if (groups.empty() && group_exprs_.empty()) {
    GroupState g;
    g.aggs.resize(aggs_.size());
    groups.push_back(std::move(g));
  }

  Batch out;
  out.rows.reserve(groups.size());
  for (GroupState& g : groups) {
    Tuple row = std::move(g.keys);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      row.push_back(Finalize(g.aggs[a], aggs_[a]));
    }
    out.rows.push_back(std::move(row));
    if (lineage) {
      std::sort(g.lineage.begin(), g.lineage.end());
      g.lineage.erase(std::unique(g.lineage.begin(), g.lineage.end()),
                      g.lineage.end());
      out.lineage.push_back(std::move(g.lineage));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DistinctNode
// ---------------------------------------------------------------------------

DistinctNode::DistinctNode(std::unique_ptr<PlanNode> child)
    : child_(std::move(child)) {
  scope_ = child_->scope();
}

Result<Batch> DistinctNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  std::unordered_multimap<uint64_t, size_t> seen;  // hash -> out index
  Batch out;
  for (size_t i = 0; i < in.rows.size(); ++i) {
    uint64_t h = storage::HashTuple(in.rows[i]);
    size_t found = SIZE_MAX;
    auto [begin, end] = seen.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      if (out.rows[it->second] == in.rows[i]) {
        found = it->second;
        break;
      }
    }
    if (found == SIZE_MAX) {
      seen.emplace(h, out.rows.size());
      out.rows.push_back(std::move(in.rows[i]));
      if (ctx->track_lineage) out.lineage.push_back(std::move(in.lineage[i]));
    } else if (ctx->track_lineage) {
      MergeLineage(&out.lineage[found], in.lineage[i]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SortLimitNode
// ---------------------------------------------------------------------------

SortLimitNode::SortLimitNode(std::unique_ptr<PlanNode> child,
                             std::vector<SortKey> keys,
                             std::optional<int64_t> limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {
  scope_ = child_->scope();
}

std::string SortLimitNode::detail() const {
  std::string d = std::to_string(keys_.size()) + " sort keys";
  if (limit_.has_value()) d += ", limit " + std::to_string(*limit_);
  return d;
}

Result<Batch> SortLimitNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  std::vector<size_t> order(in.rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  if (!keys_.empty()) {
    // Precompute sort keys; evaluation errors surface before sorting.
    std::vector<Tuple> sort_keys(in.rows.size());
    for (size_t i = 0; i < in.rows.size(); ++i) {
      for (const SortKey& k : keys_) {
        LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*k.expr, in.rows[i]));
        sort_keys[i].push_back(std::move(v));
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < keys_.size(); ++k) {
        Result<int> cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
        int c = cmp.ok() ? *cmp : 0;
        if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
      }
      return false;
    });
  }

  size_t n = order.size();
  if (limit_.has_value() && *limit_ >= 0 &&
      static_cast<size_t>(*limit_) < n) {
    n = static_cast<size_t>(*limit_);
  }
  Batch out;
  out.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.rows.push_back(std::move(in.rows[order[i]]));
    if (ctx->track_lineage) {
      out.lineage.push_back(std::move(in.lineage[order[i]]));
    }
  }
  return out;
}

}  // namespace ldv::exec
