#include "exec/operators.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "common/clock.h"
#include "exec/exec_internal.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/strings.h"

namespace ldv::exec {

using storage::RowVersion;
using storage::Tuple;
using storage::TupleVid;
using storage::Value;
using storage::ValueType;

// ---------------------------------------------------------------------------
// PlanNode instrumentation
// ---------------------------------------------------------------------------

Result<Batch> PlanNode::Execute(ExecContext* ctx) {
  // Shared (cached) plan trees may execute concurrently: never touch
  // stats_, even if tracing got enabled mid-execution.
  if (ctx->frozen_plan || (!ctx->profile && !obs::TraceRecorder::enabled())) {
    return ExecuteImpl(ctx);
  }
  return ExecuteInstrumented(ctx);
}

Result<Batch> PlanNode::ExecuteInstrumented(ExecContext* ctx) {
  obs::Span span(label(), "exec");
  if (span.recording()) {
    std::string d = detail();
    if (!d.empty()) span.AddArg("detail", d);
  }
  const int64_t start = NowNanos();
  Result<Batch> result = ExecuteImpl(ctx);
  stats_.wall_nanos += NowNanos() - start;
  ++stats_.invocations;
  if (result.ok()) {
    stats_.rows_out += static_cast<int64_t>(result->rows.size());
    if (span.recording()) {
      span.AddArg("rows_out", std::to_string(result->rows.size()));
      if (stats_.parallel_morsels > 0) {
        span.AddArg("morsels", std::to_string(stats_.parallel_morsels));
        span.AddArg("workers", std::to_string(stats_.parallel_workers));
      }
    }
  }
  return result;
}

void MergeLineage(LineageSet* dst, const LineageSet& src) {
  if (src.empty()) return;
  size_t old_size = dst->size();
  dst->insert(dst->end(), src.begin(), src.end());
  std::inplace_merge(dst->begin(), dst->begin() + static_cast<long>(old_size),
                     dst->end());
  dst->erase(std::unique(dst->begin(), dst->end()), dst->end());
}

namespace {

/// Counters the parallel fan-outs feed; resolved once (registry lookups
/// take a mutex, Add() is a relaxed sharded increment).
struct ParallelMetrics {
  obs::Counter* fanouts;
  obs::Counter* morsels;
};

const ParallelMetrics& GetParallelMetrics() {
  static const ParallelMetrics metrics{
      obs::MetricsRegistry::Global().counter("exec.parallel.fanouts"),
      obs::MetricsRegistry::Global().counter("exec.parallel.morsels")};
  return metrics;
}

}  // namespace

namespace internal {

size_t NumMorsels(size_t n) { return (n + kMorselRows - 1) / kMorselRows; }

Status RunMorsels(ExecContext* ctx, OpStats* stats, size_t n,
                  const std::function<Status(size_t, size_t, size_t)>& fn) {
  const size_t num_morsels = NumMorsels(n);
  if (!ctx->parallel() || num_morsels <= 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      // Cooperative cancellation at every morsel boundary: a CANCEL, an
      // expired deadline or a vanished client is observed within one
      // morsel's worth of work.
      LDV_RETURN_IF_ERROR(ctx->CheckGovernor());
      const size_t begin = m * kMorselRows;
      LDV_RETURN_IF_ERROR(fn(begin, std::min(n, begin + kMorselRows), m));
    }
    return Status::Ok();
  }
  std::atomic<int64_t> cpu{0};
  const bool timing = ctx->profile;
  // The governor check leads every pooled morsel: once a statement is
  // cancelled, its remaining queued morsels return immediately, which is
  // what hands the ThreadPool slots back promptly.
  auto timed = [&](size_t begin, size_t end, size_t morsel) -> Status {
    LDV_RETURN_IF_ERROR(ctx->CheckGovernor());
    if (!timing) return fn(begin, end, morsel);
    const int64_t start = NowNanos();
    Status status = fn(begin, end, morsel);
    cpu.fetch_add(NowNanos() - start, std::memory_order_relaxed);
    return status;
  };
  Status status = ctx->pool->ParallelFor(n, kMorselRows, timed, ctx->dop);
  if (ctx->frozen_plan) stats = nullptr;  // shared plan: stats are read-only
  if (stats != nullptr) {
    stats->parallel_morsels += static_cast<int64_t>(num_morsels);
    stats->parallel_workers = std::max(
        stats->parallel_workers,
        static_cast<int64_t>(
            std::min(static_cast<size_t>(ctx->dop), num_morsels)));
    stats->cpu_nanos += cpu.load(std::memory_order_relaxed);
  }
  const ParallelMetrics& metrics = GetParallelMetrics();
  metrics.fanouts->Add(1);
  metrics.morsels->Add(static_cast<int64_t>(num_morsels));
  return status;
}

void AppendBatch(Batch* dst, Batch&& src) {
  if (dst->rows.empty() && dst->lineage.empty()) {
    *dst = std::move(src);
    return;
  }
  dst->rows.insert(dst->rows.end(),
                   std::make_move_iterator(src.rows.begin()),
                   std::make_move_iterator(src.rows.end()));
  dst->lineage.insert(dst->lineage.end(),
                      std::make_move_iterator(src.lineage.begin()),
                      std::make_move_iterator(src.lineage.end()));
}

size_t ApproxRowsBytes(const std::vector<Tuple>& rows, size_t begin,
                       size_t end) {
  size_t bytes = 0;
  for (size_t i = begin; i < end; ++i) bytes += ApproxTupleBytes(rows[i]);
  return bytes;
}

Batch ConcatBatches(std::vector<Batch>&& parts) {
  size_t rows = 0;
  size_t lineage = 0;
  for (const Batch& part : parts) {
    rows += part.rows.size();
    lineage += part.lineage.size();
  }
  Batch out;
  out.rows.reserve(rows);
  out.lineage.reserve(lineage);
  for (Batch& part : parts) AppendBatch(&out, std::move(part));
  return out;
}

}  // namespace internal

using internal::AppendBatch;
using internal::ApproxRowsBytes;
using internal::ConcatBatches;
using internal::NumMorsels;
using internal::RunMorsels;

// ---------------------------------------------------------------------------
// ScanNode
// ---------------------------------------------------------------------------

ScanNode::ScanNode(storage::Table* table, const std::string& alias,
                   bool expose_prov_columns)
    : table_(table), alias_(alias), expose_prov_columns_(expose_prov_columns) {
  for (const storage::Column& c : table->schema().columns()) {
    scope_.Add({alias, c.name, c.type, /*hidden=*/false});
  }
  if (expose_prov_columns_) {
    scope_.Add({alias, std::string(storage::kProvRowIdColumn),
                ValueType::kInt64, /*hidden=*/true});
    scope_.Add({alias, std::string(storage::kProvVersionColumn),
                ValueType::kInt64, /*hidden=*/true});
    scope_.Add({alias, std::string(storage::kProvUsedByColumn),
                ValueType::kInt64, /*hidden=*/true});
    scope_.Add({alias, std::string(storage::kProvProcessColumn),
                ValueType::kInt64, /*hidden=*/true});
  }
}

Status ScanNode::EmitRow(ExecContext* ctx, RowVersion* row, Batch* out,
                         ProvRecords* prov) {
  Tuple values = row->values;
  if (expose_prov_columns_) {
    values.push_back(Value::Int(row->rowid));
    values.push_back(Value::Int(row->version));
    values.push_back(Value::Int(row->used_by_query));
    values.push_back(Value::Int(row->used_by_process));
  }
  if (filter_ != nullptr) {
    LDV_ASSIGN_OR_RETURN(Value keep, EvalExpr(*filter_, values, ctx->params));
    if (!keep.IsTruthy()) return Status::Ok();
  }
  if (ctx->track_lineage) {
    // Lineage-tracked scans stamp the prov_usedby / prov_p attributes of
    // every tuple they read (§VII-B). A parallel scan's morsels touch
    // disjoint rows, so the stamps are race-free.
    TupleVid vid{table_->id(), row->rowid, row->version};
    row->used_by_query = ctx->query_id;
    row->used_by_process = ctx->process_id;
    out->lineage.push_back({vid});
    prov->emplace_back(vid, row->values);
  }
  out->rows.push_back(std::move(values));
  return Status::Ok();
}

std::string ScanNode::detail() const {
  std::string d = table_->name();
  if (!alias_.empty() && alias_ != table_->name()) d += " AS " + alias_;
  if (has_index_probe()) d += " [index probe]";
  return d;
}

Result<Batch> ScanNode::ExecuteImpl(ExecContext* ctx) {
  ProvRecords prov;
  Batch out;
  // Snapshot-isolated scan (DESIGN.md §12): when the table carries
  // mutations newer than the snapshot epoch, every slot resolves to the
  // newest version the snapshot may see — possibly an archived pre-image,
  // possibly none. Tables untouched since the epoch take the plain path,
  // so snapshot reads on a quiescent table cost nothing extra.
  const int64_t epoch = ctx->snapshot_epoch;
  const bool versioned = epoch > 0 && table_->last_mutation_seq() > epoch;
  // The hash index covers live rows only; a snapshot that must see rows
  // updated or deleted after its epoch would miss them through the probe,
  // so the scan falls back to the full version-resolving path.
  if (has_index_probe() && table_->HasIndexOn(probe_column_) && !versioned) {
    // Point lookup through the hash index; rowid order keeps emission order
    // identical to a full scan over the same qualifying rows. Stays serial:
    // index probes select few rows by construction.
    for (storage::RowId rowid :
         table_->IndexLookup(probe_column_, probe_value_)) {
      RowVersion* row = table_->FindMutable(rowid);
      if (row == nullptr) continue;
      LDV_RETURN_IF_ERROR(EmitRow(ctx, row, &out, &prov));
    }
  } else {
    std::vector<RowVersion>& rows = table_->mutable_rows();
    const size_t n = rows.size();
    // Emits the version of rows[i] this statement may see. Snapshot reads
    // never track lineage, so the cast-away const on an archived version is
    // never written through (EmitRow mutates only under track_lineage).
    auto emit_visible = [&](size_t i, Batch* batch,
                            ProvRecords* records) -> Status {
      RowVersion* row = &rows[i];
      if (versioned) {
        const RowVersion* visible = table_->VisibleVersion(*row, epoch);
        if (visible == nullptr) return Status::Ok();
        row = const_cast<RowVersion*>(visible);
      } else if (row->deleted) {
        return Status::Ok();
      }
      return EmitRow(ctx, row, batch, records);
    };
    // LIMIT pushdown (no ORDER BY above): stop at the first morsel boundary
    // where the limit is reached. Runs serially — the rows wanted are a
    // prefix, so fanning the tail out would be wasted work — and emits
    // exactly the whole-morsel prefix a limit-aware parallel decomposition
    // would, keeping results identical to the unhinted scan's first rows.
    // Lineage-tracked scans ignore the hint: they stamp every row they read.
    const int64_t limit =
        limit_hint_ >= 0 && !ctx->track_lineage ? limit_hint_ : -1;
    if (limit >= 0) {
      const size_t num_morsels = NumMorsels(n);
      for (size_t m = 0; m < num_morsels; ++m) {
        if (out.rows.size() >= static_cast<size_t>(limit)) break;
        LDV_RETURN_IF_ERROR(ctx->CheckGovernor());
        const size_t begin = m * kMorselRows;
        const size_t end = std::min(n, begin + kMorselRows);
        for (size_t i = begin; i < end; ++i) {
          LDV_RETURN_IF_ERROR(emit_visible(i, &out, &prov));
        }
      }
    } else if (!ctx->parallel() || NumMorsels(n) <= 1) {
      out.rows.reserve(n);
      if (ctx->track_lineage) out.lineage.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        LDV_RETURN_IF_ERROR(emit_visible(i, &out, &prov));
      }
    } else {
      // Morsel-parallel scan with the pushed-down filter fused into each
      // morsel; per-morsel outputs concatenate to the serial emission order.
      std::vector<Batch> parts(NumMorsels(n));
      std::vector<ProvRecords> part_prov(parts.size());
      LDV_RETURN_IF_ERROR(RunMorsels(
          ctx, &stats_, n,
          [&](size_t begin, size_t end, size_t morsel) -> Status {
            Batch& part = parts[morsel];
            part.rows.reserve(end - begin);
            for (size_t i = begin; i < end; ++i) {
              LDV_RETURN_IF_ERROR(
                  emit_visible(i, &part, &part_prov[morsel]));
            }
            return Status::Ok();
          }));
      out = ConcatBatches(std::move(parts));
      size_t total = 0;
      for (const ProvRecords& records : part_prov) total += records.size();
      prov.reserve(total);
      for (ProvRecords& records : part_prov) {
        std::move(records.begin(), records.end(), std::back_inserter(prov));
      }
    }
  }
  for (auto& [vid, values] : prov) {
    ctx->prov_tuples.emplace(vid, std::move(values));
  }
  return out;
}

// ---------------------------------------------------------------------------
// JoinNode
// ---------------------------------------------------------------------------

JoinNode::JoinNode(std::unique_ptr<PlanNode> left,
                   std::unique_ptr<PlanNode> right,
                   std::vector<std::pair<int, int>> key_pairs,
                   bool left_outer)
    : left_(std::move(left)),
      right_(std::move(right)),
      key_pairs_(std::move(key_pairs)),
      left_outer_(left_outer) {
  scope_ = Scope::Concat(left_->scope(), right_->scope());
}

std::string JoinNode::detail() const {
  std::string d;
  if (left_outer_) d = "left outer";
  if (!key_pairs_.empty()) {
    if (!d.empty()) d += ", ";
    d += std::to_string(key_pairs_.size()) + " key" +
         (key_pairs_.size() == 1 ? "" : "s");
  }
  return d;
}

Result<Batch> JoinNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch left, left_->Execute(ctx));
  LDV_ASSIGN_OR_RETURN(Batch right, right_->Execute(ctx));
  return ProcessRows(ctx, std::move(left), std::move(right));
}

Result<Batch> JoinNode::ProcessRows(ExecContext* ctx, Batch&& left,
                                    Batch&& right) {
  const bool lineage = ctx->track_lineage;
  const bool timing = ctx->profile;
  const size_t right_width =
      static_cast<size_t>(right_->scope().num_columns());

  // Emits left[li] + right[ri] into `out`; returns whether the pair
  // survived the residual predicate (outer-join match bookkeeping).
  auto emit = [&](size_t li, size_t ri, Batch* out) -> Result<bool> {
    Tuple row;
    row.reserve(left.rows[li].size() + right.rows[ri].size());
    row = left.rows[li];
    row.insert(row.end(), right.rows[ri].begin(), right.rows[ri].end());
    if (residual_ != nullptr) {
      LDV_ASSIGN_OR_RETURN(Value keep, EvalExpr(*residual_, row, ctx->params));
      if (!keep.IsTruthy()) return false;
    }
    if (lineage) {
      LineageSet merged = left.lineage[li];
      MergeLineage(&merged, right.lineage[ri]);
      out->lineage.push_back(std::move(merged));
    }
    out->rows.push_back(std::move(row));
    return true;
  };

  auto emit_unmatched = [&](size_t li, Batch* out) {
    Tuple row = left.rows[li];
    row.resize(row.size() + right_width);  // NULL padding
    if (lineage) out->lineage.push_back(left.lineage[li]);
    out->rows.push_back(std::move(row));
  };

  // Both join strategies fan out over morsels of the left (probe) input;
  // per-morsel outputs concatenate to left-row order, matches within one
  // left row are emitted in ascending right-row order — deterministic and
  // identical at every degree of parallelism.
  auto probe_morsels =
      [&](const std::function<Status(size_t, Batch*)>& per_left_row)
      -> Result<Batch> {
    const size_t n = left.rows.size();
    std::vector<Batch> parts(NumMorsels(n));
    LDV_RETURN_IF_ERROR(RunMorsels(
        ctx, &stats_, n, [&](size_t begin, size_t end, size_t morsel) {
          for (size_t li = begin; li < end; ++li) {
            LDV_RETURN_IF_ERROR(per_left_row(li, &parts[morsel]));
          }
          return Status::Ok();
        }));
    return ConcatBatches(std::move(parts));
  };

  if (key_pairs_.empty()) {
    // Nested loop (the residual is the join predicate). One morsel covers
    // kMorselRows left rows x |right| evaluations — far more work than any
    // other morsel — so the governor is also checked at a fixed
    // pair-evaluation stride (thread_local: each worker counts its own
    // pairs, no sharing across morsel threads). A cross join is cancellable
    // mid-morsel, whatever the shape of the two sides.
    return probe_morsels([&](size_t li, Batch* out) -> Status {
      bool matched = false;
      thread_local size_t pairs_since_check = 0;
      for (size_t ri = 0; ri < right.rows.size(); ++ri) {
        if (++pairs_since_check >= kMorselRows) {
          pairs_since_check = 0;
          LDV_RETURN_IF_ERROR(ctx->CheckGovernor());
        }
        LDV_ASSIGN_OR_RETURN(bool hit, emit(li, ri, out));
        matched |= hit;
      }
      if (left_outer_ && !matched) emit_unmatched(li, out);
      return Status::Ok();
    });
  }

  // Partitioned hash join. Right rows are hashed in parallel, split into
  // hash-disjoint partitions built concurrently (bucket lists keep
  // ascending right-row order), then the left side probes in parallel.
  auto key_of = [&](const Tuple& row, bool is_right) {
    Tuple key;
    key.reserve(key_pairs_.size());
    for (const auto& [l, r] : key_pairs_) {
      key.push_back(row[static_cast<size_t>(is_right ? r : l)]);
    }
    return key;
  };

  const int64_t build_start = timing ? NowNanos() : 0;
  const size_t num_rights = right.rows.size();
  // The build side is held materialized for the whole build+probe, plus
  // per-row hash/bucket bookkeeping — charge it against the query budget
  // before allocating any of it.
  LDV_RETURN_IF_ERROR(ctx->ChargeMemory(
      ApproxRowsBytes(right.rows, 0, num_rights) +
      num_rights * (sizeof(uint64_t) + sizeof(char) + 3 * sizeof(size_t))));
  std::vector<uint64_t> right_hash(num_rights);
  std::vector<char> right_null_key(num_rights, 0);
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, num_rights, [&](size_t begin, size_t end, size_t) {
        for (size_t ri = begin; ri < end; ++ri) {
          Tuple key = key_of(right.rows[ri], true);
          for (const Value& v : key) {
            if (v.is_null()) right_null_key[ri] = 1;
          }
          right_hash[ri] = storage::HashTuple(key);
        }
        return Status::Ok();
      }));

  // Buckets hold right-row indexes in insertion (= ascending) order. SQL
  // equality never matches NULL, so null-keyed right rows skip the build.
  using PartitionTable = std::unordered_map<uint64_t, std::vector<size_t>>;
  const size_t num_partitions =
      ctx->parallel()
          ? std::min<size_t>(static_cast<size_t>(ctx->dop), 16)
          : 1;
  std::vector<PartitionTable> partitions(num_partitions);
  {
    std::vector<std::function<Status()>> build_tasks;
    build_tasks.reserve(num_partitions);
    for (size_t p = 0; p < num_partitions; ++p) {
      build_tasks.push_back([&, p]() -> Status {
        PartitionTable& table = partitions[p];
        for (size_t ri = 0; ri < num_rights; ++ri) {
          if (right_null_key[ri]) continue;
          if (right_hash[ri] % num_partitions != p) continue;
          table[right_hash[ri]].push_back(ri);
        }
        return Status::Ok();
      });
    }
    if (num_partitions > 1) {
      LDV_RETURN_IF_ERROR(ctx->pool->RunTasks(std::move(build_tasks),
                                              ctx->dop));
    } else {
      LDV_RETURN_IF_ERROR(build_tasks[0]());
    }
  }
  const int64_t probe_start = timing ? NowNanos() : 0;
  if (timing) stats_.build_nanos += probe_start - build_start;

  Result<Batch> out = probe_morsels([&](size_t li, Batch* out) -> Status {
    Tuple probe = key_of(left.rows[li], false);
    bool null_key = false;
    for (const Value& v : probe) null_key |= v.is_null();
    bool matched = false;
    if (!null_key) {  // SQL equality never matches NULL
      const uint64_t h = storage::HashTuple(probe);
      const PartitionTable& table = partitions[h % num_partitions];
      auto it = table.find(h);
      if (it != table.end()) {
        for (size_t ri : it->second) {
          // Verify equality (hash collisions, and = semantics with
          // coercion).
          bool keys_equal = true;
          for (size_t k = 0; keys_equal && k < key_pairs_.size(); ++k) {
            const Value& lv =
                left.rows[li][static_cast<size_t>(key_pairs_[k].first)];
            const Value& rv =
                right.rows[ri][static_cast<size_t>(key_pairs_[k].second)];
            if (lv.is_null() || rv.is_null()) {
              keys_equal = false;
              break;
            }
            Result<int> cmp = lv.Compare(rv);
            if (!cmp.ok() || *cmp != 0) keys_equal = false;
          }
          if (keys_equal) {
            LDV_ASSIGN_OR_RETURN(bool hit, emit(li, ri, out));
            matched |= hit;
          }
        }
      }
    }
    if (left_outer_ && !matched) emit_unmatched(li, out);
    return Status::Ok();
  });
  if (timing) stats_.probe_nanos += NowNanos() - probe_start;
  return out;
}

// ---------------------------------------------------------------------------
// FilterNode
// ---------------------------------------------------------------------------

FilterNode::FilterNode(std::unique_ptr<PlanNode> child,
                       std::unique_ptr<BoundExpr> predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  scope_ = child_->scope();
}

Result<Batch> FilterNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  return ProcessRows(ctx, std::move(in));
}

Result<Batch> FilterNode::ProcessRows(ExecContext* ctx, Batch&& in) {
  std::vector<Batch> parts(NumMorsels(in.rows.size()));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, in.rows.size(),
      [&](size_t begin, size_t end, size_t morsel) -> Status {
        Batch& part = parts[morsel];
        for (size_t i = begin; i < end; ++i) {
          LDV_ASSIGN_OR_RETURN(Value keep,
                               EvalExpr(*predicate_, in.rows[i], ctx->params));
          if (!keep.IsTruthy()) continue;
          part.rows.push_back(std::move(in.rows[i]));
          if (ctx->track_lineage) {
            part.lineage.push_back(std::move(in.lineage[i]));
          }
        }
        return Status::Ok();
      }));
  return ConcatBatches(std::move(parts));
}

// ---------------------------------------------------------------------------
// ProjectNode
// ---------------------------------------------------------------------------

ProjectNode::ProjectNode(std::unique_ptr<PlanNode> child,
                         std::vector<std::unique_ptr<BoundExpr>> exprs,
                         std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  for (size_t i = 0; i < exprs_.size(); ++i) {
    scope_.Add({"", names[i], exprs_[i]->result_type, /*hidden=*/false});
  }
}

Result<Batch> ProjectNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  return ProcessRows(ctx, std::move(in));
}

Result<Batch> ProjectNode::ProcessRows(ExecContext* ctx, Batch&& in) {
  Batch out;
  out.rows.resize(in.rows.size());
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, in.rows.size(),
      [&](size_t begin, size_t end, size_t) -> Status {
        for (size_t i = begin; i < end; ++i) {
          Tuple row;
          row.reserve(exprs_.size());
          for (const auto& e : exprs_) {
            LDV_ASSIGN_OR_RETURN(Value v,
                                 EvalExpr(*e, in.rows[i], ctx->params));
            row.push_back(std::move(v));
          }
          out.rows[i] = std::move(row);
        }
        return Status::Ok();
      }));
  if (ctx->track_lineage) out.lineage = std::move(in.lineage);
  return out;
}

// ---------------------------------------------------------------------------
// AggregateNode
// ---------------------------------------------------------------------------

AggregateNode::AggregateNode(std::unique_ptr<PlanNode> child,
                             std::vector<std::unique_ptr<BoundExpr>> group_exprs,
                             std::vector<AggregateSpec> aggs)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    scope_.Add({"", "#grp" + std::to_string(i), group_exprs_[i]->result_type,
                /*hidden=*/false});
  }
  for (const AggregateSpec& a : aggs_) {
    scope_.Add({"", a.output_name, a.output_type, /*hidden=*/false});
  }
}

namespace internal {

size_t GroupTable::FindOrCreate(uint64_t hash, Tuple&& keys,
                                size_t num_aggs) {
  auto [begin, end] = index.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (groups[it->second].keys == keys) return it->second;
  }
  size_t id = groups.size();
  GroupState g;
  g.keys = std::move(keys);
  g.aggs.resize(num_aggs);
  groups.push_back(std::move(g));
  hashes.push_back(hash);
  index.emplace(hash, id);
  return id;
}

Status Accumulate(AggState* state, AggregateSpec::Fn fn, const Value& v) {
  switch (fn) {
    case AggregateSpec::Fn::kCountStar:
      ++state->count;
      return Status::Ok();
    case AggregateSpec::Fn::kCount:
      if (!v.is_null()) ++state->count;
      return Status::Ok();
    case AggregateSpec::Fn::kSum:
    case AggregateSpec::Fn::kAvg:
      if (v.is_null()) return Status::Ok();
      ++state->count;
      state->any = true;
      if (v.type() == ValueType::kInt64 && !state->sum_is_double) {
        state->sum_int += v.AsInt();
      } else {
        if (!state->sum_is_double) {
          state->sum_double = static_cast<double>(state->sum_int);
          state->sum_is_double = true;
        }
        state->sum_double += v.AsDouble();
      }
      return Status::Ok();
    case AggregateSpec::Fn::kMin:
    case AggregateSpec::Fn::kMax: {
      if (v.is_null()) return Status::Ok();
      if (!state->any) {
        state->extreme = v;
        state->any = true;
        return Status::Ok();
      }
      LDV_ASSIGN_OR_RETURN(int cmp, v.Compare(state->extreme));
      if ((fn == AggregateSpec::Fn::kMin && cmp < 0) ||
          (fn == AggregateSpec::Fn::kMax && cmp > 0)) {
        state->extreme = v;
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable aggregate fn");
}

Status MergeAggState(AggState* into, const AggState& from,
                     AggregateSpec::Fn fn) {
  switch (fn) {
    case AggregateSpec::Fn::kCountStar:
    case AggregateSpec::Fn::kCount:
      into->count += from.count;
      return Status::Ok();
    case AggregateSpec::Fn::kSum:
    case AggregateSpec::Fn::kAvg:
      into->count += from.count;
      if (!from.any) return Status::Ok();
      into->any = true;
      if (from.sum_is_double || into->sum_is_double) {
        if (!into->sum_is_double) {
          into->sum_double = static_cast<double>(into->sum_int);
          into->sum_is_double = true;
        }
        into->sum_double += from.sum_is_double
                                ? from.sum_double
                                : static_cast<double>(from.sum_int);
      } else {
        into->sum_int += from.sum_int;
      }
      return Status::Ok();
    case AggregateSpec::Fn::kMin:
    case AggregateSpec::Fn::kMax: {
      if (!from.any) return Status::Ok();
      if (!into->any) {
        *into = from;
        return Status::Ok();
      }
      LDV_ASSIGN_OR_RETURN(int cmp, from.extreme.Compare(into->extreme));
      if ((fn == AggregateSpec::Fn::kMin && cmp < 0) ||
          (fn == AggregateSpec::Fn::kMax && cmp > 0)) {
        into->extreme = from.extreme;
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable aggregate fn");
}

Value FinalizeAgg(const AggState& state, const AggregateSpec& spec) {
  switch (spec.fn) {
    case AggregateSpec::Fn::kCountStar:
    case AggregateSpec::Fn::kCount:
      return Value::Int(state.count);
    case AggregateSpec::Fn::kSum:
      if (!state.any) return Value::Null();
      return state.sum_is_double ? Value::Real(state.sum_double)
                                 : Value::Int(state.sum_int);
    case AggregateSpec::Fn::kAvg: {
      if (!state.any) return Value::Null();
      double total = state.sum_is_double ? state.sum_double
                                         : static_cast<double>(state.sum_int);
      return Value::Real(total / static_cast<double>(state.count));
    }
    case AggregateSpec::Fn::kMin:
    case AggregateSpec::Fn::kMax:
      return state.any ? state.extreme : Value::Null();
  }
  return Value::Null();
}

Result<Batch> MergeAndFinalizeGroups(std::vector<GroupTable>&& partials,
                                     const std::vector<AggregateSpec>& aggs,
                                     bool group_by, bool lineage) {
  // Phase 2: deterministic merge in morsel order. A group's global position
  // is its first appearance over the input — exactly the serial order.
  GroupTable global;
  for (GroupTable& partial : partials) {
    for (size_t g = 0; g < partial.groups.size(); ++g) {
      GroupState& local_group = partial.groups[g];
      const uint64_t h = partial.hashes[g];
      auto [begin, end] = global.index.equal_range(h);
      size_t id = SIZE_MAX;
      for (auto it = begin; it != end; ++it) {
        if (global.groups[it->second].keys == local_group.keys) {
          id = it->second;
          break;
        }
      }
      if (id == SIZE_MAX) {
        global.hashes.push_back(h);
        global.index.emplace(h, global.groups.size());
        global.groups.push_back(std::move(local_group));
        continue;
      }
      GroupState& into = global.groups[id];
      for (size_t a = 0; a < aggs.size(); ++a) {
        LDV_RETURN_IF_ERROR(
            MergeAggState(&into.aggs[a], local_group.aggs[a], aggs[a].fn));
      }
      if (lineage) {
        into.lineage.insert(
            into.lineage.end(),
            std::make_move_iterator(local_group.lineage.begin()),
            std::make_move_iterator(local_group.lineage.end()));
      }
    }
  }
  std::vector<GroupState>& groups = global.groups;

  // A global aggregate (no GROUP BY) over empty input yields one row.
  if (groups.empty() && !group_by) {
    GroupState g;
    g.aggs.resize(aggs.size());
    groups.push_back(std::move(g));
  }

  Batch out;
  out.rows.reserve(groups.size());
  if (lineage) out.lineage.reserve(groups.size());
  for (GroupState& g : groups) {
    Tuple row = std::move(g.keys);
    row.reserve(row.size() + aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(FinalizeAgg(g.aggs[a], aggs[a]));
    }
    out.rows.push_back(std::move(row));
    if (lineage) {
      std::sort(g.lineage.begin(), g.lineage.end());
      g.lineage.erase(std::unique(g.lineage.begin(), g.lineage.end()),
                      g.lineage.end());
      out.lineage.push_back(std::move(g.lineage));
    }
  }
  return out;
}

}  // namespace internal

using internal::Accumulate;
using internal::AggState;
using internal::GroupState;
using internal::GroupTable;
using internal::MergeAndFinalizeGroups;

std::string AggregateNode::detail() const {
  return std::to_string(group_exprs_.size()) + " group keys, " +
         std::to_string(aggs_.size()) + " aggregates";
}

Result<Batch> AggregateNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  return ProcessRows(ctx, std::move(in));
}

Result<Batch> AggregateNode::ProcessRows(ExecContext* ctx, Batch&& in) {
  const bool lineage = ctx->track_lineage;

  // Phase 1: thread-local partial group tables, one per morsel. The
  // partials depend only on the (fixed) morsel boundaries, so phase 2's
  // merge — and with it every result bit — is reproducible at any DOP.
  std::vector<GroupTable> partials(NumMorsels(in.rows.size()));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, in.rows.size(),
      [&](size_t begin, size_t end, size_t morsel) -> Status {
        GroupTable& local = partials[morsel];
        for (size_t i = begin; i < end; ++i) {
          Tuple keys;
          keys.reserve(group_exprs_.size());
          for (const auto& g : group_exprs_) {
            LDV_ASSIGN_OR_RETURN(Value v,
                                 EvalExpr(*g, in.rows[i], ctx->params));
            keys.push_back(std::move(v));
          }
          uint64_t h = storage::HashTuple(keys);
          size_t group_id = local.FindOrCreate(h, std::move(keys),
                                               aggs_.size());
          GroupState& group = local.groups[group_id];
          for (size_t a = 0; a < aggs_.size(); ++a) {
            Value arg;
            if (aggs_[a].arg != nullptr) {
              LDV_ASSIGN_OR_RETURN(
                  arg, EvalExpr(*aggs_[a].arg, in.rows[i], ctx->params));
            }
            LDV_RETURN_IF_ERROR(Accumulate(&group.aggs[a], aggs_[a].fn, arg));
          }
          if (lineage) {
            // Append now, dedup once at finalize: merging per-row keeps the
            // whole accumulation quadratic for large groups (e.g. count(*)
            // over a join).
            group.lineage.insert(group.lineage.end(), in.lineage[i].begin(),
                                 in.lineage[i].end());
          }
        }
        // Charge the morsel's partial table against the query budget: the
        // partials are all retained until the phase-2 merge.
        size_t partial_bytes = 0;
        for (const GroupState& g : local.groups) {
          partial_bytes += sizeof(GroupState) + ApproxTupleBytes(g.keys) +
                           g.aggs.size() * sizeof(AggState);
        }
        return ctx->ChargeMemory(partial_bytes);
      }));

  return MergeAndFinalizeGroups(std::move(partials), aggs_,
                                !group_exprs_.empty(), lineage);
}

// ---------------------------------------------------------------------------
// DistinctNode
// ---------------------------------------------------------------------------

DistinctNode::DistinctNode(std::unique_ptr<PlanNode> child)
    : child_(std::move(child)) {
  scope_ = child_->scope();
}

Result<Batch> DistinctNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  return ProcessRows(ctx, std::move(in));
}

Result<Batch> DistinctNode::ProcessRows(ExecContext* ctx, Batch&& in) {
  const bool lineage = ctx->track_lineage;

  // Phase 1: dedup within each morsel (first appearance kept, duplicate
  // lineage unioned locally), keeping row hashes for the merge.
  struct Partial {
    Batch out;
    std::vector<uint64_t> hashes;
    std::unordered_multimap<uint64_t, size_t> seen;
  };
  std::vector<Partial> partials(NumMorsels(in.rows.size()));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, in.rows.size(),
      [&](size_t begin, size_t end, size_t morsel) -> Status {
        Partial& local = partials[morsel];
        for (size_t i = begin; i < end; ++i) {
          uint64_t h = storage::HashTuple(in.rows[i]);
          size_t found = SIZE_MAX;
          auto [first, last] = local.seen.equal_range(h);
          for (auto it = first; it != last; ++it) {
            if (local.out.rows[it->second] == in.rows[i]) {
              found = it->second;
              break;
            }
          }
          if (found == SIZE_MAX) {
            local.seen.emplace(h, local.out.rows.size());
            local.hashes.push_back(h);
            local.out.rows.push_back(std::move(in.rows[i]));
            if (lineage) local.out.lineage.push_back(std::move(in.lineage[i]));
          } else if (lineage) {
            MergeLineage(&local.out.lineage[found], in.lineage[i]);
          }
        }
        // Charge the retained (deduped) morsel output plus its hash index.
        return ctx->ChargeMemory(
            ApproxRowsBytes(local.out.rows, 0, local.out.rows.size()) +
            local.out.rows.size() * (sizeof(uint64_t) + 4 * sizeof(size_t)));
      }));

  // Phase 2: merge partials in morsel order — global first-appearance
  // order and lineage unions match the serial pass exactly.
  std::unordered_multimap<uint64_t, size_t> seen;
  Batch out;
  for (Partial& partial : partials) {
    for (size_t i = 0; i < partial.out.rows.size(); ++i) {
      const uint64_t h = partial.hashes[i];
      size_t found = SIZE_MAX;
      auto [first, last] = seen.equal_range(h);
      for (auto it = first; it != last; ++it) {
        if (out.rows[it->second] == partial.out.rows[i]) {
          found = it->second;
          break;
        }
      }
      if (found == SIZE_MAX) {
        seen.emplace(h, out.rows.size());
        out.rows.push_back(std::move(partial.out.rows[i]));
        if (lineage) out.lineage.push_back(std::move(partial.out.lineage[i]));
      } else if (lineage) {
        MergeLineage(&out.lineage[found], partial.out.lineage[i]);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SortLimitNode
// ---------------------------------------------------------------------------

SortLimitNode::SortLimitNode(std::unique_ptr<PlanNode> child,
                             std::vector<SortKey> keys,
                             std::optional<int64_t> limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {
  scope_ = child_->scope();
}

std::string SortLimitNode::detail() const {
  std::string d = std::to_string(keys_.size()) + " sort keys";
  if (limit_.has_value()) d += ", limit " + std::to_string(*limit_);
  return d;
}

Result<Batch> SortLimitNode::ExecuteImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(Batch in, child_->Execute(ctx));
  return ProcessRows(ctx, std::move(in));
}

Result<Batch> SortLimitNode::ProcessRows(ExecContext* ctx, Batch&& in) {
  const size_t n = in.rows.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  if (!keys_.empty() && n > 1) {
    // Precompute sort keys (parallel over morsels; evaluation errors
    // surface before sorting, lowest-indexed morsel first — the serial
    // error too).
    std::vector<Tuple> sort_keys(n);
    LDV_RETURN_IF_ERROR(RunMorsels(
        ctx, &stats_, n, [&](size_t begin, size_t end, size_t) -> Status {
          for (size_t i = begin; i < end; ++i) {
            Tuple key;
            key.reserve(keys_.size());
            for (const SortKey& k : keys_) {
              LDV_ASSIGN_OR_RETURN(Value v,
                                   EvalExpr(*k.expr, in.rows[i], ctx->params));
              key.push_back(std::move(v));
            }
            sort_keys[i] = std::move(key);
          }
          // The evaluated sort keys are retained for the whole sort+merge.
          return ctx->ChargeMemory(ApproxRowsBytes(sort_keys, begin, end) +
                                   (end - begin) * sizeof(size_t));
        }));
    auto key_less = [&](size_t a, size_t b) {
      for (size_t k = 0; k < keys_.size(); ++k) {
        Result<int> cmp = sort_keys[a][k].Compare(sort_keys[b][k]);
        int c = cmp.ok() ? *cmp : 0;
        if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
      }
      return false;
    };

    // Sort each morsel's index range (stable within the morsel), then
    // k-way merge the runs, breaking key ties by original index — which
    // reproduces one global stable sort at any DOP.
    LDV_RETURN_IF_ERROR(RunMorsels(
        ctx, &stats_, n, [&](size_t begin, size_t end, size_t) -> Status {
          std::stable_sort(order.begin() + static_cast<long>(begin),
                           order.begin() + static_cast<long>(end), key_less);
          return Status::Ok();
        }));
    const size_t num_runs = NumMorsels(n);
    if (num_runs > 1) {
      auto merge_less = [&](size_t a, size_t b) {
        if (key_less(a, b)) return true;
        if (key_less(b, a)) return false;
        return a < b;  // stability: input order among equal keys
      };
      std::vector<size_t> run_pos(num_runs), run_end(num_runs);
      for (size_t r = 0; r < num_runs; ++r) {
        run_pos[r] = r * kMorselRows;
        run_end[r] = std::min(n, run_pos[r] + kMorselRows);
      }
      std::vector<size_t> merged;
      merged.reserve(n);
      const size_t want =
          limit_.has_value() && *limit_ >= 0 &&
                  static_cast<size_t>(*limit_) < n
              ? static_cast<size_t>(*limit_)
              : n;
      while (merged.size() < want) {
        // The k-way merge is serial and can cover the full input; keep it
        // cancellable at the same stride the morsel loops use.
        if ((merged.size() % kMorselRows) == kMorselRows - 1) {
          LDV_RETURN_IF_ERROR(ctx->CheckGovernor());
        }
        size_t best = SIZE_MAX;
        for (size_t r = 0; r < num_runs; ++r) {
          if (run_pos[r] == run_end[r]) continue;
          if (best == SIZE_MAX ||
              merge_less(order[run_pos[r]], order[run_pos[best]])) {
            best = r;
          }
        }
        if (best == SIZE_MAX) break;
        merged.push_back(order[run_pos[best]++]);
      }
      order = std::move(merged);
    }
  }

  size_t count = order.size();
  if (limit_.has_value() && *limit_ >= 0 &&
      static_cast<size_t>(*limit_) < count) {
    count = static_cast<size_t>(*limit_);
  }
  Batch out;
  out.rows.reserve(count);
  if (ctx->track_lineage) out.lineage.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.rows.push_back(std::move(in.rows[order[i]]));
    if (ctx->track_lineage) {
      out.lineage.push_back(std::move(in.lineage[order[i]]));
    }
  }
  return out;
}

}  // namespace ldv::exec
