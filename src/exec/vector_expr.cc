#include "exec/vector_expr.h"

#include <utility>

#include "common/logging.h"
#include "util/strings.h"

namespace ldv::exec {
namespace {

using sql::BinaryOp;
using sql::ExprKind;
using sql::UnaryOp;
using storage::Value;
using storage::ValueType;

/// Statically comparable: Value::Compare can never error. A kNull operand is
/// fine (every cell is NULL, so Compare's error path is unreachable).
bool Comparable(ValueType a, ValueType b) {
  if (a == ValueType::kNull || b == ValueType::kNull) return true;
  return (a == ValueType::kString) == (b == ValueType::kString);
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

void Reset(ColumnVector* out, ValueType t) {
  out->type = t;
  out->length = 0;
  out->nulls.clear();
  out->i64.clear();
  out->f64.clear();
  out->str.clear();
}

/// All-NULL result of `n` rows (a statically-NULL operand poisons the whole
/// vector, exactly as EvalExpr returns Value::Null() row by row).
void FillAllNull(size_t n, ColumnVector* out) {
  Reset(out, ValueType::kNull);
  out->length = n;
}

void Broadcast(const Value& v, size_t n, ColumnVector* out) {
  if (v.is_null()) {
    FillAllNull(n, out);
    return;
  }
  Reset(out, v.type());
  switch (v.type()) {
    case ValueType::kInt64:
      out->i64.assign(n, v.AsInt());
      break;
    case ValueType::kDouble:
      out->f64.assign(n, v.AsDouble());
      break;
    case ValueType::kString:
      // Views into the plan literal / caller's bound parameter, both of
      // which outlive the statement.
      out->str.assign(n, std::string_view(v.AsString()));
      break;
    case ValueType::kNull:
      break;
  }
  out->length = n;
}

void SliceColumn(const ColumnVector& src, size_t begin, size_t end,
                 ColumnVector* out) {
  const size_t n = end - begin;
  Reset(out, src.type);
  out->length = n;
  if (!src.nulls.empty()) {
    out->nulls.assign(src.nulls.begin() + static_cast<ptrdiff_t>(begin),
                      src.nulls.begin() + static_cast<ptrdiff_t>(end));
  }
  switch (src.type) {
    case ValueType::kInt64:
      out->i64.assign(src.i64.begin() + static_cast<ptrdiff_t>(begin),
                      src.i64.begin() + static_cast<ptrdiff_t>(end));
      break;
    case ValueType::kDouble:
      out->f64.assign(src.f64.begin() + static_cast<ptrdiff_t>(begin),
                      src.f64.begin() + static_cast<ptrdiff_t>(end));
      break;
    case ValueType::kString:
      out->str.assign(src.str.begin() + static_cast<ptrdiff_t>(begin),
                      src.str.begin() + static_cast<ptrdiff_t>(end));
      break;
    case ValueType::kNull:
      break;
  }
}

int64_t ApplyCmp(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    case BinaryOp::kGe:
      return cmp >= 0;
    default:
      return 0;
  }
}

/// Comparison kernel: NULL in -> NULL out, else Int(0/1) from the same
/// three-way comparison Value::Compare performs (int-int exact, numeric via
/// double coercion — NaN three-ways to 0, i.e. "equal", preserving the row
/// engine's quirk — and string bytewise).
void CompareKernel(BinaryOp op, const ColumnVector& l, const ColumnVector& r,
                   ColumnVector* out) {
  const size_t n = l.length;
  if (l.type == ValueType::kNull || r.type == ValueType::kNull) {
    FillAllNull(n, out);
    return;
  }
  Reset(out, ValueType::kInt64);
  out->i64.assign(n, 0);
  out->length = n;
  const bool has_null = !l.nulls.empty() || !r.nulls.empty();
  if (has_null) out->nulls.assign(n, 0);
  auto loop = [&](auto cmp3) {
    if (has_null) {
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          out->nulls[i] = 1;
        } else {
          out->i64[i] = ApplyCmp(op, cmp3(i));
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) out->i64[i] = ApplyCmp(op, cmp3(i));
    }
  };
  if (l.type == ValueType::kString) {
    loop([&](size_t i) {
      const int c = l.str[i].compare(r.str[i]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    });
  } else if (l.type == ValueType::kInt64 && r.type == ValueType::kInt64) {
    loop([&](size_t i) {
      return l.i64[i] < r.i64[i] ? -1 : (l.i64[i] > r.i64[i] ? 1 : 0);
    });
  } else {
    loop([&](size_t i) {
      const double a = l.AsF64(i);
      const double b = r.AsF64(i);
      return a < b ? -1 : (a > b ? 1 : 0);
    });
  }
}

void ArithmeticKernel(BinaryOp op, const ColumnVector& l,
                      const ColumnVector& r, ColumnVector* out) {
  const size_t n = l.length;
  if (l.type == ValueType::kNull || r.type == ValueType::kNull) {
    FillAllNull(n, out);
    return;
  }
  const bool has_null = !l.nulls.empty() || !r.nulls.empty();

  if (op == BinaryOp::kMod) {
    // Both sides statically kInt64; x % 0 is NULL (checked before dividing,
    // so there is no UB path).
    Reset(out, ValueType::kInt64);
    out->i64.assign(n, 0);
    out->length = n;
    out->nulls.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if ((has_null && (l.IsNull(i) || r.IsNull(i))) || r.i64[i] == 0) {
        out->nulls[i] = 1;
      } else {
        out->i64[i] = l.i64[i] % r.i64[i];
      }
    }
    return;
  }
  if (op == BinaryOp::kDiv) {
    // Division always yields a double; x / 0 is NULL.
    Reset(out, ValueType::kDouble);
    out->f64.assign(n, 0);
    out->length = n;
    out->nulls.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      if (has_null && (l.IsNull(i) || r.IsNull(i))) {
        out->nulls[i] = 1;
        continue;
      }
      const double d = r.AsF64(i);
      if (d == 0) {
        out->nulls[i] = 1;
      } else {
        out->f64[i] = l.AsF64(i) / d;
      }
    }
    return;
  }

  if (l.type == ValueType::kInt64 && r.type == ValueType::kInt64) {
    Reset(out, ValueType::kInt64);
    out->i64.assign(n, 0);
    out->length = n;
    if (has_null) out->nulls.assign(n, 0);
    auto loop = [&](auto fn) {
      if (has_null) {
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNull(i) || r.IsNull(i)) {
            out->nulls[i] = 1;
          } else {
            out->i64[i] = fn(l.i64[i], r.i64[i]);
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) out->i64[i] = fn(l.i64[i], r.i64[i]);
      }
    };
    switch (op) {
      case BinaryOp::kAdd:
        loop([](int64_t a, int64_t b) { return a + b; });
        break;
      case BinaryOp::kSub:
        loop([](int64_t a, int64_t b) { return a - b; });
        break;
      default:
        loop([](int64_t a, int64_t b) { return a * b; });
        break;
    }
    return;
  }

  Reset(out, ValueType::kDouble);
  out->f64.assign(n, 0);
  out->length = n;
  if (has_null) out->nulls.assign(n, 0);
  auto loop = [&](auto fn) {
    if (has_null) {
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNull(i) || r.IsNull(i)) {
          out->nulls[i] = 1;
        } else {
          out->f64[i] = fn(l.AsF64(i), r.AsF64(i));
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) out->f64[i] = fn(l.AsF64(i), r.AsF64(i));
    }
  };
  switch (op) {
    case BinaryOp::kAdd:
      loop([](double a, double b) { return a + b; });
      break;
    case BinaryOp::kSub:
      loop([](double a, double b) { return a - b; });
      break;
    default:
      loop([](double a, double b) { return a * b; });
      break;
  }
}

void LikeKernel(bool negated, const ColumnVector& l, const ColumnVector& r,
                ColumnVector* out) {
  const size_t n = l.length;
  if (l.type == ValueType::kNull || r.type == ValueType::kNull) {
    FillAllNull(n, out);
    return;
  }
  Reset(out, ValueType::kInt64);
  out->i64.assign(n, 0);
  out->length = n;
  const bool has_null = !l.nulls.empty() || !r.nulls.empty();
  if (has_null) out->nulls.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (has_null && (l.IsNull(i) || r.IsNull(i))) {
      out->nulls[i] = 1;
      continue;
    }
    const bool m = SqlLikeMatch(l.str[i], r.str[i]);
    out->i64[i] = negated ? !m : m;
  }
}

void LogicalKernel(BinaryOp op, const ColumnVector& l, const ColumnVector& r,
                   ColumnVector* out) {
  const size_t n = l.length;
  std::vector<uint8_t> lt, rt;
  VectorTruthy(l, &lt);
  VectorTruthy(r, &rt);
  Reset(out, ValueType::kInt64);
  out->i64.assign(n, 0);
  out->length = n;
  if (op == BinaryOp::kAnd) {
    for (size_t i = 0; i < n; ++i) out->i64[i] = lt[i] && rt[i];
  } else {
    for (size_t i = 0; i < n; ++i) out->i64[i] = lt[i] || rt[i];
  }
}

void UnaryKernel(const BoundExpr& e, const ColumnVector& c,
                 ColumnVector* out) {
  const size_t n = c.length;
  switch (e.unary_op) {
    case UnaryOp::kIsNull:
    case UnaryOp::kIsNotNull: {
      const bool want_null = e.unary_op == UnaryOp::kIsNull;
      Reset(out, ValueType::kInt64);
      out->i64.assign(n, 0);
      out->length = n;
      for (size_t i = 0; i < n; ++i) {
        out->i64[i] = c.IsNull(i) == want_null;
      }
      return;
    }
    case UnaryOp::kNot: {
      if (c.type == ValueType::kNull) {
        FillAllNull(n, out);
        return;
      }
      std::vector<uint8_t> t;
      VectorTruthy(c, &t);
      Reset(out, ValueType::kInt64);
      out->i64.assign(n, 0);
      out->length = n;
      if (!c.nulls.empty()) out->nulls = c.nulls;  // NULL passes through
      for (size_t i = 0; i < n; ++i) out->i64[i] = !t[i];
      return;
    }
    case UnaryOp::kNeg: {
      if (c.type == ValueType::kNull) {
        FillAllNull(n, out);
        return;
      }
      Reset(out, c.type);
      out->length = n;
      out->nulls = c.nulls;
      if (c.type == ValueType::kInt64) {
        out->i64.assign(n, 0);
        for (size_t i = 0; i < n; ++i) out->i64[i] = -c.i64[i];
      } else {
        out->f64.assign(n, 0);
        for (size_t i = 0; i < n; ++i) out->f64[i] = -c.f64[i];
      }
      return;
    }
  }
}

void BetweenKernel(const BoundExpr& e, const ColumnVector& v,
                   const ColumnVector& lo, const ColumnVector& hi,
                   ColumnVector* out) {
  const size_t n = v.length;
  Reset(out, ValueType::kInt64);
  out->i64.assign(n, 0);
  out->length = n;
  const bool has_null = v.type == ValueType::kNull ||
                        lo.type == ValueType::kNull ||
                        hi.type == ValueType::kNull || !v.nulls.empty() ||
                        !lo.nulls.empty() || !hi.nulls.empty();
  if (has_null) out->nulls.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (has_null && (v.IsNull(i) || lo.IsNull(i) || hi.IsNull(i))) {
      out->nulls[i] = 1;
      continue;
    }
    const bool in = CompareCells(v, i, lo, i) >= 0 &&
                    CompareCells(v, i, hi, i) <= 0;
    out->i64[i] = e.negated ? !in : in;
  }
}

}  // namespace

bool CanVectorizeExpr(const BoundExpr& expr, const storage::Tuple* params) {
  for (const auto& child : expr.children) {
    if (!CanVectorizeExpr(*child, params)) return false;
  }
  switch (expr.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return true;
    case ExprKind::kParameter:
      // The kernel broadcasts the bound value; if its runtime type diverged
      // from the plan-stamped type the static checks below would be judging
      // the wrong type, so fall back to the row engine in that case.
      return params != nullptr && expr.column_index >= 0 &&
             static_cast<size_t>(expr.column_index) < params->size() &&
             (*params)[static_cast<size_t>(expr.column_index)].type() ==
                 expr.result_type;
    case ExprKind::kUnary:
      if (expr.unary_op == UnaryOp::kNeg) {
        return expr.children[0]->result_type != ValueType::kString;
      }
      return true;
    case ExprKind::kBinary: {
      const ValueType a = expr.children[0]->result_type;
      const ValueType b = expr.children[1]->result_type;
      switch (expr.binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return true;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return Comparable(a, b);
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return a != ValueType::kString && b != ValueType::kString;
        case BinaryOp::kMod:
          return (a == ValueType::kInt64 || a == ValueType::kNull) &&
                 (b == ValueType::kInt64 || b == ValueType::kNull);
        case BinaryOp::kLike:
        case BinaryOp::kNotLike:
          return (a == ValueType::kString || a == ValueType::kNull) &&
                 (b == ValueType::kString || b == ValueType::kNull);
        case BinaryOp::kConcat:
          return false;  // would materialize strings; row engine handles it
      }
      return false;
    }
    case ExprKind::kBetween: {
      const ValueType v = expr.children[0]->result_type;
      return Comparable(v, expr.children[1]->result_type) &&
             Comparable(v, expr.children[2]->result_type);
    }
    case ExprKind::kInList: {
      const ValueType probe = expr.children[0]->result_type;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        if (!Comparable(probe, expr.children[i]->result_type)) return false;
      }
      return true;
    }
    case ExprKind::kStar:
    case ExprKind::kFuncCall:
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      return false;
  }
  return false;
}

void EvalVector(const BoundExpr& expr, const ColumnBatch& batch, size_t begin,
                size_t end, const storage::Tuple* params, ColumnVector* out) {
  const size_t n = end - begin;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      Broadcast(expr.literal, n, out);
      return;
    case ExprKind::kParameter:
      Broadcast((*params)[static_cast<size_t>(expr.column_index)], n, out);
      return;
    case ExprKind::kColumnRef:
      SliceColumn(batch.cols[static_cast<size_t>(expr.column_index)], begin,
                  end, out);
      return;
    case ExprKind::kUnary: {
      ColumnVector c;
      EvalVector(*expr.children[0], batch, begin, end, params, &c);
      UnaryKernel(expr, c, out);
      return;
    }
    case ExprKind::kBinary: {
      ColumnVector l, r;
      EvalVector(*expr.children[0], batch, begin, end, params, &l);
      EvalVector(*expr.children[1], batch, begin, end, params, &r);
      if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
        LogicalKernel(expr.binary_op, l, r, out);
      } else if (IsComparison(expr.binary_op)) {
        CompareKernel(expr.binary_op, l, r, out);
      } else if (expr.binary_op == BinaryOp::kLike ||
                 expr.binary_op == BinaryOp::kNotLike) {
        LikeKernel(expr.binary_op == BinaryOp::kNotLike, l, r, out);
      } else {
        ArithmeticKernel(expr.binary_op, l, r, out);
      }
      return;
    }
    case ExprKind::kBetween: {
      ColumnVector v, lo, hi;
      EvalVector(*expr.children[0], batch, begin, end, params, &v);
      EvalVector(*expr.children[1], batch, begin, end, params, &lo);
      EvalVector(*expr.children[2], batch, begin, end, params, &hi);
      BetweenKernel(expr, v, lo, hi, out);
      return;
    }
    case ExprKind::kInList: {
      std::vector<ColumnVector> vals(expr.children.size());
      for (size_t c = 0; c < expr.children.size(); ++c) {
        EvalVector(*expr.children[c], batch, begin, end, params, &vals[c]);
      }
      const ColumnVector& probe = vals[0];
      Reset(out, ValueType::kInt64);
      out->i64.assign(n, 0);
      out->length = n;
      const bool probe_nullable =
          probe.type == ValueType::kNull || !probe.nulls.empty();
      if (probe_nullable) out->nulls.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (probe_nullable && probe.IsNull(i)) {
          out->nulls[i] = 1;
          continue;
        }
        bool matched = false;
        for (size_t c = 1; c < vals.size(); ++c) {
          if (vals[c].IsNull(i)) continue;  // NULL list items are skipped
          if (CompareCells(probe, i, vals[c], i) == 0) {
            matched = true;
            break;
          }
        }
        out->i64[i] = matched ? !expr.negated : expr.negated;
      }
      return;
    }
    case ExprKind::kStar:
    case ExprKind::kFuncCall:
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      break;
  }
  LDV_CHECK(false);  // CanVectorizeExpr must have rejected this tree
}

void VectorTruthy(const ColumnVector& v, std::vector<uint8_t>* out) {
  out->assign(v.length, 0);
  switch (v.type) {
    case ValueType::kNull:
      return;
    case ValueType::kInt64:
      for (size_t i = 0; i < v.length; ++i) {
        (*out)[i] = !v.IsNull(i) && v.i64[i] != 0;
      }
      return;
    case ValueType::kDouble:
      for (size_t i = 0; i < v.length; ++i) {
        (*out)[i] = !v.IsNull(i) && v.f64[i] != 0;
      }
      return;
    case ValueType::kString:
      for (size_t i = 0; i < v.length; ++i) {
        (*out)[i] = !v.IsNull(i) && !v.str[i].empty();
      }
      return;
  }
}

}  // namespace ldv::exec
