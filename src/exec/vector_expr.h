#ifndef LDV_EXEC_VECTOR_EXPR_H_
#define LDV_EXEC_VECTOR_EXPR_H_

#include <cstdint>
#include <vector>

#include "exec/column_batch.h"
#include "exec/expression.h"

namespace ldv::exec {

/// True when `expr` can be evaluated by the columnar kernels with results
/// bit-identical to EvalExpr. The test is static (expression shape + bound
/// result types + actual parameter types), chosen so that a vectorizable
/// tree can NEVER raise a runtime error — which is what licenses the kernels
/// to evaluate AND/OR/BETWEEN operands eagerly instead of short-circuiting:
/// with no error path, eager evaluation is observationally identical.
///
/// Out of scope (row-engine fallback): CONCAT and function calls (would
/// materialize strings), subqueries, string negation/arithmetic/mixed
/// comparisons (runtime type errors), and parameters whose bound value's
/// type differs from the plan-stamped type.
bool CanVectorizeExpr(const BoundExpr& expr, const storage::Tuple* params);

/// Evaluates `expr` over rows [begin, end) of `batch` into `out` (dense,
/// length end-begin). Must only be called when CanVectorizeExpr held for the
/// same params; kernels are total functions under that precondition.
void EvalVector(const BoundExpr& expr, const ColumnBatch& batch, size_t begin,
                size_t end, const storage::Tuple* params, ColumnVector* out);

/// SQL truthiness per cell (NULL -> 0; numeric != 0; non-empty string),
/// matching Value::IsTruthy. `out` is resized to v.length.
void VectorTruthy(const ColumnVector& v, std::vector<uint8_t>* out);

}  // namespace ldv::exec

#endif  // LDV_EXEC_VECTOR_EXPR_H_
