#include "exec/wal_redo.h"

#include "exec/executor.h"

namespace ldv::exec {

storage::WalRedoFn MakeWalRedo(storage::Database* db) {
  // One Executor shared across redo calls, like the live engine shares one.
  auto executor = std::make_shared<Executor>(db);
  return [executor](const std::string& sql) -> Status {
    // Redo replays one statement at a time in log order; force serial
    // execution so recovery never contends with (or waits on) the pool.
    ExecOptions options;
    options.threads = 1;
    Result<ResultSet> result = executor->Execute(sql, options);
    return result.status();
  };
}

Status RecoverWithWal(storage::Database* db, const std::string& data_dir,
                      const std::string& wal_dir,
                      storage::RecoveryStats* stats) {
  return storage::RecoverDatabase(db, data_dir, wal_dir, MakeWalRedo(db),
                                  stats);
}

}  // namespace ldv::exec
