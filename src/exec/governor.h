#ifndef LDV_EXEC_GOVERNOR_H_
#define LDV_EXEC_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace ldv::exec {

/// True for the resource-governance status taxonomy (DESIGN.md §11):
/// Cancelled / DeadlineExceeded / ResourceExhausted. These are definitive
/// per-statement verdicts — never transport errors — so retry layers must
/// not re-run them and the server's response-dedup cache must not record
/// them (a retried request id means "run it again", not "replay the kill").
bool IsGovernanceStatus(StatusCode code);

/// Rough retained-heap estimate of one tuple: the inline Value
/// representations plus string heap. Used by the memory-charging operators;
/// precision is not the point — catching a build table or partial that is
/// orders of magnitude over budget before it OOMs the process is.
size_t ApproxTupleBytes(const storage::Tuple& tuple);

/// Per-query memory accounting. Charges are cumulative high-water
/// accounting (operators charge what they materialize and never release —
/// a statement's budget dies with the statement), so `used` tracks the
/// statement's total materialization, not its instantaneous heap.
/// Thread-safe: morsel workers charge concurrently.
class MemoryBudget {
 public:
  /// `limit_bytes` == 0 disables the cap (accounting still runs).
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  void set_limit(size_t limit_bytes) { limit_ = limit_bytes; }
  size_t limit() const { return limit_; }

  /// Adds `bytes`; fails with kResourceExhausted once the total passes the
  /// cap. The charge sticks either way (the statement is unwinding).
  Status Charge(size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// Cooperative cancellation token + memory budget for one statement.
/// Carried in ExecContext; operators call Check() at every morsel boundary
/// and expression-loop stride, and ChargeMemory() when they materialize.
/// Cancellation triggers (kCancel protocol verb, statement deadline, client
/// disconnect) only flip a flag — the executing threads observe it at the
/// next check and unwind through the normal Status error path, which is
/// what keeps ThreadPool slots reclaimed promptly and transactions on the
/// existing TxnScope undo path.
class QueryGovernor {
 public:
  QueryGovernor() = default;
  ~QueryGovernor();

  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  /// Absolute NowNanos() deadline; 0 disables.
  void set_deadline_nanos(int64_t deadline) { deadline_nanos_ = deadline; }
  int64_t deadline_nanos() const { return deadline_nanos_; }

  void set_mem_limit_bytes(size_t bytes) { budget_.set_limit(bytes); }

  /// Requests cancellation with the given verdict. Idempotent; the first
  /// cancel wins (returns true iff this call installed the verdict).
  /// `code` must be a governance code (kCancelled for the protocol verb and
  /// disconnects, kDeadlineExceeded for deadlines).
  bool Cancel(StatusCode code, std::string reason);

  bool cancelled() const {
    return cancel_code_.load(std::memory_order_acquire) != 0;
  }

  /// The cooperative check: OK while the statement may keep running,
  /// the governance verdict once it must stop. Also trips the deadline.
  /// Fault point `exec.cancel_check`.
  Status Check();

  /// Charges the per-query budget; kResourceExhausted at the cap.
  /// Fault point `governor.mem_charge`.
  Status ChargeMemory(size_t bytes);

  const MemoryBudget& budget() const { return budget_; }

 private:
  Status VerdictLocked();

  std::atomic<int> cancel_code_{0};  // StatusCode, 0 = not cancelled
  std::mutex mu_;                    // guards cancel_reason_
  std::string cancel_reason_;
  int64_t deadline_nanos_ = 0;
  MemoryBudget budget_;
  // First-observer flags so each kill/rejection bumps its metric once per
  // statement, not once per worker that notices.
  std::atomic<bool> kill_reported_{false};
  std::atomic<bool> mem_reported_{false};
};

/// One in-flight statement as reported by the kStats control message.
struct InflightQuery {
  int64_t process_id = 0;
  int64_t query_id = 0;
  int64_t session_id = 0;
  std::string sql;
  int64_t start_nanos = 0;
};

/// Process-wide registry of in-flight statements and their governors — the
/// lookup structure behind the kCancel protocol verb (by pid/qid), the
/// server's abort-on-disconnect watcher (by session), and the stats
/// in-flight listing. Registration is RAII: the engine registers each
/// statement before executing (even while queued behind another session's
/// transaction, so queued statements are cancellable too) and the entry
/// disappears when the statement returns. A cancel that arrives after the
/// statement finished finds nothing and cancels nothing.
class QueryRegistry {
 public:
  static QueryRegistry& Global();

  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept;
    Registration& operator=(Registration&& other) noexcept;
    ~Registration();

    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

   private:
    friend class QueryRegistry;
    Registration(QueryRegistry* registry, uint64_t token)
        : registry_(registry), token_(token) {}
    QueryRegistry* registry_ = nullptr;
    uint64_t token_ = 0;
  };

  /// `governor` must outlive the returned Registration (both are stack
  /// locals of EngineHandle::ExecuteSession, destroyed in reverse order).
  Registration Register(QueryGovernor* governor, InflightQuery info);

  /// Cancels every in-flight statement with this process id (and query id,
  /// unless `query_id` == 0, which matches the whole process). Returns how
  /// many governors were signalled.
  int64_t CancelQuery(int64_t process_id, int64_t query_id, StatusCode code,
                      std::string reason);

  /// Cancels every in-flight statement of one server session (client
  /// disconnect). Returns how many governors were signalled.
  int64_t CancelSession(int64_t session_id, StatusCode code,
                        std::string reason);

  std::vector<InflightQuery> Snapshot() const;
  int64_t inflight() const;

 private:
  void Unregister(uint64_t token);

  struct Entry {
    QueryGovernor* governor = nullptr;
    InflightQuery info;
  };

  mutable std::mutex mu_;
  uint64_t next_token_ = 1;
  std::map<uint64_t, Entry> entries_;
};

}  // namespace ldv::exec

#endif  // LDV_EXEC_GOVERNOR_H_
