#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/planner.h"
#include "exec/reenactment.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "util/csv.h"
#include "util/fsutil.h"
#include "util/strings.h"

namespace ldv::exec {

using sql::Statement;
using sql::StatementKind;
using storage::Table;
using storage::Tuple;
using storage::TupleVid;
using storage::Value;

namespace {

std::atomic<bool> g_default_vectorize{true};

/// Resolves the tri-state ExecOptions::vectorize against the process
/// default.
bool ResolveVectorize(const ExecOptions& options) {
  if (options.vectorize != 0) return options.vectorize > 0;
  return g_default_vectorize.load(std::memory_order_relaxed);
}

obs::Counter* VectorizedQueriesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().counter("exec.vectorized.queries");
  return counter;
}

/// Runs the plan through the engine the options select. Both engines
/// produce bit-identical rows, lineage, and ordering at any DOP; the
/// columnar result converts back to rows at the root.
Result<Batch> RunPlanRoot(PlanNode* root, ExecContext* ctx,
                          const ExecOptions& options) {
  if (!ResolveVectorize(options)) return root->Execute(ctx);
  VectorizedQueriesCounter()->Add(1);
  LDV_ASSIGN_OR_RETURN(ColumnarResult columnar, root->ExecuteColumnar(ctx));
  return ColumnarToRows(ctx, nullptr, std::move(columnar));
}

}  // namespace

void SetDefaultVectorize(bool on) {
  g_default_vectorize.store(on, std::memory_order_relaxed);
}

bool DefaultVectorize() {
  return g_default_vectorize.load(std::memory_order_relaxed);
}

uint64_t ResultSet::Fingerprint() const {
  uint64_t h = Fnv1a(schema.ToString());
  h ^= static_cast<uint64_t>(affected) * 0x9E3779B97F4A7C15ULL;
  for (const Tuple& row : rows) {
    h ^= storage::HashTuple(row) + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::vector<ProvTupleRecord> CollectProvTuples(const ExecContext& ctx,
                                               const storage::Database& db) {
  std::vector<ProvTupleRecord> out;
  out.reserve(ctx.prov_tuples.size());
  for (const auto& [vid, values] : ctx.prov_tuples) {
    ProvTupleRecord rec;
    rec.vid = vid;
    const Table* table = db.FindTableById(vid.table_id);
    rec.table = table != nullptr ? table->name() : "?";
    rec.values = values;
    out.push_back(std::move(rec));
  }
  std::sort(out.begin(), out.end(),
            [](const ProvTupleRecord& a, const ProvTupleRecord& b) {
              return a.vid < b.vid;
            });
  return out;
}

namespace {

bool ExprHasSubquery(const sql::Expr& expr) {
  if (expr.subquery != nullptr) return true;
  for (const auto& child : expr.children) {
    if (ExprHasSubquery(*child)) return true;
  }
  return false;
}

/// Copies labels and accumulated OpStats out of an executed plan tree.
obs::OperatorProfile ProfileFromPlan(const PlanNode& node) {
  obs::OperatorProfile op;
  op.label = node.label();
  op.detail = node.detail();
  const OpStats& stats = node.stats();
  op.rows_out = stats.rows_out;
  op.invocations = stats.invocations;
  op.wall_nanos = stats.wall_nanos;
  op.build_nanos = stats.build_nanos;
  op.probe_nanos = stats.probe_nanos;
  op.parallel_morsels = stats.parallel_morsels;
  op.parallel_workers = stats.parallel_workers;
  op.cpu_nanos = stats.cpu_nanos;
  op.vector_batches = stats.vector_batches;
  op.row_fallbacks = stats.row_fallbacks;
  for (const PlanNode* child : node.children()) {
    op.children.push_back(ProfileFromPlan(*child));
  }
  return op;
}

bool SelectHasSubquery(const sql::SelectStmt& select) {
  for (const auto& item : select.items) {
    if (ExprHasSubquery(*item.expr)) return true;
  }
  for (const sql::TableRef& ref : select.from) {
    if (ref.join_condition != nullptr && ExprHasSubquery(*ref.join_condition)) {
      return true;
    }
  }
  if (select.where != nullptr && ExprHasSubquery(*select.where)) return true;
  for (const auto& g : select.group_by) {
    if (ExprHasSubquery(*g)) return true;
  }
  if (select.having != nullptr && ExprHasSubquery(*select.having)) {
    return true;
  }
  for (const auto& o : select.order_by) {
    if (ExprHasSubquery(*o.expr)) return true;
  }
  return false;
}

}  // namespace

Result<ResultSet> Executor::Execute(std::string_view sql,
                                    const ExecOptions& options) {
  LDV_ASSIGN_OR_RETURN(Statement stmt, sql::Parse(sql));
  return ExecuteParsed(stmt, options);
}

Result<ResultSet> Executor::ExecuteParsed(const Statement& stmt,
                                          const ExecOptions& options) {
  // A cancel/deadline that landed while the statement was queued (e.g.
  // waiting behind another session's transaction) aborts before any work.
  if (options.governor != nullptr) {
    LDV_RETURN_IF_ERROR(options.governor->Check());
  }
  if (stmt.explain) return ExecExplain(stmt, options);
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecSelect(*stmt.select, stmt.provenance, options);
    case StatementKind::kInsert:
      return ExecInsert(*stmt.insert, stmt.provenance, options);
    case StatementKind::kUpdate:
    case StatementKind::kDelete: {
      // Flatten subqueries in the WHERE clause first (their provenance
      // joins the statement's provenance).
      const sql::Expr* where = stmt.kind == StatementKind::kUpdate
                                   ? stmt.update->where.get()
                                   : stmt.del->where.get();
      std::unique_ptr<sql::Expr> flattened_where;
      LineageSet ambient_lineage;
      std::vector<ProvTupleRecord> ambient;
      if (where != nullptr && ExprHasSubquery(*where)) {
        LDV_ASSIGN_OR_RETURN(flattened_where,
                             FlattenExpr(*where, stmt.provenance, options,
                                         &ambient_lineage, &ambient));
        where = flattened_where.get();
      }
      Result<ResultSet> result =
          stmt.kind == StatementKind::kUpdate
              ? ExecUpdate(db_, *stmt.update, where, stmt.provenance, options)
              : ExecDelete(db_, *stmt.del, where, stmt.provenance, options);
      if (result.ok() && stmt.provenance && !ambient.empty()) {
        for (ProvTupleRecord& rec : ambient) {
          result->prov_tuples.push_back(std::move(rec));
        }
      }
      return result;
    }
    case StatementKind::kCreateTable:
      return ExecCreateTable(*stmt.create_table);
    case StatementKind::kDropTable:
      return ExecDropTable(*stmt.drop_table);
    case StatementKind::kAlterTableAddColumn:
      return ExecAlterTable(*stmt.alter_table);
    case StatementKind::kCreateIndex:
      return ExecCreateIndex(*stmt.create_index);
    case StatementKind::kCopy:
      return ExecCopy(*stmt.copy);
    case StatementKind::kTransaction:
      // Single-statement autocommit engine: BEGIN/COMMIT/ROLLBACK accepted
      // as no-ops for application compatibility.
      return ResultSet{};
    case StatementKind::kPrepare:
    case StatementKind::kExecute:
    case StatementKind::kDeallocate:
      // Prepared-statement handles are per-session state owned by the
      // engine/session layer (EngineHandle); a bare Executor has nowhere to
      // keep them.
      return Status::InvalidArgument(
          "PREPARE/EXECUTE/DEALLOCATE require a session");
  }
  return Status::Internal("unreachable statement kind");
}

Result<std::unique_ptr<sql::Expr>> Executor::FlattenExpr(
    const sql::Expr& expr, bool provenance, const ExecOptions& options,
    LineageSet* ambient_lineage, std::vector<ProvTupleRecord>* ambient) {
  // Executes one subquery and folds its provenance into the ambient sets.
  auto run_subquery = [&](const sql::SelectStmt& subquery)
      -> Result<ResultSet> {
    LDV_ASSIGN_OR_RETURN(ResultSet sub,
                         ExecSelect(subquery, provenance, options));
    if (provenance) {
      for (const LineageSet& set : sub.lineage) {
        MergeLineage(ambient_lineage, set);
      }
      for (ProvTupleRecord& rec : sub.prov_tuples) {
        ambient->push_back(std::move(rec));
      }
    }
    return sub;
  };

  switch (expr.kind) {
    case sql::ExprKind::kSubquery: {
      LDV_ASSIGN_OR_RETURN(ResultSet sub, run_subquery(*expr.subquery));
      if (sub.schema.num_columns() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must return one column");
      }
      if (sub.rows.size() > 1) {
        return Status::InvalidArgument(
            "scalar subquery returned more than one row");
      }
      return sql::MakeLiteral(sub.rows.empty() ? Value::Null()
                                               : sub.rows[0][0]);
    }
    case sql::ExprKind::kExists: {
      LDV_ASSIGN_OR_RETURN(ResultSet sub, run_subquery(*expr.subquery));
      return sql::MakeLiteral(Value::Bool(!sub.rows.empty()));
    }
    case sql::ExprKind::kInList:
      if (expr.subquery != nullptr) {
        LDV_ASSIGN_OR_RETURN(ResultSet sub, run_subquery(*expr.subquery));
        if (sub.schema.num_columns() != 1) {
          return Status::InvalidArgument(
              "IN subquery must return one column");
        }
        auto out = std::make_unique<sql::Expr>();
        out->kind = sql::ExprKind::kInList;
        out->negated = expr.negated;
        LDV_ASSIGN_OR_RETURN(
            std::unique_ptr<sql::Expr> probe,
            FlattenExpr(*expr.children[0], provenance, options,
                        ambient_lineage, ambient));
        out->children.push_back(std::move(probe));
        for (const Tuple& row : sub.rows) {
          out->children.push_back(sql::MakeLiteral(row[0]));
        }
        return out;
      }
      break;
    default:
      break;
  }
  std::unique_ptr<sql::Expr> clone = expr.Clone();
  clone->children.clear();
  for (const auto& child : expr.children) {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<sql::Expr> flattened,
                         FlattenExpr(*child, provenance, options,
                                     ambient_lineage, ambient));
    clone->children.push_back(std::move(flattened));
  }
  return clone;
}

Result<std::unique_ptr<sql::SelectStmt>> Executor::FlattenSelect(
    const sql::SelectStmt& select, bool provenance,
    const ExecOptions& options, LineageSet* ambient_lineage,
    std::vector<ProvTupleRecord>* ambient) {
  std::unique_ptr<sql::SelectStmt> out = sql::CloneSelect(select);
  auto flatten_in_place =
      [&](std::unique_ptr<sql::Expr>* slot) -> Status {
    if (*slot == nullptr || !ExprHasSubquery(**slot)) return Status::Ok();
    LDV_ASSIGN_OR_RETURN(*slot, FlattenExpr(**slot, provenance, options,
                                            ambient_lineage, ambient));
    return Status::Ok();
  };
  for (auto& item : out->items) LDV_RETURN_IF_ERROR(flatten_in_place(&item.expr));
  for (auto& ref : out->from) {
    LDV_RETURN_IF_ERROR(flatten_in_place(&ref.join_condition));
  }
  LDV_RETURN_IF_ERROR(flatten_in_place(&out->where));
  for (auto& g : out->group_by) LDV_RETURN_IF_ERROR(flatten_in_place(&g));
  LDV_RETURN_IF_ERROR(flatten_in_place(&out->having));
  for (auto& o : out->order_by) LDV_RETURN_IF_ERROR(flatten_in_place(&o.expr));
  return out;
}

Result<ResultSet> Executor::ExecSelect(const sql::SelectStmt& select,
                                       bool provenance,
                                       const ExecOptions& options) {
  // Evaluate uncorrelated subqueries first (their provenance becomes
  // ambient lineage shared by every result row).
  const sql::SelectStmt* effective = &select;
  std::unique_ptr<sql::SelectStmt> flattened;
  LineageSet ambient_lineage;
  std::vector<ProvTupleRecord> ambient;
  if (SelectHasSubquery(select)) {
    LDV_ASSIGN_OR_RETURN(flattened,
                         FlattenSelect(select, provenance, options,
                                       &ambient_lineage, &ambient));
    effective = flattened.get();
  }

  LDV_ASSIGN_OR_RETURN(SelectPlan plan, PlanSelect(db_, *effective));
  ExecContext ctx;
  ctx.db = db_;
  ctx.track_lineage = provenance;
  ctx.profile = options.profile;
  ctx.query_id = options.query_id;
  ctx.process_id = options.process_id;
  ctx.governor = options.governor;
  ctx.snapshot_epoch = options.snapshot_epoch;
  const int dop =
      options.threads > 0 ? options.threads : ThreadPool::default_dop();
  if (dop > 1) {
    ctx.pool = ThreadPool::Shared();
    ctx.dop = dop;
  }
  const int64_t exec_start = options.profile ? NowNanos() : 0;
  LDV_ASSIGN_OR_RETURN(Batch batch, RunPlanRoot(plan.root.get(), &ctx, options));
  ResultSet result;
  result.schema = std::move(plan.output_schema);
  result.rows = std::move(batch.rows);
  result.affected = static_cast<int64_t>(result.rows.size());
  if (options.profile) {
    auto profile = std::make_shared<obs::QueryProfile>();
    profile->root = ProfileFromPlan(*plan.root);
    profile->total_nanos = NowNanos() - exec_start;
    profile->rows_returned = static_cast<int64_t>(result.rows.size());
    result.profile = std::move(profile);
  }
  if (provenance) {
    result.has_provenance = true;
    result.lineage = std::move(batch.lineage);
    if (!ambient_lineage.empty()) {
      for (LineageSet& set : result.lineage) {
        MergeLineage(&set, ambient_lineage);
      }
      for (const ProvTupleRecord& rec : ambient) {
        ctx.prov_tuples.emplace(rec.vid, rec.values);
      }
    }
    // Scans cache every tuple that passed their local filter, but the
    // statement's provenance is only what some result row's Lineage actually
    // references (e.g. rows eliminated by a join contribute nothing).
    std::unordered_set<TupleVid, storage::TupleVidHash> referenced;
    for (const LineageSet& set : result.lineage) {
      referenced.insert(set.begin(), set.end());
    }
    for (auto it = ctx.prov_tuples.begin(); it != ctx.prov_tuples.end();) {
      it = referenced.contains(it->first) ? std::next(it)
                                          : ctx.prov_tuples.erase(it);
    }
    result.prov_tuples = CollectProvTuples(ctx, *db_);
  }
  return result;
}

Result<ResultSet> Executor::ExecutePlanned(SelectPlan& plan,
                                           const Tuple& params,
                                           const ExecOptions& options) {
  ExecContext ctx;
  ctx.db = db_;
  ctx.params = &params;
  ctx.frozen_plan = true;
  ctx.query_id = options.query_id;
  ctx.process_id = options.process_id;
  ctx.governor = options.governor;
  ctx.snapshot_epoch = options.snapshot_epoch;
  const int dop =
      options.threads > 0 ? options.threads : ThreadPool::default_dop();
  if (dop > 1) {
    ctx.pool = ThreadPool::Shared();
    ctx.dop = dop;
  }
  LDV_ASSIGN_OR_RETURN(Batch batch, RunPlanRoot(plan.root.get(), &ctx, options));
  ResultSet result;
  result.schema = plan.output_schema;  // copy: the plan stays shared
  result.rows = std::move(batch.rows);
  result.affected = static_cast<int64_t>(result.rows.size());
  return result;
}

Result<ResultSet> Executor::ExecExplain(const Statement& stmt,
                                        const ExecOptions& options) {
  if (stmt.kind != StatementKind::kSelect) {
    return Status::NotSupported("EXPLAIN supports SELECT statements only");
  }

  ResultSet out;
  out.schema = storage::Schema(
      {storage::Column{"QUERY PLAN", storage::ValueType::kString}});

  obs::QueryProfile profile;
  const obs::QueryProfile* to_render = &profile;
  if (stmt.analyze) {
    ExecOptions profiled = options;
    profiled.profile = true;
    LDV_ASSIGN_OR_RETURN(ResultSet executed,
                         ExecSelect(*stmt.select, stmt.provenance, profiled));
    LDV_CHECK(executed.profile != nullptr);
    out.profile = std::move(executed.profile);
    to_render = out.profile.get();  // render in place; the tree can be large
  } else {
    // Plain EXPLAIN: plan but do not run the outer query. Uncorrelated
    // subqueries still execute, since planning needs their values.
    const sql::SelectStmt* effective = stmt.select.get();
    std::unique_ptr<sql::SelectStmt> flattened;
    LineageSet ambient_lineage;
    std::vector<ProvTupleRecord> ambient;
    if (SelectHasSubquery(*stmt.select)) {
      LDV_ASSIGN_OR_RETURN(flattened,
                           FlattenSelect(*stmt.select, /*provenance=*/false,
                                         options, &ambient_lineage, &ambient));
      effective = flattened.get();
    }
    LDV_ASSIGN_OR_RETURN(SelectPlan plan, PlanSelect(db_, *effective));
    profile.root = ProfileFromPlan(*plan.root);
  }

  for (std::string& line : to_render->ToTextLines(stmt.analyze)) {
    out.rows.push_back({Value::Str(std::move(line))});
  }
  out.affected = static_cast<int64_t>(out.rows.size());
  return out;
}

Result<ResultSet> Executor::ExecInsert(const sql::InsertStmt& insert,
                                       bool provenance,
                                       const ExecOptions& options) {
  Table* table = db_->FindTable(insert.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + insert.table);
  }
  const storage::Schema& schema = table->schema();

  // Map provided columns (or the full schema) to target positions.
  std::vector<int> target_cols;
  if (insert.columns.empty()) {
    for (int i = 0; i < schema.num_columns(); ++i) target_cols.push_back(i);
  } else {
    for (const std::string& name : insert.columns) {
      int idx = schema.IndexOf(name);
      if (idx < 0) {
        return Status::NotFound(insert.table + ": no column " + name);
      }
      target_cols.push_back(idx);
    }
  }

  std::vector<Tuple> new_rows;
  ResultSet result;

  if (insert.select != nullptr) {
    // INSERT ... SELECT. When provenance is on, the source query's lineage
    // becomes the hasRead-side provenance of the insert.
    LDV_ASSIGN_OR_RETURN(ResultSet src,
                         ExecSelect(*insert.select, provenance, options));
    if (src.schema.num_columns() != static_cast<int>(target_cols.size())) {
      return Status::InvalidArgument("INSERT SELECT arity mismatch");
    }
    new_rows = std::move(src.rows);
    if (provenance) {
      result.lineage = std::move(src.lineage);
      result.prov_tuples = std::move(src.prov_tuples);
    }
  } else {
    for (const auto& row_exprs : insert.rows) {
      if (row_exprs.size() != target_cols.size()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      Tuple row;
      row.reserve(row_exprs.size());
      for (const auto& e : row_exprs) {
        LDV_ASSIGN_OR_RETURN(Value v, EvalConstExpr(*e));
        row.push_back(std::move(v));
      }
      new_rows.push_back(std::move(row));
    }
  }

  const int64_t stmt_seq = db_->NextStatementSeq();
  for (size_t r = 0; r < new_rows.size(); ++r) {
    Tuple full(static_cast<size_t>(schema.num_columns()));
    for (size_t c = 0; c < target_cols.size(); ++c) {
      LDV_ASSIGN_OR_RETURN(
          full[static_cast<size_t>(target_cols[c])],
          CoerceValue(std::move(new_rows[r][c]),
                      schema.column(target_cols[c]).type));
    }
    LDV_ASSIGN_OR_RETURN(storage::RowId rowid,
                         table->Insert(std::move(full), stmt_seq));
    DmlRecord rec;
    rec.kind = DmlRecord::Kind::kInserted;
    rec.table = table->name();
    rec.vid = TupleVid{table->id(), rowid, stmt_seq};
    result.dml.push_back(std::move(rec));
  }
  result.affected = static_cast<int64_t>(new_rows.size());
  result.has_provenance = provenance;
  return result;
}

Result<ResultSet> Executor::ExecCreateTable(const sql::CreateTableStmt& create) {
  storage::Schema schema{create.columns};
  LDV_RETURN_IF_ERROR(
      db_->CreateTable(create.table, std::move(schema), create.if_not_exists)
          .status());
  return ResultSet{};
}

Result<ResultSet> Executor::ExecDropTable(const sql::DropTableStmt& drop) {
  Status s = db_->DropTable(drop.table);
  if (!s.ok() && drop.if_exists && s.code() == StatusCode::kNotFound) {
    return ResultSet{};
  }
  LDV_RETURN_IF_ERROR(s);
  return ResultSet{};
}

Result<ResultSet> Executor::ExecAlterTable(
    const sql::AlterTableAddColumnStmt& alter) {
  Table* table = db_->FindTable(alter.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + alter.table);
  }
  LDV_RETURN_IF_ERROR(table->AddColumn(alter.column, Value::Null()));
  db_->BumpSchemaVersion();
  return ResultSet{};
}

Result<ResultSet> Executor::ExecCreateIndex(
    const sql::CreateIndexStmt& create) {
  Table* table = db_->FindTable(create.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + create.table);
  }
  int column = table->schema().IndexOf(create.column);
  if (column < 0) {
    return Status::NotFound(create.table + ": no column " + create.column);
  }
  if (table->HasIndexOn(column) && !create.if_not_exists) {
    return Status::AlreadyExists("index already exists on " + create.table +
                                 "." + create.column);
  }
  LDV_RETURN_IF_ERROR(table->CreateIndex(column));
  db_->BumpSchemaVersion();
  return ResultSet{};
}

Result<ResultSet> Executor::ExecCopy(const sql::CopyStmt& copy) {
  Table* table = db_->FindTable(copy.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + copy.table);
  }
  if (!copy.from) {
    // COPY ... TO: dump the table as CSV.
    CsvWriter writer;
    for (const storage::RowVersion& row : table->rows()) {
      if (row.deleted) continue;
      std::vector<std::string> fields;
      fields.reserve(row.values.size());
      for (const Value& v : row.values) fields.push_back(v.ToText());
      writer.AppendRow(fields);
    }
    LDV_RETURN_IF_ERROR(WriteStringToFile(copy.path, writer.data()));
    ResultSet result;
    result.affected = table->live_row_count();
    return result;
  }
  LDV_ASSIGN_OR_RETURN(std::string text, ReadFileToString(copy.path));
  LDV_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  const storage::Schema& schema = table->schema();
  const int64_t stmt_seq = db_->NextStatementSeq();
  ResultSet result;
  for (const auto& fields : rows) {
    if (static_cast<int>(fields.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("COPY %s: row arity %zu != %d", copy.table.c_str(),
                    fields.size(), schema.num_columns()));
    }
    Tuple row;
    row.reserve(fields.size());
    for (int c = 0; c < schema.num_columns(); ++c) {
      LDV_ASSIGN_OR_RETURN(
          Value v, Value::FromText(schema.column(c).type,
                                   fields[static_cast<size_t>(c)]));
      row.push_back(std::move(v));
    }
    LDV_RETURN_IF_ERROR(table->Insert(std::move(row), stmt_seq).status());
    ++result.affected;
  }
  // A bulk load counts as a catalog bump: plan-cache entries built before
  // the COPY are treated as stale and rebuilt on their next use.
  db_->BumpSchemaVersion();
  return result;
}

}  // namespace ldv::exec
