#ifndef LDV_EXEC_WAL_REDO_H_
#define LDV_EXEC_WAL_REDO_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"
#include "storage/recovery.h"

namespace ldv::exec {

/// Builds the standard WalRedoFn: an Executor over `db` that re-executes
/// each logged statement. RecoverDatabase positions the statement sequence
/// before every call, so redo reproduces the original rowids and version
/// stamps. The returned function captures `db` and must not outlive it.
storage::WalRedoFn MakeWalRedo(storage::Database* db);

/// Snapshot-plus-WAL startup: LoadDatabase from `data_dir` (if a catalog
/// exists) then redo the committed WAL tail in `wal_dir`, using an Executor
/// for replay. This is what the server and tools call instead of a bare
/// LoadDatabase when a WAL directory is configured.
Status RecoverWithWal(storage::Database* db, const std::string& data_dir,
                      const std::string& wal_dir,
                      storage::RecoveryStats* stats);

}  // namespace ldv::exec

#endif  // LDV_EXEC_WAL_REDO_H_
