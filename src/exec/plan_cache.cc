#include "exec/plan_cache.h"

#include <cctype>
#include <utility>

#include "common/fault.h"
#include "sql/lexer.h"
#include "util/strings.h"

namespace ldv::exec {

namespace {

bool ExprHasSubquery(const sql::Expr& expr) {
  if (expr.subquery != nullptr) return true;
  for (const auto& child : expr.children) {
    if (child != nullptr && ExprHasSubquery(*child)) return true;
  }
  return false;
}

bool SelectHasSubquery(const sql::SelectStmt& select) {
  for (const auto& item : select.items) {
    if (item.expr != nullptr && ExprHasSubquery(*item.expr)) return true;
  }
  for (const sql::TableRef& ref : select.from) {
    if (ref.join_condition != nullptr && ExprHasSubquery(*ref.join_condition)) {
      return true;
    }
  }
  if (select.where != nullptr && ExprHasSubquery(*select.where)) return true;
  for (const auto& g : select.group_by) {
    if (g != nullptr && ExprHasSubquery(*g)) return true;
  }
  if (select.having != nullptr && ExprHasSubquery(*select.having)) return true;
  for (const auto& o : select.order_by) {
    if (o.expr != nullptr && ExprHasSubquery(*o.expr)) return true;
  }
  return false;
}

/// Lowercased identifier, quoted iff it would not re-lex as one token.
void AppendIdentifier(const std::string& text, std::string* out) {
  std::string lower = ToLower(text);
  bool plain = !lower.empty() &&
               (std::isalpha(static_cast<unsigned char>(lower[0])) != 0 ||
                lower[0] == '_');
  for (size_t i = 1; plain && i < lower.size(); ++i) {
    char c = lower[i];
    plain = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
            c == '$';
  }
  if (plain) {
    *out += lower;
    return;
  }
  *out += '"';
  for (char c : lower) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

std::string_view PunctuationText(sql::TokenType type) {
  using sql::TokenType;
  switch (type) {
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kSemicolon: return ";";
    case TokenType::kStar: return "*";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kConcat: return "||";
    default: return "";
  }
}

/// Signature string of a parameter-type vector: one char per slot.
std::string TypeSignature(const std::vector<storage::ValueType>& types) {
  std::string sig;
  sig.reserve(types.size());
  for (storage::ValueType t : types) {
    switch (t) {
      case storage::ValueType::kNull: sig += 'n'; break;
      case storage::ValueType::kInt64: sig += 'i'; break;
      case storage::ValueType::kDouble: sig += 'd'; break;
      case storage::ValueType::kString: sig += 's'; break;
    }
  }
  return sig;
}

std::string ComposeKey(int64_t instance_id, const std::string& key) {
  return std::to_string(instance_id) + '#' + key;
}

}  // namespace

bool PlanCacheEligible(const sql::Statement& stmt) {
  if (stmt.kind != sql::StatementKind::kSelect || stmt.select == nullptr) {
    return false;
  }
  if (stmt.provenance || stmt.explain) return false;
  if (SelectHasSubquery(*stmt.select)) return false;
  for (const auto& o : stmt.select->order_by) {
    if (o.expr != nullptr && o.expr->kind == sql::ExprKind::kParameter) {
      return false;
    }
  }
  return true;
}

std::string NormalizeStatementText(std::string_view sql) {
  Result<std::vector<sql::Token>> tokens = sql::Lex(sql);
  if (!tokens.ok()) return std::string(sql);
  std::string out;
  out.reserve(sql.size());
  int next_positional = 0;
  for (const sql::Token& t : *tokens) {
    if (t.type == sql::TokenType::kEnd) break;
    if (!out.empty()) out += ' ';
    switch (t.type) {
      case sql::TokenType::kIdentifier:
        AppendIdentifier(t.text, &out);
        break;
      case sql::TokenType::kIntLiteral:
        out += std::to_string(t.int_value);
        break;
      case sql::TokenType::kDoubleLiteral:
        out += t.text;
        break;
      case sql::TokenType::kStringLiteral: {
        out += '\'';
        for (char c : t.text) {
          if (c == '\'') out += '\'';
          out += c;
        }
        out += '\'';
        break;
      }
      case sql::TokenType::kQuestion:
        out += '$';
        out += std::to_string(++next_positional);
        break;
      case sql::TokenType::kParam:
        out += t.text;
        break;
      default:
        out += PunctuationText(t.type);
        break;
    }
  }
  return out;
}

PlanCache::PlanCache()
    : hits_(obs::MetricsRegistry::Global().counter("plan_cache.hit")),
      misses_(obs::MetricsRegistry::Global().counter("plan_cache.miss")),
      evictions_(obs::MetricsRegistry::Global().counter("plan_cache.evict")),
      stale_(obs::MetricsRegistry::Global().counter("plan_cache.stale")) {}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

void PlanCache::set_capacity(size_t entries) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = entries;
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.front());
    lru_.pop_front();
    evictions_->Add(1);
  }
}

size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

size_t PlanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

PlanCache::Entry* PlanCache::InsertEntryLocked(const std::string& full_key) {
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    entries_.erase(lru_.front());
    lru_.pop_front();
    evictions_->Add(1);
  }
  lru_.push_back(full_key);
  Entry& entry = entries_[full_key];
  entry.lru_it = std::prev(lru_.end());
  return &entry;
}

void PlanCache::TouchLocked(Entry* entry) {
  lru_.splice(lru_.end(), lru_, entry->lru_it);
}

std::shared_ptr<const sql::Statement> PlanCache::Intern(
    const storage::Database& db, const std::string& key,
    sql::Statement body) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    return std::make_shared<const sql::Statement>(std::move(body));
  }
  const std::string full_key = ComposeKey(db.instance_id(), key);
  auto it = entries_.find(full_key);
  if (it != entries_.end()) {
    TouchLocked(&it->second);
    if (it->second.ast != nullptr) return it->second.ast;
    it->second.ast = std::make_shared<const sql::Statement>(std::move(body));
    return it->second.ast;
  }
  Entry* entry = InsertEntryLocked(full_key);
  entry->ast = std::make_shared<const sql::Statement>(std::move(body));
  entry->schema_version = db.schema_version();
  return entry->ast;
}

Result<std::shared_ptr<const CachedPlan>> PlanCache::BuildPlan(
    storage::Database* db, const sql::Statement& stmt,
    const std::vector<storage::ValueType>& types) {
  auto annotated =
      std::make_shared<sql::Statement>(sql::CloneStatement(stmt));
  sql::AnnotateParameterTypes(annotated.get(), types);
  LDV_ASSIGN_OR_RETURN(SelectPlan plan,
                       PlanSelect(db, *annotated->select));
  auto cached = std::make_shared<CachedPlan>();
  cached->stmt = std::move(annotated);
  cached->plan = std::make_shared<SelectPlan>(std::move(plan));
  return std::shared_ptr<const CachedPlan>(std::move(cached));
}

Result<std::shared_ptr<const CachedPlan>> PlanCache::GetPlan(
    storage::Database* db, const std::string& key, const sql::Statement& stmt,
    const std::vector<storage::ValueType>& types) {
  const std::string sig = TypeSignature(types);
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t version = db->schema_version();
  if (capacity_ == 0) {
    misses_->Add(1);
    return BuildPlan(db, stmt, types);
  }
  const std::string full_key = ComposeKey(db->instance_id(), key);
  auto it = entries_.find(full_key);
  Entry* entry;
  if (it == entries_.end()) {
    entry = InsertEntryLocked(full_key);
    entry->schema_version = version;
    misses_->Add(1);
  } else {
    entry = &it->second;
    TouchLocked(entry);
    // A schema-version mismatch means DDL or COPY ran since the plans were
    // built: live Table pointers inside them may dangle and index choices
    // may be wrong, so every plan of the entry is dropped and rebuilt. The
    // fault point forces this path for tests.
    bool stale = entry->schema_version != version;
    if (!CheckFault("plancache.stale").ok()) stale = true;
    if (stale) {
      entry->plans.clear();
      entry->schema_version = version;
      stale_->Add(1);
    }
    auto pit = entry->plans.find(sig);
    if (pit != entry->plans.end()) {
      hits_->Add(1);
      return pit->second;
    }
    misses_->Add(1);
  }
  LDV_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> plan,
                       BuildPlan(db, stmt, types));
  entry->plans[sig] = plan;
  return plan;
}

}  // namespace ldv::exec
