#ifndef LDV_EXEC_EXEC_INTERNAL_H_
#define LDV_EXEC_EXEC_INTERNAL_H_

#include <functional>
#include <vector>

#include "exec/operators.h"

/// Internals shared between the row-at-a-time operators (operators.cc) and
/// the vectorized kernels (vector_ops.cc). Not part of the exec API.

namespace ldv::exec::internal {

size_t NumMorsels(size_t n);

/// Runs `fn(begin, end, morsel)` over fixed kMorselRows chunks of [0, n) —
/// on the pool when the context allows it and there is more than one
/// morsel, inline (in morsel order) otherwise. The decomposition is
/// identical either way, so per-morsel results never depend on the degree
/// of parallelism. Records fan-out stats into `stats` when non-null.
Status RunMorsels(ExecContext* ctx, OpStats* stats, size_t n,
                  const std::function<Status(size_t, size_t, size_t)>& fn);

/// Appends `src` to `dst`, moving rows (and lineage when tracked).
void AppendBatch(Batch* dst, Batch&& src);

/// Approximate retained bytes of rows[begin, end) (memory-budget charges).
size_t ApproxRowsBytes(const std::vector<storage::Tuple>& rows, size_t begin,
                       size_t end);

/// Concatenates per-morsel batches in morsel order — the parallel
/// operators' emission order is therefore exactly the serial one.
Batch ConcatBatches(std::vector<Batch>&& parts);

/// Running state for one aggregate within one group.
struct AggState {
  int64_t count = 0;
  bool any = false;
  int64_t sum_int = 0;
  double sum_double = 0;
  bool sum_is_double = false;
  storage::Value extreme;  // min/max
};

struct GroupState {
  storage::Tuple keys;
  std::vector<AggState> aggs;
  LineageSet lineage;
};

/// Hash table of groups in first-appearance order — built per morsel in
/// phase 1, merged (in morsel order) into the global table in phase 2.
struct GroupTable {
  std::vector<GroupState> groups;
  std::vector<uint64_t> hashes;  // parallel to groups
  std::unordered_multimap<uint64_t, size_t> index;

  /// Index of the group with `keys`, creating it if needed.
  size_t FindOrCreate(uint64_t hash, storage::Tuple&& keys, size_t num_aggs);
};

Status Accumulate(AggState* state, AggregateSpec::Fn fn,
                  const storage::Value& v);

/// Folds a morsel-local partial into the global state. Partials are merged
/// in morsel order, so the (floating-point sensitive) accumulation order is
/// a pure function of the input — never of the thread count.
Status MergeAggState(AggState* into, const AggState& from,
                     AggregateSpec::Fn fn);

storage::Value FinalizeAgg(const AggState& state, const AggregateSpec& spec);

/// Phase 2 of aggregation, shared by the row and columnar paths: merges the
/// per-morsel partial group tables in morsel order (first-appearance group
/// order, deterministic float accumulation), materializes the one-row
/// global-aggregate-over-empty-input case, finalizes each group into an
/// output row and dedups its lineage.
Result<Batch> MergeAndFinalizeGroups(std::vector<GroupTable>&& partials,
                                     const std::vector<AggregateSpec>& aggs,
                                     bool group_by, bool lineage);

}  // namespace ldv::exec::internal

#endif  // LDV_EXEC_EXEC_INTERNAL_H_
