#include "exec/planner.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace ldv::exec {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;
using storage::ValueType;

namespace {

/// Produces exactly one empty row — the input of a FROM-less SELECT.
class SingleRowNode final : public PlanNode {
 public:
  SingleRowNode() = default;
  std::string label() const override { return "SingleRow"; }

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override {
    Batch out;
    out.rows.emplace_back();
    if (ctx->track_lineage) out.lineage.emplace_back();
    return out;
  }
};

void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(expr->children[0].get(), out);
    SplitConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

/// True if every column reference in `expr` resolves in `scope`.
bool FullyResolvable(const Expr& expr, const Scope& scope) {
  std::vector<std::pair<std::string, std::string>> refs;
  CollectColumnRefs(expr, &refs);
  for (const auto& [qualifier, name] : refs) {
    if (!scope.CanResolve(qualifier, name)) return false;
  }
  return true;
}

/// Binds the conjunction of `conjuncts` against `scope` (nullptr if empty).
Result<std::unique_ptr<BoundExpr>> BindConjunction(
    const std::vector<const Expr*>& conjuncts, const Scope& scope) {
  std::unique_ptr<BoundExpr> combined;
  for (const Expr* c : conjuncts) {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                         BindExpr(*c, scope));
    if (combined == nullptr) {
      combined = std::move(bound);
    } else {
      auto and_node = std::make_unique<BoundExpr>();
      and_node->kind = ExprKind::kBinary;
      and_node->binary_op = BinaryOp::kAnd;
      and_node->result_type = ValueType::kInt64;
      and_node->children.push_back(std::move(combined));
      and_node->children.push_back(std::move(bound));
      combined = std::move(and_node);
    }
  }
  return combined;
}

std::string NormalizedExprKey(const Expr& expr) {
  return ToLower(expr.ToString());
}

/// Recursively replaces aggregate calls and group-by expressions inside a
/// cloned tree with references to the synthetic post-aggregation columns.
struct AggRewriter {
  const std::vector<std::string>* group_keys;  // normalized ToString
  std::vector<const Expr*>* agg_calls;         // dedup'd aggregate calls
  std::vector<std::string>* agg_keys;          // normalized ToString

  std::unique_ptr<Expr> Rewrite(const Expr& expr) {
    std::string key = NormalizedExprKey(expr);
    for (size_t i = 0; i < group_keys->size(); ++i) {
      if ((*group_keys)[i] == key) {
        return sql::MakeColumnRef("", "#grp" + std::to_string(i));
      }
    }
    if (expr.kind == ExprKind::kFuncCall &&
        sql::IsAggregateFunction(expr.name)) {
      for (size_t i = 0; i < agg_keys->size(); ++i) {
        if ((*agg_keys)[i] == key) {
          return sql::MakeColumnRef("", "#agg" + std::to_string(i));
        }
      }
      agg_calls->push_back(&expr);
      agg_keys->push_back(key);
      return sql::MakeColumnRef("",
                                "#agg" + std::to_string(agg_keys->size() - 1));
    }
    std::unique_ptr<Expr> clone = expr.Clone();
    clone->children.clear();
    for (const auto& child : expr.children) {
      clone->children.push_back(Rewrite(*child));
    }
    return clone;
  }
};

Result<AggregateSpec::Fn> AggFnFromName(const std::string& name,
                                        bool star_arg) {
  if (EqualsIgnoreCase(name, "count")) {
    return star_arg ? AggregateSpec::Fn::kCountStar : AggregateSpec::Fn::kCount;
  }
  if (star_arg) {
    return Status::InvalidArgument(name + "(*) is not valid");
  }
  if (EqualsIgnoreCase(name, "sum")) return AggregateSpec::Fn::kSum;
  if (EqualsIgnoreCase(name, "avg")) return AggregateSpec::Fn::kAvg;
  if (EqualsIgnoreCase(name, "min")) return AggregateSpec::Fn::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggregateSpec::Fn::kMax;
  return Status::NotSupported("unknown aggregate: " + name);
}

std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return item.expr->ToString();
}

}  // namespace

Result<SelectPlan> PlanSelect(storage::Database* db,
                              const SelectStmt& select) {
  // ---- Gather all column references (prov pseudo-column detection). ----
  std::vector<std::pair<std::string, std::string>> all_refs;
  for (const auto& item : select.items) CollectColumnRefs(*item.expr, &all_refs);
  if (select.where != nullptr) CollectColumnRefs(*select.where, &all_refs);
  for (const auto& g : select.group_by) CollectColumnRefs(*g, &all_refs);
  if (select.having != nullptr) CollectColumnRefs(*select.having, &all_refs);
  for (const auto& o : select.order_by) CollectColumnRefs(*o.expr, &all_refs);

  auto wants_prov_columns = [&](const std::string& alias) {
    for (const auto& [qualifier, name] : all_refs) {
      if (!storage::IsProvPseudoColumn(name)) continue;
      if (qualifier.empty() || EqualsIgnoreCase(qualifier, alias)) return true;
    }
    return false;
  };

  // ---- WHERE conjuncts. ----
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(select.where.get(), &conjuncts);
  std::vector<bool> used(conjuncts.size(), false);

  // Extracts equi-join key pairs between `current` and `scan` from a
  // conjunct list, marking consumed entries.
  auto extract_keys = [](const Scope& left_scope, const Scope& right_scope,
                         const std::vector<const Expr*>& pool,
                         std::vector<bool>* pool_used) {
    std::vector<std::pair<int, int>> key_pairs;
    for (size_t c = 0; c < pool.size(); ++c) {
      if ((*pool_used)[c]) continue;
      const Expr* e = pool[c];
      if (e->kind != ExprKind::kBinary || e->binary_op != BinaryOp::kEq) {
        continue;
      }
      const Expr* lhs = e->children[0].get();
      const Expr* rhs = e->children[1].get();
      if (lhs->kind != ExprKind::kColumnRef ||
          rhs->kind != ExprKind::kColumnRef) {
        continue;
      }
      Result<int> ll = left_scope.Resolve(lhs->table, lhs->column);
      Result<int> rr = right_scope.Resolve(rhs->table, rhs->column);
      if (ll.ok() && rr.ok()) {
        key_pairs.emplace_back(*ll, *rr);
        (*pool_used)[c] = true;
        continue;
      }
      Result<int> rl = left_scope.Resolve(rhs->table, rhs->column);
      Result<int> lr = right_scope.Resolve(lhs->table, lhs->column);
      if (rl.ok() && lr.ok()) {
        key_pairs.emplace_back(*rl, *lr);
        (*pool_used)[c] = true;
      }
    }
    return key_pairs;
  };

  // Enables the hash-index access path when a pushed-down conjunct is an
  // equality between an indexed column and a literal.
  auto try_index_probe = [](ScanNode* scan, storage::Table* table,
                            const std::vector<const Expr*>& pushdown) {
    for (const Expr* e : pushdown) {
      if (e->kind != ExprKind::kBinary || e->binary_op != BinaryOp::kEq) {
        continue;
      }
      for (int side = 0; side < 2; ++side) {
        const Expr* col = e->children[static_cast<size_t>(side)].get();
        const Expr* lit = e->children[static_cast<size_t>(1 - side)].get();
        if (col->kind != ExprKind::kColumnRef ||
            lit->kind != ExprKind::kLiteral) {
          continue;
        }
        int idx = table->schema().IndexOf(col->column);
        if (idx < 0 || !table->HasIndexOn(idx)) continue;
        Result<storage::Value> coerced =
            CoerceValue(lit->literal, table->schema().column(idx).type);
        if (!coerced.ok()) continue;
        scan->set_index_probe(idx, std::move(coerced).value());
        return;
      }
    }
  };

  // ---- Scans with predicate pushdown, then left-deep joins. ----
  std::unique_ptr<PlanNode> current;
  // Non-null while the plan is a single scan whose output rows map 1:1 to
  // the query's result rows (possibly projected); a LIMIT without ORDER BY
  // can then stop the scan early (ScanNode::set_limit_hint). Any operator
  // that drops, merges, or reorders rows above the scan invalidates it.
  ScanNode* sole_scan = nullptr;
  if (select.from.empty()) {
    current = std::make_unique<SingleRowNode>();
  }
  for (size_t t = 0; t < select.from.size(); ++t) {
    const sql::TableRef& ref = select.from[t];
    storage::Table* table = db->FindTable(ref.table);
    if (table == nullptr) {
      return Status::NotFound("no such table: " + ref.table);
    }
    const std::string& alias = ref.EffectiveName();
    const bool is_left_join = ref.join_type == sql::JoinType::kLeft;
    auto scan = std::make_unique<ScanNode>(table, alias,
                                           wants_prov_columns(alias));

    // The ref's own ON condition (explicit JOIN syntax).
    std::vector<const Expr*> on_conjuncts;
    SplitConjuncts(ref.join_condition.get(), &on_conjuncts);
    std::vector<bool> on_used(on_conjuncts.size(), false);

    // Push down single-table conjuncts. WHERE conjuncts must not be pushed
    // below a LEFT JOIN's right side (they apply after null-padding); the
    // join's own ON conjuncts may.
    std::vector<const Expr*> pushdown;
    for (size_t c = 0; c < on_conjuncts.size(); ++c) {
      if (!on_used[c] && FullyResolvable(*on_conjuncts[c], scan->scope())) {
        pushdown.push_back(on_conjuncts[c]);
        on_used[c] = true;
      }
    }
    if (!is_left_join) {
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (!used[c] && FullyResolvable(*conjuncts[c], scan->scope())) {
          pushdown.push_back(conjuncts[c]);
          used[c] = true;
        }
      }
    }
    if (!pushdown.empty()) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> filter,
                           BindConjunction(pushdown, scan->scope()));
      scan->set_filter(std::move(filter));
      try_index_probe(scan.get(), table, pushdown);
    }
    if (current == nullptr) {
      if (ref.join_condition != nullptr) {
        return Status::InvalidArgument(
            "the first FROM entry cannot carry an ON condition");
      }
      sole_scan = scan.get();
      current = std::move(scan);
      continue;
    }
    sole_scan = nullptr;  // a join multiplies/drops rows

    // Equi-join keys: from the ON condition, plus (inner joins only) from
    // WHERE conjuncts.
    std::vector<std::pair<int, int>> key_pairs =
        extract_keys(current->scope(), scan->scope(), on_conjuncts, &on_used);
    if (!is_left_join) {
      std::vector<std::pair<int, int>> where_keys =
          extract_keys(current->scope(), scan->scope(), conjuncts, &used);
      key_pairs.insert(key_pairs.end(), where_keys.begin(), where_keys.end());
    }
    auto join = std::make_unique<JoinNode>(std::move(current), std::move(scan),
                                           std::move(key_pairs), is_left_join);

    // Residuals: remaining ON conjuncts always belong to the join (they
    // decide matching, hence null-padding); WHERE conjuncts may be attached
    // here only for inner joins.
    std::vector<const Expr*> residual;
    for (size_t c = 0; c < on_conjuncts.size(); ++c) {
      if (on_used[c]) continue;
      if (!FullyResolvable(*on_conjuncts[c], join->scope())) {
        return Status::InvalidArgument("ON condition references columns "
                                       "outside the joined tables: " +
                                       on_conjuncts[c]->ToString());
      }
      residual.push_back(on_conjuncts[c]);
      on_used[c] = true;
    }
    if (!is_left_join) {
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (!used[c] && FullyResolvable(*conjuncts[c], join->scope())) {
          residual.push_back(conjuncts[c]);
          used[c] = true;
        }
      }
    }
    if (!residual.empty()) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                           BindConjunction(residual, join->scope()));
      join->set_residual(std::move(bound));
    }
    current = std::move(join);
  }

  // Leftover WHERE conjuncts (including everything held back by outer
  // joins) apply against the full join output.
  {
    std::vector<const Expr*> leftover;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (!used[c]) leftover.push_back(conjuncts[c]);
    }
    if (!leftover.empty()) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                           BindConjunction(leftover, current->scope()));
      current = std::make_unique<FilterNode>(std::move(current),
                                             std::move(bound));
      sole_scan = nullptr;  // rows dropped above the scan
    }
  }

  // ---- Expand '*' select items. ----
  std::vector<const Expr*> item_exprs;            // original or expanded
  std::vector<std::string> item_names;
  std::vector<std::unique_ptr<Expr>> owned_exprs;  // keeps expansions alive
  for (const auto& item : select.items) {
    if (item.expr->kind == ExprKind::kStar) {
      const std::string& qualifier = item.expr->table;
      bool any = false;
      for (const ScopeColumn& c : current->scope().columns()) {
        if (c.hidden) continue;
        if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
          continue;
        }
        owned_exprs.push_back(sql::MakeColumnRef(c.qualifier, c.name));
        item_exprs.push_back(owned_exprs.back().get());
        item_names.push_back(c.name);
        any = true;
      }
      if (!any) {
        return Status::InvalidArgument("'*' expanded to zero columns");
      }
      continue;
    }
    item_exprs.push_back(item.expr.get());
    item_names.push_back(OutputName(item));
  }

  // ---- Aggregation. ----
  bool has_aggregate = !select.group_by.empty();
  for (const Expr* e : item_exprs) {
    has_aggregate = has_aggregate || sql::ContainsAggregate(*e);
  }
  if (select.having != nullptr &&
      sql::ContainsAggregate(*select.having)) {
    has_aggregate = true;
  }

  std::vector<std::unique_ptr<Expr>> rewritten_items;
  std::unique_ptr<Expr> rewritten_having;

  if (has_aggregate) {
    std::vector<std::string> group_keys;
    std::vector<std::unique_ptr<BoundExpr>> group_bound;
    for (const auto& g : select.group_by) {
      group_keys.push_back(NormalizedExprKey(*g));
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                           BindExpr(*g, current->scope()));
      group_bound.push_back(std::move(bound));
    }
    std::vector<const Expr*> agg_calls;
    std::vector<std::string> agg_keys;
    AggRewriter rewriter{&group_keys, &agg_calls, &agg_keys};
    for (const Expr* e : item_exprs) {
      rewritten_items.push_back(rewriter.Rewrite(*e));
    }
    if (select.having != nullptr) {
      rewritten_having = rewriter.Rewrite(*select.having);
    }
    std::vector<AggregateSpec> specs;
    for (size_t i = 0; i < agg_calls.size(); ++i) {
      const Expr* call = agg_calls[i];
      AggregateSpec spec;
      bool star_arg =
          call->children.empty() ||
          (call->children.size() == 1 &&
           call->children[0]->kind == ExprKind::kStar);
      LDV_ASSIGN_OR_RETURN(spec.fn, AggFnFromName(call->name, star_arg));
      if (!star_arg) {
        if (call->children.size() != 1) {
          return Status::InvalidArgument(call->name +
                                         " takes exactly one argument");
        }
        LDV_ASSIGN_OR_RETURN(spec.arg,
                             BindExpr(*call->children[0], current->scope()));
      }
      spec.output_name = "#agg" + std::to_string(i);
      switch (spec.fn) {
        case AggregateSpec::Fn::kCountStar:
        case AggregateSpec::Fn::kCount:
          spec.output_type = ValueType::kInt64;
          break;
        case AggregateSpec::Fn::kAvg:
          spec.output_type = ValueType::kDouble;
          break;
        default:
          spec.output_type = spec.arg->result_type;
      }
      specs.push_back(std::move(spec));
    }
    current = std::make_unique<AggregateNode>(
        std::move(current), std::move(group_bound), std::move(specs));
    sole_scan = nullptr;  // aggregation merges rows
    if (rewritten_having != nullptr) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                           BindExpr(*rewritten_having, current->scope()));
      current = std::make_unique<FilterNode>(std::move(current),
                                             std::move(bound));
    }
  } else if (select.having != nullptr) {
    return Status::InvalidArgument("HAVING without aggregation");
  }

  // ---- Projection. ----
  {
    std::vector<std::unique_ptr<BoundExpr>> bound_items;
    for (size_t i = 0; i < item_exprs.size(); ++i) {
      const Expr& e = has_aggregate ? *rewritten_items[i] : *item_exprs[i];
      Result<std::unique_ptr<BoundExpr>> bound = BindExpr(e, current->scope());
      if (!bound.ok()) {
        if (has_aggregate && bound.status().code() == StatusCode::kNotFound) {
          return Status::InvalidArgument(
              item_exprs[i]->ToString() +
              " must appear in GROUP BY or be used in an aggregate");
        }
        return bound.status();
      }
      bound_items.push_back(std::move(bound).value());
    }
    current = std::make_unique<ProjectNode>(
        std::move(current), std::move(bound_items), item_names);
  }

  if (select.distinct) {
    current = std::make_unique<DistinctNode>(std::move(current));
    sole_scan = nullptr;  // dedup merges rows
  }

  // ---- ORDER BY / LIMIT over the projected output. ----
  if (!select.order_by.empty() || select.limit.has_value()) {
    std::vector<SortLimitNode::SortKey> keys;
    for (const auto& o : select.order_by) {
      SortLimitNode::SortKey key;
      key.ascending = o.ascending;
      if (o.expr->kind == ExprKind::kLiteral &&
          o.expr->literal.type() == ValueType::kInt64) {
        // ORDER BY <ordinal>.
        int64_t ordinal = o.expr->literal.AsInt();
        if (ordinal < 1 || ordinal > current->scope().num_columns()) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        auto colref = std::make_unique<BoundExpr>();
        colref->kind = ExprKind::kColumnRef;
        colref->column_index = static_cast<int>(ordinal - 1);
        colref->result_type =
            current->scope().column(static_cast<int>(ordinal - 1)).type;
        key.expr = std::move(colref);
      } else {
        Result<std::unique_ptr<BoundExpr>> bound =
            BindExpr(*o.expr, current->scope());
        if (!bound.ok() && o.expr->kind == ExprKind::kColumnRef &&
            !o.expr->table.empty()) {
          // Projection output drops table qualifiers; ORDER BY t.col falls
          // back to matching the bare column name.
          std::unique_ptr<Expr> unqualified =
              sql::MakeColumnRef("", o.expr->column);
          bound = BindExpr(*unqualified, current->scope());
        }
        if (!bound.ok()) return bound.status();
        key.expr = std::move(bound).value();
      }
      keys.push_back(std::move(key));
    }
    // LIMIT pushdown: with no ORDER BY the SortLimit is a pure truncation
    // of rows the sole scan produced 1:1, so the scan may stop early at a
    // morsel boundary instead of materializing the whole table.
    if (keys.empty() && sole_scan != nullptr && select.limit.has_value() &&
        *select.limit >= 0) {
      sole_scan->set_limit_hint(*select.limit);
    }
    current = std::make_unique<SortLimitNode>(std::move(current),
                                              std::move(keys), select.limit);
  }

  SelectPlan plan;
  // Result columns may repeat names (e.g. SELECT x, x); Schema::AddColumn
  // rejects duplicates, so build the column list directly.
  std::vector<storage::Column> out_columns;
  for (const ScopeColumn& c : current->scope().columns()) {
    out_columns.push_back({c.name, c.type});
  }
  plan.output_schema = storage::Schema(std::move(out_columns));
  plan.root = std::move(current);
  return plan;
}

}  // namespace ldv::exec
