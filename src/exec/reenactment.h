#ifndef LDV_EXEC_REENACTMENT_H_
#define LDV_EXEC_REENACTMENT_H_

#include "common/result.h"
#include "exec/executor.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace ldv::exec {

/// Executes UPDATE/DELETE with reenactment-style provenance (paper §VII-B,
/// following GProM): the set of affected tuple versions — the statement's
/// provenance — is computed against the *pre-state* of the table, before the
/// mutation is applied, because afterwards the prior versions would only be
/// available from the archive.
///
/// With `provenance`:
///   - each affected row contributes a DmlRecord linking the created version
///     to the prior version (updates) or recording the removed version
///     (deletes), and
///   - the prior versions' values are returned in `prov_tuples` so they can
///     be persisted into a package.
/// `where` is the (possibly subquery-flattened) predicate to use; pass
/// `update.where.get()` when no flattening was needed. May be null (all
/// rows). When the predicate contains an equality between an indexed column
/// and a literal, matching probes the hash index instead of scanning.
Result<ResultSet> ExecUpdate(storage::Database* db,
                             const sql::UpdateStmt& update,
                             const sql::Expr* where, bool provenance,
                             const ExecOptions& options);

Result<ResultSet> ExecDelete(storage::Database* db, const sql::DeleteStmt& del,
                             const sql::Expr* where, bool provenance,
                             const ExecOptions& options);

/// Convenience overloads using the statement's own WHERE clause.
inline Result<ResultSet> ExecUpdate(storage::Database* db,
                                    const sql::UpdateStmt& update,
                                    bool provenance,
                                    const ExecOptions& options) {
  return ExecUpdate(db, update, update.where.get(), provenance, options);
}

inline Result<ResultSet> ExecDelete(storage::Database* db,
                                    const sql::DeleteStmt& del,
                                    bool provenance,
                                    const ExecOptions& options) {
  return ExecDelete(db, del, del.where.get(), provenance, options);
}

}  // namespace ldv::exec

#endif  // LDV_EXEC_REENACTMENT_H_
