#include "exec/column_batch.h"

#include <utility>

#include "common/logging.h"

namespace ldv::exec {

using storage::Value;
using storage::ValueType;

void ColumnVector::Reserve(size_t n) {
  switch (type) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      i64.reserve(n);
      break;
    case ValueType::kDouble:
      f64.reserve(n);
      break;
    case ValueType::kString:
      str.reserve(n);
      break;
  }
}

void ColumnVector::ResizeZero(size_t n) {
  length = n;
  nulls.assign(n, 0);
  switch (type) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      i64.assign(n, 0);
      break;
    case ValueType::kDouble:
      f64.assign(n, 0);
      break;
    case ValueType::kString:
      str.assign(n, std::string_view());
      break;
  }
}

void ColumnVector::AppendNull() {
  if (type == ValueType::kNull) {
    ++length;
    return;
  }
  if (nulls.empty()) nulls.assign(length, 0);
  nulls.push_back(1);
  switch (type) {
    case ValueType::kInt64:
      i64.push_back(0);
      break;
    case ValueType::kDouble:
      f64.push_back(0);
      break;
    case ValueType::kString:
      str.push_back(std::string_view());
      break;
    case ValueType::kNull:
      break;
  }
  ++length;
}

void ColumnVector::AppendInt(int64_t v) {
  LDV_CHECK(type == ValueType::kInt64);
  if (!nulls.empty()) nulls.push_back(0);
  i64.push_back(v);
  ++length;
}

void ColumnVector::AppendDouble(double v) {
  LDV_CHECK(type == ValueType::kDouble);
  if (!nulls.empty()) nulls.push_back(0);
  f64.push_back(v);
  ++length;
}

void ColumnVector::AppendStr(std::string_view v) {
  LDV_CHECK(type == ValueType::kString);
  if (!nulls.empty()) nulls.push_back(0);
  str.push_back(v);
  ++length;
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type) {
    case ValueType::kInt64:
      AppendInt(src.i64[i]);
      break;
    case ValueType::kDouble:
      AppendDouble(src.f64[i]);
      break;
    case ValueType::kString:
      AppendStr(src.str[i]);
      break;
    case ValueType::kNull:
      AppendNull();
      break;
  }
}

void ColumnVector::AppendColumn(const ColumnVector& src) {
  if (src.length == 0) return;
  if (type == ValueType::kNull) {
    // Every cell is NULL by type; no payload or null map to maintain.
    length += src.length;
    return;
  }
  const size_t new_length = length + src.length;
  if (src.type == ValueType::kNull) {
    // All-NULL stretch of a typed column: zero payload, null bytes set.
    if (nulls.empty()) nulls.assign(length, 0);
    nulls.resize(new_length, 1);
    switch (type) {
      case ValueType::kInt64:
        i64.resize(new_length, 0);
        break;
      case ValueType::kDouble:
        f64.resize(new_length, 0);
        break;
      case ValueType::kString:
        str.resize(new_length);
        break;
      case ValueType::kNull:
        break;
    }
    length = new_length;
    return;
  }
  LDV_CHECK(src.type == type);
  if (!src.nulls.empty()) {
    if (nulls.empty()) nulls.assign(length, 0);
    nulls.insert(nulls.end(), src.nulls.begin(), src.nulls.end());
  } else if (!nulls.empty()) {
    nulls.resize(new_length, 0);
  }
  switch (type) {
    case ValueType::kInt64:
      i64.insert(i64.end(), src.i64.begin(), src.i64.end());
      break;
    case ValueType::kDouble:
      f64.insert(f64.end(), src.f64.begin(), src.f64.end());
      break;
    case ValueType::kString:
      str.insert(str.end(), src.str.begin(), src.str.end());
      break;
    case ValueType::kNull:
      break;
  }
  length = new_length;
}

void ColumnVector::SetFrom(size_t dst, const ColumnVector& src, size_t i) {
  if (type == ValueType::kNull) return;  // stays NULL
  if (src.IsNull(i)) {
    nulls[dst] = 1;
    return;
  }
  switch (type) {
    case ValueType::kInt64:
      i64[dst] = src.i64[i];
      break;
    case ValueType::kDouble:
      f64[dst] = src.f64[i];
      break;
    case ValueType::kString:
      str[dst] = src.str[i];
      break;
    case ValueType::kNull:
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type) {
    case ValueType::kInt64:
      return Value::Int(i64[i]);
    case ValueType::kDouble:
      return Value::Real(f64[i]);
    case ValueType::kString:
      return Value::Str(std::string(str[i]));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

bool CellsEqual(const ColumnVector& a, size_t i, const ColumnVector& b,
                size_t j) {
  const bool an = a.IsNull(i);
  const bool bn = b.IsNull(j);
  if (an || bn) return an && bn;
  if (a.type != b.type) return false;
  switch (a.type) {
    case ValueType::kInt64:
      return a.i64[i] == b.i64[j];
    case ValueType::kDouble:
      return a.f64[i] == b.f64[j];
    case ValueType::kString:
      return a.str[i] == b.str[j];
    case ValueType::kNull:
      return true;
  }
  return false;
}

bool CellEqualsValue(const ColumnVector& a, size_t i, const Value& v) {
  if (a.IsNull(i)) return v.is_null();
  if (v.type() != a.type) return false;
  switch (a.type) {
    case ValueType::kInt64:
      return a.i64[i] == v.AsInt();
    case ValueType::kDouble:
      return a.f64[i] == v.AsDouble();
    case ValueType::kString:
      return a.str[i] == v.AsString();
    case ValueType::kNull:
      return true;
  }
  return false;
}

bool JoinKeyCellsEqual(const ColumnVector& a, size_t i, const ColumnVector& b,
                       size_t j) {
  if (a.IsNull(i) || b.IsNull(j)) return false;
  const bool a_str = a.type == ValueType::kString;
  const bool b_str = b.type == ValueType::kString;
  if (a_str != b_str) return false;  // Compare error => not equal
  if (a_str) return a.str[i] == b.str[j];
  if (a.type == ValueType::kInt64 && b.type == ValueType::kInt64) {
    return a.i64[i] == b.i64[j];
  }
  // Mixed/double keys go through the same three-way comparison the row
  // engine uses, so NaN (neither < nor >) still counts as "equal".
  const double x = a.AsF64(i);
  const double y = b.AsF64(j);
  return !(x < y) && !(x > y);
}

int CompareCells(const ColumnVector& a, size_t i, const ColumnVector& b,
                 size_t j) {
  if (a.type == ValueType::kString) {
    const int cmp = a.str[i].compare(b.str[j]);
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (a.type == ValueType::kInt64 && b.type == ValueType::kInt64) {
    if (a.i64[i] < b.i64[j]) return -1;
    if (a.i64[i] > b.i64[j]) return 1;
    return 0;
  }
  const double x = a.AsF64(i);
  const double y = b.AsF64(j);
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

void GatherColumnRange(const ColumnVector& src, const size_t* sel,
                       size_t count, size_t dst_begin, ColumnVector* dst) {
  // NULL payload slots hold a zero default, so payloads copy unconditionally.
  switch (src.type) {
    case ValueType::kInt64:
      for (size_t k = 0; k < count; ++k) {
        dst->i64[dst_begin + k] = src.i64[sel[k]];
      }
      break;
    case ValueType::kDouble:
      for (size_t k = 0; k < count; ++k) {
        dst->f64[dst_begin + k] = src.f64[sel[k]];
      }
      break;
    case ValueType::kString:
      for (size_t k = 0; k < count; ++k) {
        dst->str[dst_begin + k] = src.str[sel[k]];
      }
      break;
    case ValueType::kNull:
      return;  // dst is all-NULL by type
  }
  if (!src.nulls.empty()) {
    for (size_t k = 0; k < count; ++k) {
      dst->nulls[dst_begin + k] = src.nulls[sel[k]];
    }
  }
}

void HashColumnCombine(const ColumnVector& col, size_t begin, size_t count,
                       uint64_t* hashes) {
  using storage::CombineValueHash;
  const uint8_t* nulls = col.nulls.empty() ? nullptr : col.nulls.data();
  switch (col.type) {
    case ValueType::kInt64:
      for (size_t k = 0; k < count; ++k) {
        const size_t i = begin + k;
        hashes[k] = CombineValueHash(
            hashes[k], nulls != nullptr && nulls[i] != 0
                           ? storage::kNullValueHash
                           : storage::HashInt64Value(col.i64[i]));
      }
      return;
    case ValueType::kDouble:
      for (size_t k = 0; k < count; ++k) {
        const size_t i = begin + k;
        hashes[k] = CombineValueHash(
            hashes[k], nulls != nullptr && nulls[i] != 0
                           ? storage::kNullValueHash
                           : storage::HashDoubleValue(col.f64[i]));
      }
      return;
    case ValueType::kString:
      for (size_t k = 0; k < count; ++k) {
        const size_t i = begin + k;
        hashes[k] = CombineValueHash(
            hashes[k], nulls != nullptr && nulls[i] != 0
                           ? storage::kNullValueHash
                           : storage::HashStringValue(col.str[i]));
      }
      return;
    case ValueType::kNull:
      for (size_t k = 0; k < count; ++k) {
        hashes[k] = CombineValueHash(hashes[k], storage::kNullValueHash);
      }
      return;
  }
}

ColumnBatch ConcatColumnBatches(std::vector<ColumnBatch>&& parts) {
  ColumnBatch out;
  size_t total = 0;
  size_t first_nonempty = parts.size();
  for (size_t p = 0; p < parts.size(); ++p) {
    total += parts[p].num_rows;
    if (first_nonempty == parts.size() && !parts[p].cols.empty()) {
      first_nonempty = p;
    }
  }
  if (first_nonempty == parts.size()) return out;
  if (parts.size() == 1) return std::move(parts[0]);

  const size_t ncols = parts[first_nonempty].cols.size();
  out.num_rows = total;
  out.cols.resize(ncols);
  bool any_lineage = false;
  for (const ColumnBatch& part : parts) {
    if (!part.lineage.empty()) any_lineage = true;
  }
  if (any_lineage) out.lineage.reserve(total);
  for (size_t c = 0; c < ncols; ++c) {
    ColumnVector& dst = out.cols[c];
    // Result type: first non-kNull part wins (an all-NULL morsel of an
    // otherwise typed column is typed kNull locally).
    dst.type = ValueType::kNull;
    bool any_null_cell = false;
    for (const ColumnBatch& part : parts) {
      if (part.cols.empty()) continue;
      const ColumnVector& src = part.cols[c];
      if (dst.type == ValueType::kNull && src.type != ValueType::kNull) {
        dst.type = src.type;
      }
      if (src.type == ValueType::kNull || !src.nulls.empty()) {
        any_null_cell = any_null_cell || src.length > 0;
      }
    }
    dst.Reserve(total);
    if (any_null_cell && dst.type != ValueType::kNull) dst.nulls.reserve(total);
    for (const ColumnBatch& part : parts) {
      if (part.cols.empty()) continue;
      dst.AppendColumn(part.cols[c]);
    }
  }
  if (any_lineage) {
    for (ColumnBatch& part : parts) {
      for (LineageSet& ls : part.lineage) out.lineage.push_back(std::move(ls));
    }
  }
  return out;
}

size_t ApproxColumnRowBytes(const ColumnBatch& batch, size_t row) {
  size_t bytes =
      sizeof(storage::Tuple) + batch.cols.size() * sizeof(Value);
  for (const ColumnVector& col : batch.cols) {
    if (col.type == ValueType::kString && !col.IsNull(row)) {
      bytes += col.str[row].size();
    }
  }
  return bytes;
}

}  // namespace ldv::exec
