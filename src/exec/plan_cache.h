#ifndef LDV_EXEC_PLAN_CACHE_H_
#define LDV_EXEC_PLAN_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/planner.h"
#include "obs/metrics.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace ldv::exec {

/// One executable plan shared across sessions, produced by PlanCache for a
/// (normalized statement, parameter-type signature) pair.
struct CachedPlan {
  /// The annotated AST the plan was built from: a clone of the prepared
  /// statement with Expr::param_type stamped per the signature, so binding
  /// inferred exactly the types literal inlining would have.
  std::shared_ptr<const sql::Statement> stmt;
  /// Operator tree + output schema. Logically immutable: executions run
  /// with ExecContext::frozen_plan set, which keeps per-node stats and
  /// instrumentation untouched, so concurrent EXECUTEs share the tree
  /// safely (operator state lives in the ExecContext / locals).
  std::shared_ptr<SelectPlan> plan;
};

/// True when a prepared statement may execute through the shared plan cache
/// rather than by literal substitution. Cacheable statements are plain
/// SELECTs: no PROVENANCE/EXPLAIN, no subqueries (those execute eagerly at
/// plan time), and no bare placeholder as an ORDER BY item — an inlined
/// integer literal there is an ordinal (ORDER BY 2 = second column) while a
/// bound parameter would be a constant key, so those statements take the
/// substitution path to stay bit-identical with literal inlining.
bool PlanCacheEligible(const sql::Statement& stmt);

/// Canonical cache-key text of a statement: tokens re-rendered one-space
/// separated, identifiers and keywords lowercased (quoted when they contain
/// non-identifier characters), string literals kept case-sensitive,
/// integers canonicalized, and `?` placeholders renumbered to `$1..$n` in
/// token order. Texts that lex identically share one key; anything that
/// fails to lex keys on its raw text.
std::string NormalizeStatementText(std::string_view sql);

/// Process-wide shared cache of prepared-statement ASTs and plans, keyed by
/// (database instance, normalized statement text). Entries are stamped with
/// the database's schema version; any DDL or COPY bumps the version, so the
/// next EXECUTE observes the entry as stale, drops its plans and replans
/// against the new catalog (metric `plan_cache.stale`). LRU-bounded by
/// statement count (`--plan-cache-entries`); capacity 0 disables sharing
/// entirely, every EXECUTE then plans afresh.
///
/// The fault point `plancache.stale` forces the stale path on lookup, so
/// tests can drive replanning without running DDL.
class PlanCache {
 public:
  static PlanCache& Global();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Registers (or re-finds) the shared AST for `key`. Returns the cached
  /// statement when one exists so every session preparing an equivalent
  /// text holds the same tree; otherwise stores and returns `body`.
  std::shared_ptr<const sql::Statement> Intern(const storage::Database& db,
                                               const std::string& key,
                                               sql::Statement body);

  /// Returns the shared plan for (`key`, signature-of-`types`), planning
  /// `stmt` on a miss or when the entry's schema version is stale. The
  /// caller must hold the catalog lock (shared suffices): validation reads
  /// the live schema version, and planning resolves live Table pointers.
  Result<std::shared_ptr<const CachedPlan>> GetPlan(
      storage::Database* db, const std::string& key,
      const sql::Statement& stmt,
      const std::vector<storage::ValueType>& types);

  void set_capacity(size_t entries);
  size_t capacity() const;
  /// Statements currently cached (for stats/tests).
  size_t entries() const;
  /// Drops every entry (tests).
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const sql::Statement> ast;
    uint64_t schema_version = 0;
    /// Plans by parameter-type signature (one char per slot).
    std::map<std::string, std::shared_ptr<const CachedPlan>> plans;
    std::list<std::string>::iterator lru_it;
  };

  PlanCache();

  Entry* InsertEntryLocked(const std::string& full_key);
  void TouchLocked(Entry* entry);

  Result<std::shared_ptr<const CachedPlan>> BuildPlan(
      storage::Database* db, const sql::Statement& stmt,
      const std::vector<storage::ValueType>& types);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  /// Keys least-recently-used first; capacity evicts from the front.
  std::list<std::string> lru_;
  size_t capacity_ = 256;

  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* stale_;
};

}  // namespace ldv::exec

#endif  // LDV_EXEC_PLAN_CACHE_H_
