#ifndef LDV_EXEC_PLANNER_H_
#define LDV_EXEC_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/operators.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace ldv::exec {

/// A complete SELECT plan: the operator tree plus the result schema (with
/// user-facing column names, i.e., aliases applied).
struct SelectPlan {
  std::unique_ptr<PlanNode> root;
  storage::Schema output_schema;
};

/// Builds an executable plan for a SELECT statement:
///   - per-table predicate pushdown into scans,
///   - left-deep joins in FROM order, hash joins on extracted equi-join
///     conjuncts, nested loop + residual otherwise,
///   - hash aggregation with HAVING, DISTINCT, ORDER BY, LIMIT,
///   - prov_* pseudo-columns exposed on scans whose table is referenced by
///     one of them.
Result<SelectPlan> PlanSelect(storage::Database* db,
                              const sql::SelectStmt& select);

}  // namespace ldv::exec

#endif  // LDV_EXEC_PLANNER_H_
