#ifndef LDV_EXEC_COLUMN_BATCH_H_
#define LDV_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "storage/table.h"
#include "storage/value.h"

namespace ldv::exec {

/// Rows per morsel — the unit of work parallel operators fan out over.
/// Morsel boundaries depend only on input size, never on thread count, so
/// every decomposition-sensitive result (floating-point aggregate partials,
/// group emission order) is reproducible at any degree of parallelism.
inline constexpr size_t kMorselRows = 2048;

/// Lineage of one output row: the set of input tuple versions it was derived
/// from (paper Definition 7, the P_Lin dependency set).
using LineageSet = std::vector<storage::TupleVid>;

/// Materialized row-at-a-time intermediate result. `lineage` is parallel to
/// `rows` when lineage tracking is on, otherwise empty.
struct Batch {
  std::vector<storage::Tuple> rows;
  std::vector<LineageSet> lineage;
};

/// One column of a ColumnBatch: a contiguous typed array plus an optional
/// null bitmap (byte-per-row; empty means "no NULLs in this column").
///
/// Exactly one payload vector — the one matching `type` — holds `length`
/// entries; null slots hold a zero default so reads are always initialized.
/// A column of type kNull carries no payload at all: every row is NULL.
///
/// String cells are std::string_view into storage owned elsewhere for the
/// whole statement: table row versions (scans hold the table read-locked),
/// plan-tree literals, or the caller's bound parameter tuple. The vectorized
/// engine never materializes intermediate strings (the operators that would
/// — CONCAT, UPPER, ... — fall back to the row engine), so no arena or
/// keep-alive bookkeeping is needed.
struct ColumnVector {
  storage::ValueType type = storage::ValueType::kNull;
  size_t length = 0;
  std::vector<uint8_t> nulls;  // empty = dense; else length bytes, 1 = NULL
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string_view> str;

  size_t size() const { return length; }

  bool IsNull(size_t i) const {
    return type == storage::ValueType::kNull ||
           (!nulls.empty() && nulls[i] != 0);
  }

  /// Widening numeric read (kInt64 or kDouble cell).
  double AsF64(size_t i) const {
    return type == storage::ValueType::kInt64 ? static_cast<double>(i64[i])
                                              : f64[i];
  }

  void Reserve(size_t n);

  /// Sizes the column to `n` zero-initialized, nullable slots (the null map
  /// is always allocated so disjoint ranges can be written concurrently).
  void ResizeZero(size_t n);

  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendStr(std::string_view v);
  /// Appends cell `i` of `src`; src.type must equal type or the cell be NULL.
  void AppendFrom(const ColumnVector& src, size_t i);
  /// Bulk-appends all of `src` (same type, or one side kNull for an all-NULL
  /// stretch of a typed column) — equivalent to AppendFrom over every cell
  /// with the per-cell type dispatch hoisted out of the loop.
  void AppendColumn(const ColumnVector& src);
  /// Writes cell `i` of `src` into preallocated (ResizeZero) slot `dst`.
  /// Safe to call concurrently for disjoint `dst` ranges.
  void SetFrom(size_t dst, const ColumnVector& src, size_t i);

  /// Materializes cell `i` as a Value (strings are copied out).
  storage::Value GetValue(size_t i) const;

  /// Hash of cell `i`, bit-identical to GetValue(i).Hash() — both are built
  /// on the shared per-type primitives in storage/value.h.
  uint64_t CellHash(size_t i) const {
    if (IsNull(i)) return storage::kNullValueHash;
    switch (type) {
      case storage::ValueType::kInt64:
        return storage::HashInt64Value(i64[i]);
      case storage::ValueType::kDouble:
        return storage::HashDoubleValue(f64[i]);
      case storage::ValueType::kString:
        return storage::HashStringValue(str[i]);
      case storage::ValueType::kNull:
        break;
    }
    return storage::kNullValueHash;
  }
};

/// Structural cell equality replicating Value::operator== exactly: NULL ==
/// NULL, matching types compare payloads (doubles via ==, so int 1 != double
/// 1.0 and NaN != NaN), mismatched types are unequal.
bool CellsEqual(const ColumnVector& a, size_t i, const ColumnVector& b,
                size_t j);
bool CellEqualsValue(const ColumnVector& a, size_t i,
                     const storage::Value& v);

/// Join-key cell equality replicating the row engine's probe check
/// (Compare()-based, with int<->double coercion; a NULL on either side or a
/// string/number mix — a Compare error in the row engine — is "not equal").
/// Note the Compare quirk survives: a NaN double key "equals" any numeric.
bool JoinKeyCellsEqual(const ColumnVector& a, size_t i, const ColumnVector& b,
                       size_t j);

/// Three-way comparison of two non-NULL cells whose types are statically
/// comparable (both numeric or both string) — Value::Compare minus the error
/// path the static kernel checks already ruled out.
int CompareCells(const ColumnVector& a, size_t i, const ColumnVector& b,
                 size_t j);

/// Gathers `count` cells: dst[dst_begin + k] = src[sel[k]]. `dst` must be
/// pre-sized (ResizeZero) with src's type; the type dispatch runs once per
/// call, not per cell. Safe to call concurrently for disjoint dst ranges.
void GatherColumnRange(const ColumnVector& src, const size_t* sel,
                       size_t count, size_t dst_begin, ColumnVector* dst);

/// Folds cell hashes into the accumulators: hashes[k] =
/// CombineValueHash(hashes[k], col.CellHash(begin + k)) for k in [0, count),
/// bit-identical to the per-cell form with the type dispatch hoisted.
void HashColumnCombine(const ColumnVector& col, size_t begin, size_t count,
                       uint64_t* hashes);

/// Columnar intermediate result: per-column typed arrays, all `num_rows`
/// long, plus the lineage annotation column (parallel per-row LineageSets,
/// populated only when the statement tracks lineage).
struct ColumnBatch {
  size_t num_rows = 0;
  std::vector<ColumnVector> cols;
  std::vector<LineageSet> lineage;
};

/// Concatenates per-morsel batches in morsel order (columns must agree in
/// type). Lineage columns concatenate alongside.
ColumnBatch ConcatColumnBatches(std::vector<ColumnBatch>&& parts);

/// Approximate retained bytes of one row of `batch`, mirroring the row
/// engine's ApproxTupleBytes closely enough that memory-budget charges stay
/// comparable across the two engines.
size_t ApproxColumnRowBytes(const ColumnBatch& batch, size_t row);

/// What one operator hands the next: either a columnar payload (`columnar`
/// set) or a row-at-a-time Batch from a fallback operator. `batches` counts
/// the morsel batches the producing operator's vectorized kernel processed.
struct ColumnarResult {
  bool columnar = false;
  ColumnBatch columns;
  Batch rows;
  int64_t batches = 0;

  size_t NumRows() const {
    return columnar ? columns.num_rows : rows.rows.size();
  }
};

}  // namespace ldv::exec

#endif  // LDV_EXEC_COLUMN_BATCH_H_
