#ifndef LDV_EXEC_OPERATORS_H_
#define LDV_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/column_batch.h"
#include "exec/expression.h"
#include "exec/governor.h"
#include "storage/database.h"
#include "util/thread_pool.h"

namespace ldv::exec {

/// Shared state for one statement execution.
struct ExecContext {
  storage::Database* db = nullptr;
  /// Perm-style provenance computation requested for this statement.
  bool track_lineage = false;
  /// Collect per-operator execution statistics (EXPLAIN ANALYZE). Off by
  /// default so the instrumentation costs a single branch per operator.
  bool profile = false;
  /// Identifiers the auditing client assigned (paper §VII-C); stamped into
  /// the prov_usedby / prov_p metadata of every tuple a lineage-tracked scan
  /// reads.
  int64_t query_id = 0;
  int64_t process_id = 0;
  /// Lineage contributed by flattened (uncorrelated) subqueries: every
  /// result row of the outer query conservatively depends on the tuples the
  /// subquery read, since they decided its predicate values.
  LineageSet ambient_lineage;
  /// Values of every tuple version that appeared in some lineage set,
  /// collected so the caller can persist provenance without re-querying.
  std::unordered_map<storage::TupleVid, storage::Tuple, storage::TupleVidHash>
      prov_tuples;
  /// Worker pool for morsel-parallel operators; null or dop <= 1 runs every
  /// operator on the calling thread (the decomposition stays the same, so
  /// results are identical — see kMorselRows).
  ThreadPool* pool = nullptr;
  int dop = 1;
  /// Cooperative cancellation token + per-query memory budget; may be null
  /// (tests, internal statements). Operators call CheckGovernor() at every
  /// morsel boundary and expression-loop stride and ChargeMemory() when
  /// they materialize (DESIGN.md §11).
  QueryGovernor* governor = nullptr;
  /// Snapshot-isolated read (DESIGN.md §12): scans resolve each row to the
  /// newest version created at or before this epoch, so the statement sees
  /// a frozen committed state regardless of concurrent writers. 0 reads the
  /// live current state (DML, transactions, provenance, internal reads).
  /// Snapshot reads never run with track_lineage (lineage stamps mutate the
  /// rows being scanned).
  int64_t snapshot_epoch = 0;
  /// Bound parameter values for kParameter expressions (EXECUTE of a cached
  /// plan); null when the statement has no placeholders.
  const storage::Tuple* params = nullptr;
  /// Set when the plan tree is shared (plan cache): the node's stats_ must
  /// never be mutated — the same tree may execute concurrently on other
  /// threads. Shared plans are only handed out for non-profiled,
  /// non-traced executions, and this flag keeps a mid-execution
  /// TraceRecorder::Enable from racing onto them.
  bool frozen_plan = false;

  bool parallel() const { return pool != nullptr && dop > 1; }

  /// The cooperative cancellation check, inlined to a null test plus one
  /// relaxed-ish atomic load on the fast path.
  Status CheckGovernor() {
    return governor == nullptr ? Status::Ok() : governor->Check();
  }

  /// Charges `bytes` against the statement's memory budget (no-op without
  /// a governor).
  Status ChargeMemory(size_t bytes) {
    return governor == nullptr ? Status::Ok()
                               : governor->ChargeMemory(bytes);
  }
};

/// Execution statistics one operator accumulates while profiling or tracing
/// is on. Plan trees are built per statement, so counts start at zero.
struct OpStats {
  int64_t rows_out = 0;
  int64_t invocations = 0;
  /// Inclusive wall time (children included), like EXPLAIN ANALYZE.
  int64_t wall_nanos = 0;
  /// Hash-join only: time spent building the hash table vs. probing it
  /// (children excluded). Zero for every other operator.
  int64_t build_nanos = 0;
  int64_t probe_nanos = 0;
  /// Morsels this operator fanned out over the pool (0 when it ran the
  /// plain serial path).
  int64_t parallel_morsels = 0;
  /// Degree of parallelism of those fan-outs (max over invocations).
  int64_t parallel_workers = 0;
  /// CPU time summed across workers for the parallel sections; compared
  /// against wall_nanos this shows the wall/CPU split in EXPLAIN ANALYZE.
  int64_t cpu_nanos = 0;
  /// Columnar morsel batches this operator's vectorized kernel produced
  /// (0 when it never ran vectorized).
  int64_t vector_batches = 0;
  /// Times the operator ran in a vectorized execution but fell back to the
  /// row-at-a-time path (cold expression, non-columnar input, ...).
  int64_t row_fallbacks = 0;
};

/// Base class of the materialized operator tree. Execute() returns the full
/// result; schema()/scope() describe the output layout.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Runs the operator. When neither profiling (ctx->profile) nor tracing
  /// (obs::TraceRecorder) is active this is a single predicted branch in
  /// front of the operator logic; otherwise it times the call, accumulates
  /// `stats()` and emits an "exec" trace span.
  Result<Batch> Execute(ExecContext* ctx);

  /// Vectorized entry point: like Execute(), but hot operators return a
  /// columnar ColumnBatch and cold operators a row-carrier fallback (the
  /// base implementation wraps ExecuteImpl). Results are bit-identical to
  /// Execute() — rows, order and lineage — at any DOP; which representation
  /// carries them is the only difference.
  Result<ColumnarResult> ExecuteColumnar(ExecContext* ctx);

  const Scope& scope() const { return scope_; }

  /// Operator name shown in EXPLAIN output and trace spans ("HashJoin",
  /// "Scan", ...).
  virtual std::string label() const = 0;
  /// Operator-specific annotation (table name, join keys, ...); may be "".
  virtual std::string detail() const { return ""; }
  /// Child operators in plan order, for profile-tree extraction.
  virtual std::vector<const PlanNode*> children() const { return {}; }

  const OpStats& stats() const { return stats_; }

 protected:
  /// The operator logic; subclasses implement this instead of Execute().
  virtual Result<Batch> ExecuteImpl(ExecContext* ctx) = 0;

  /// Columnar operator logic. The default runs the row path and wraps it as
  /// a row-carrier result; hot operators override it with batch kernels and
  /// fall back to the row path themselves when the plan shape (cold
  /// expressions, non-columnar input) demands it.
  virtual Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx);

  Scope scope_;
  OpStats stats_;

 private:
  Result<Batch> ExecuteInstrumented(ExecContext* ctx);
  Result<ColumnarResult> ExecuteColumnarInstrumented(ExecContext* ctx);
};

/// Materializes a columnar result as rows (parallel over morsels); a
/// row-carrier result passes through unchanged. `stats` may be null.
Result<Batch> ColumnarToRows(ExecContext* ctx, OpStats* stats,
                             ColumnarResult&& in);

/// Sequential scan with optional pushed-down filter. When lineage tracking
/// is on, every emitted row carries its TupleVid and has its usedby/process
/// metadata stamped.
class ScanNode final : public PlanNode {
 public:
  /// `expose_prov_columns` appends the four prov_* pseudo-columns (hidden)
  /// to the output layout.
  ScanNode(storage::Table* table, const std::string& alias,
           bool expose_prov_columns);

  /// Filter over this scan's scope; may be null. Set after construction so
  /// the caller can bind against scope().
  void set_filter(std::unique_ptr<BoundExpr> filter) {
    filter_ = std::move(filter);
  }

  /// Access-path hint: fetch candidate rows through the table's hash index
  /// on `column` (a table column index) for rows equal to `value`. The
  /// filter still runs; the probe only narrows the rows visited.
  void set_index_probe(int column, storage::Value value) {
    probe_column_ = column;
    probe_value_ = std::move(value);
  }
  bool has_index_probe() const { return probe_column_ >= 0; }

  /// Planner hint: the query takes at most `limit` rows of this scan in
  /// emission order (LIMIT with no ORDER BY / aggregation / join above), so
  /// the scan may stop at the first morsel boundary where the limit is
  /// reached instead of materializing the full table. Ignored for
  /// lineage-tracked statements (they stamp every row they read).
  void set_limit_hint(int64_t limit) { limit_hint_ = limit; }
  int64_t limit_hint() const { return limit_hint_; }

  bool exposes_prov_columns() const { return expose_prov_columns_; }
  const storage::Table* table() const { return table_; }

  std::string label() const override { return "Scan"; }
  std::string detail() const override;

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override;
  Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx) override;

 private:
  /// Tuple versions a morsel's rows contributed to lineage; merged into
  /// ExecContext::prov_tuples after the (possibly parallel) scan finishes.
  using ProvRecords = std::vector<std::pair<storage::TupleVid, storage::Tuple>>;

  Status EmitRow(ExecContext* ctx, storage::RowVersion* row, Batch* out,
                 ProvRecords* prov);

  storage::Table* table_;
  std::string alias_;
  bool expose_prov_columns_;
  std::unique_ptr<BoundExpr> filter_;
  int probe_column_ = -1;
  storage::Value probe_value_;
  int64_t limit_hint_ = -1;
};

/// Hash join (equi keys) with optional residual predicate; falls back to a
/// nested loop when no keys are given. `left_outer` emits unmatched left
/// rows padded with NULLs (their lineage is the left side's alone).
class JoinNode final : public PlanNode {
 public:
  JoinNode(std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right,
           std::vector<std::pair<int, int>> key_pairs,
           bool left_outer = false);

  void set_residual(std::unique_ptr<BoundExpr> residual) {
    residual_ = std::move(residual);
  }

  std::string label() const override {
    return key_pairs_.empty() ? "NestedLoopJoin" : "HashJoin";
  }
  std::string detail() const override;
  std::vector<const PlanNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override;
  Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx) override;

 private:
  /// Row-at-a-time join over already-materialized inputs (ExecuteImpl and
  /// the columnar fallback both land here).
  Result<Batch> ProcessRows(ExecContext* ctx, Batch&& left, Batch&& right);

  std::unique_ptr<PlanNode> left_;
  std::unique_ptr<PlanNode> right_;
  /// Pairs of (left scope index, right scope index) equi-join keys.
  std::vector<std::pair<int, int>> key_pairs_;
  std::unique_ptr<BoundExpr> residual_;
  bool left_outer_;
};

/// Filters rows by a predicate bound to the child scope.
class FilterNode final : public PlanNode {
 public:
  FilterNode(std::unique_ptr<PlanNode> child,
             std::unique_ptr<BoundExpr> predicate);

  std::string label() const override { return "Filter"; }
  std::vector<const PlanNode*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override;
  Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx) override;

 private:
  Result<Batch> ProcessRows(ExecContext* ctx, Batch&& in);

  std::unique_ptr<PlanNode> child_;
  std::unique_ptr<BoundExpr> predicate_;
};

/// Evaluates output expressions; the scope is built from provided names.
class ProjectNode final : public PlanNode {
 public:
  ProjectNode(std::unique_ptr<PlanNode> child,
              std::vector<std::unique_ptr<BoundExpr>> exprs,
              std::vector<std::string> names);

  std::string label() const override { return "Project"; }
  std::vector<const PlanNode*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override;
  Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx) override;

 private:
  Result<Batch> ProcessRows(ExecContext* ctx, Batch&& in);

  std::unique_ptr<PlanNode> child_;
  std::vector<std::unique_ptr<BoundExpr>> exprs_;
};

/// One aggregate computation over a group.
struct AggregateSpec {
  enum class Fn { kCountStar, kCount, kSum, kAvg, kMin, kMax };
  Fn fn = Fn::kCountStar;
  std::unique_ptr<BoundExpr> arg;  // null for COUNT(*)
  std::string output_name;         // synthetic "#aggN"
  storage::ValueType output_type = storage::ValueType::kInt64;
};

/// Hash aggregation. Output layout: group key columns (named "#grpN") then
/// one column per aggregate ("#aggN"). The lineage of an output row is the
/// union of the lineage of its group's input rows — exactly the Lineage
/// semantics the paper's Example 4 illustrates.
class AggregateNode final : public PlanNode {
 public:
  AggregateNode(std::unique_ptr<PlanNode> child,
                std::vector<std::unique_ptr<BoundExpr>> group_exprs,
                std::vector<AggregateSpec> aggs);

  std::string label() const override { return "Aggregate"; }
  std::string detail() const override;
  std::vector<const PlanNode*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override;
  Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx) override;

 private:
  Result<Batch> ProcessRows(ExecContext* ctx, Batch&& in);

  std::unique_ptr<PlanNode> child_;
  std::vector<std::unique_ptr<BoundExpr>> group_exprs_;
  std::vector<AggregateSpec> aggs_;
};

/// DISTINCT on all output columns; lineage of a kept row is the union over
/// its duplicates.
class DistinctNode final : public PlanNode {
 public:
  explicit DistinctNode(std::unique_ptr<PlanNode> child);

  std::string label() const override { return "Distinct"; }
  std::vector<const PlanNode*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override;
  Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx) override;

 private:
  Result<Batch> ProcessRows(ExecContext* ctx, Batch&& in);

  std::unique_ptr<PlanNode> child_;
};

/// ORDER BY (stable) + optional LIMIT.
class SortLimitNode final : public PlanNode {
 public:
  struct SortKey {
    std::unique_ptr<BoundExpr> expr;
    bool ascending = true;
  };
  SortLimitNode(std::unique_ptr<PlanNode> child, std::vector<SortKey> keys,
                std::optional<int64_t> limit);

  std::string label() const override { return "SortLimit"; }
  std::string detail() const override;
  std::vector<const PlanNode*> children() const override {
    return {child_.get()};
  }

 protected:
  Result<Batch> ExecuteImpl(ExecContext* ctx) override;
  /// No columnar sort kernel: the child executes vectorized and the sort
  /// itself runs on the converted rows.
  Result<ColumnarResult> ExecuteColumnarImpl(ExecContext* ctx) override;

 private:
  Result<Batch> ProcessRows(ExecContext* ctx, Batch&& in);

  std::unique_ptr<PlanNode> child_;
  std::vector<SortKey> keys_;
  std::optional<int64_t> limit_;
};

/// Appends `src` lineage entries into `dst` keeping it sorted and unique.
void MergeLineage(LineageSet* dst, const LineageSet& src);

}  // namespace ldv::exec

#endif  // LDV_EXEC_OPERATORS_H_
