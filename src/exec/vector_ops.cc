// Vectorized columnar execution (DESIGN.md §15): batch kernels for the hot
// operators — scan with fused filter, hash join build/probe, aggregate and
// distinct partials, projection — running inside the same morsel
// decomposition as the row engine, so results are bit-identical at any DOP.
// Operators whose plan shape the kernels don't cover (cold expressions,
// sorts, outer joins, residuals) fall back to the row-at-a-time path via
// ColumnarToRows; the fallback boundary is visible in EXPLAIN ANALYZE and
// the exec.vectorized.* metrics.

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/clock.h"
#include "exec/exec_internal.h"
#include "exec/operators.h"
#include "exec/vector_expr.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ldv::exec {

using internal::AggState;
using internal::ApproxRowsBytes;
using internal::GroupState;
using internal::GroupTable;
using internal::MergeAndFinalizeGroups;
using internal::NumMorsels;
using internal::RunMorsels;
using storage::RowVersion;
using storage::Tuple;
using storage::TupleVid;
using storage::Value;
using storage::ValueType;

namespace {

struct VectorizedMetrics {
  obs::Counter* queries;
  obs::Counter* batches;
  obs::Counter* fallbacks;
};

const VectorizedMetrics& GetVectorizedMetrics() {
  static const VectorizedMetrics metrics{
      obs::MetricsRegistry::Global().counter("exec.vectorized.queries"),
      obs::MetricsRegistry::Global().counter("exec.vectorized.batches"),
      obs::MetricsRegistry::Global().counter("exec.vectorized.fallbacks")};
  return metrics;
}

/// An operator "fell back" when it produced rows without running any batch
/// kernel (an aggregate returns a row-carrier but DID run vectorized — its
/// batches count says so).
bool IsRowFallback(const ColumnarResult& r) {
  return !r.columnar && r.batches == 0;
}

ColumnarResult WrapRows(Batch&& rows) {
  ColumnarResult out;
  out.rows = std::move(rows);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// PlanNode columnar entry points
// ---------------------------------------------------------------------------

Result<ColumnarResult> PlanNode::ExecuteColumnar(ExecContext* ctx) {
  Result<ColumnarResult> result =
      ctx->frozen_plan || (!ctx->profile && !obs::TraceRecorder::enabled())
          ? ExecuteColumnarImpl(ctx)
          : ExecuteColumnarInstrumented(ctx);
  if (result.ok()) {
    const VectorizedMetrics& metrics = GetVectorizedMetrics();
    if (result->batches > 0) metrics.batches->Add(result->batches);
    if (IsRowFallback(*result)) metrics.fallbacks->Add(1);
  }
  return result;
}

Result<ColumnarResult> PlanNode::ExecuteColumnarInstrumented(ExecContext* ctx) {
  obs::Span span(label(), "exec");
  if (span.recording()) {
    std::string d = detail();
    if (!d.empty()) span.AddArg("detail", d);
  }
  const int64_t start = NowNanos();
  Result<ColumnarResult> result = ExecuteColumnarImpl(ctx);
  stats_.wall_nanos += NowNanos() - start;
  ++stats_.invocations;
  if (result.ok()) {
    stats_.rows_out += static_cast<int64_t>(result->NumRows());
    stats_.vector_batches += result->batches;
    if (IsRowFallback(*result)) ++stats_.row_fallbacks;
    if (span.recording()) {
      span.AddArg("rows_out", std::to_string(result->NumRows()));
      if (result->batches > 0) {
        span.AddArg("batches", std::to_string(result->batches));
      }
      if (stats_.parallel_morsels > 0) {
        span.AddArg("morsels", std::to_string(stats_.parallel_morsels));
        span.AddArg("workers", std::to_string(stats_.parallel_workers));
      }
    }
  }
  return result;
}

Result<ColumnarResult> PlanNode::ExecuteColumnarImpl(ExecContext* ctx) {
  // Cold operators (DML feeds, reenactment, single-row sources) run their
  // row logic unchanged and hand the result on as a row carrier.
  LDV_ASSIGN_OR_RETURN(Batch rows, ExecuteImpl(ctx));
  return WrapRows(std::move(rows));
}

Result<Batch> ColumnarToRows(ExecContext* ctx, OpStats* stats,
                             ColumnarResult&& in) {
  if (!in.columnar) return std::move(in.rows);
  ColumnBatch& cb = in.columns;
  const size_t n = cb.num_rows;
  Batch out;
  out.rows.resize(n);
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, stats, n, [&](size_t begin, size_t end, size_t) -> Status {
        for (size_t i = begin; i < end; ++i) {
          Tuple row;
          row.reserve(cb.cols.size());
          for (const ColumnVector& col : cb.cols) {
            row.push_back(col.GetValue(i));
          }
          out.rows[i] = std::move(row);
        }
        return Status::Ok();
      }));
  out.lineage = std::move(cb.lineage);
  return out;
}

// ---------------------------------------------------------------------------
// ScanNode: typed column extraction with the filter fused per morsel
// ---------------------------------------------------------------------------

Result<ColumnarResult> ScanNode::ExecuteColumnarImpl(ExecContext* ctx) {
  const int64_t epoch = ctx->snapshot_epoch;
  const bool versioned = epoch > 0 && table_->last_mutation_seq() > epoch;
  // The index-probe access path selects few rows by construction and a
  // non-vectorizable filter would run row-at-a-time anyway: both take the
  // row path wholesale.
  if ((has_index_probe() && table_->HasIndexOn(probe_column_) && !versioned) ||
      (filter_ != nullptr && !CanVectorizeExpr(*filter_, ctx->params))) {
    LDV_ASSIGN_OR_RETURN(Batch rows, ExecuteImpl(ctx));
    return WrapRows(std::move(rows));
  }

  const auto& schema_cols = table_->schema().columns();
  const size_t base_cols = schema_cols.size();
  const size_t ncols =
      base_cols + (expose_prov_columns_ ? size_t{4} : size_t{0});
  const bool lineage = ctx->track_lineage;
  std::vector<RowVersion>& rows = table_->mutable_rows();
  const size_t n = rows.size();

  // Strict-typing escape hatch: the kernels require every cell to be NULL
  // or exactly the schema type. A cell that deviates (legacy data, lax
  // coercion) aborts the columnar attempt and the whole scan re-runs
  // row-at-a-time — correctness never depends on the data being clean.
  std::atomic<bool> strict_abort{false};

  using ProvRecords = std::vector<std::pair<TupleVid, Tuple>>;
  const size_t num_morsels = NumMorsels(n);
  std::vector<ColumnBatch> parts(num_morsels);
  std::vector<ProvRecords> part_prov(num_morsels);

  auto scan_morsel = [&](size_t begin, size_t end, size_t morsel) -> Status {
    if (strict_abort.load(std::memory_order_relaxed)) return Status::Ok();
    // Resolve the visible version of each slot and extract its cells into
    // morsel-local typed columns.
    ColumnBatch cand;
    cand.cols.resize(ncols);
    for (size_t c = 0; c < base_cols; ++c) {
      cand.cols[c].type = schema_cols[c].type;
      cand.cols[c].Reserve(end - begin);
    }
    for (size_t c = base_cols; c < ncols; ++c) {
      cand.cols[c].type = ValueType::kInt64;
      cand.cols[c].Reserve(end - begin);
    }
    std::vector<RowVersion*> visible;
    visible.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      RowVersion* row = &rows[i];
      if (versioned) {
        const RowVersion* v = table_->VisibleVersion(*row, epoch);
        if (v == nullptr) continue;
        // Snapshot reads never track lineage, so the archived version is
        // never written through (mirrors the row path).
        row = const_cast<RowVersion*>(v);
      } else if (row->deleted) {
        continue;
      }
      if (row->values.size() != base_cols) {
        strict_abort.store(true, std::memory_order_relaxed);
        return Status::Ok();
      }
      for (size_t c = 0; c < base_cols; ++c) {
        const Value& v = row->values[c];
        if (v.is_null()) {
          cand.cols[c].AppendNull();
          continue;
        }
        if (v.type() != schema_cols[c].type) {
          strict_abort.store(true, std::memory_order_relaxed);
          return Status::Ok();
        }
        switch (v.type()) {
          case ValueType::kInt64:
            cand.cols[c].AppendInt(v.AsInt());
            break;
          case ValueType::kDouble:
            cand.cols[c].AppendDouble(v.AsDouble());
            break;
          case ValueType::kString:
            // View into the row version's string storage; stable for the
            // whole statement (the table is read-locked and lineage stamps
            // touch only the integer usedby fields).
            cand.cols[c].AppendStr(std::string_view(v.AsString()));
            break;
          case ValueType::kNull:
            break;
        }
      }
      if (expose_prov_columns_) {
        // usedby/process are read BEFORE this statement stamps the row,
        // exactly like the row path's EmitRow.
        cand.cols[base_cols].AppendInt(row->rowid);
        cand.cols[base_cols + 1].AppendInt(row->version);
        cand.cols[base_cols + 2].AppendInt(row->used_by_query);
        cand.cols[base_cols + 3].AppendInt(row->used_by_process);
      }
      visible.push_back(row);
    }
    cand.num_rows = visible.size();

    ColumnBatch& part = parts[morsel];
    if (filter_ == nullptr && !lineage) {
      part = std::move(cand);
      return Status::Ok();
    }
    std::vector<uint8_t> keep;
    if (filter_ != nullptr) {
      ColumnVector pred;
      EvalVector(*filter_, cand, 0, cand.num_rows, ctx->params, &pred);
      VectorTruthy(pred, &keep);
    }
    auto stamp = [&](size_t k) {
      RowVersion* row = visible[k];
      TupleVid vid{table_->id(), row->rowid, row->version};
      row->used_by_query = ctx->query_id;
      row->used_by_process = ctx->process_id;
      part.lineage.push_back({vid});
      part_prov[morsel].emplace_back(vid, row->values);
    };
    if (filter_ == nullptr) {
      part.cols = std::move(cand.cols);
      part.num_rows = cand.num_rows;
      part.lineage.reserve(part.num_rows);
      for (size_t k = 0; k < part.num_rows; ++k) stamp(k);
      return Status::Ok();
    }
    std::vector<size_t> sel;
    sel.reserve(cand.num_rows);
    for (size_t k = 0; k < cand.num_rows; ++k) {
      if (keep[k]) sel.push_back(k);
    }
    if (sel.size() == cand.num_rows) {
      // Filter kept everything: hand the candidate columns on as-is.
      part.cols = std::move(cand.cols);
    } else {
      part.cols.resize(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        ColumnVector& out_col = part.cols[c];
        out_col.type = cand.cols[c].type;
        out_col.ResizeZero(sel.size());
        if (cand.cols[c].nulls.empty()) out_col.nulls.clear();  // stay dense
        GatherColumnRange(cand.cols[c], sel.data(), sel.size(), 0, &out_col);
      }
    }
    part.num_rows = sel.size();
    if (lineage) {
      part.lineage.reserve(sel.size());
      for (size_t k : sel) stamp(k);
    }
    return Status::Ok();
  };

  // LIMIT pushdown without ORDER BY: run morsels serially and stop at the
  // first boundary where the limit is reached — the same whole-morsel
  // prefix the hinted row path emits. Lineage-tracked scans must stamp
  // every row they read, so they ignore the hint (as does the row path).
  const int64_t limit = limit_hint_ >= 0 && !lineage ? limit_hint_ : -1;
  int64_t batches = 0;
  if (limit >= 0) {
    size_t emitted = 0;
    for (size_t m = 0; m < num_morsels; ++m) {
      if (emitted >= static_cast<size_t>(limit)) break;
      LDV_RETURN_IF_ERROR(ctx->CheckGovernor());
      const size_t begin = m * kMorselRows;
      LDV_RETURN_IF_ERROR(
          scan_morsel(begin, std::min(n, begin + kMorselRows), m));
      if (strict_abort.load(std::memory_order_relaxed)) break;
      emitted += parts[m].num_rows;
      ++batches;
    }
  } else {
    LDV_RETURN_IF_ERROR(RunMorsels(ctx, &stats_, n, scan_morsel));
    batches = static_cast<int64_t>(num_morsels);
  }

  if (strict_abort.load(std::memory_order_relaxed)) {
    // Already-applied lineage stamps are idempotent for this statement and
    // the row path re-collects every prov record, so a clean re-run is safe.
    LDV_ASSIGN_OR_RETURN(Batch fallback_rows, ExecuteImpl(ctx));
    return WrapRows(std::move(fallback_rows));
  }

  ColumnarResult out;
  out.columnar = true;
  out.batches = batches;
  out.columns = ConcatColumnBatches(std::move(parts));
  if (out.columns.cols.empty()) out.columns.cols.resize(ncols);
  for (ProvRecords& records : part_prov) {
    for (auto& [vid, values] : records) {
      ctx->prov_tuples.emplace(vid, std::move(values));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// FilterNode: predicate kernel -> selection vector -> one parallel gather
// ---------------------------------------------------------------------------

Result<ColumnarResult> FilterNode::ExecuteColumnarImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(ColumnarResult in, child_->ExecuteColumnar(ctx));
  if (!in.columnar || !CanVectorizeExpr(*predicate_, ctx->params)) {
    LDV_ASSIGN_OR_RETURN(Batch rows,
                         ColumnarToRows(ctx, &stats_, std::move(in)));
    LDV_ASSIGN_OR_RETURN(Batch out, ProcessRows(ctx, std::move(rows)));
    return WrapRows(std::move(out));
  }
  ColumnBatch& cb = in.columns;
  const size_t n = cb.num_rows;
  std::vector<std::vector<size_t>> sels(NumMorsels(n));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, n, [&](size_t begin, size_t end, size_t morsel) -> Status {
        ColumnVector pred;
        EvalVector(*predicate_, cb, begin, end, ctx->params, &pred);
        std::vector<uint8_t> keep;
        VectorTruthy(pred, &keep);
        std::vector<size_t>& sel = sels[morsel];
        for (size_t i = 0; i < keep.size(); ++i) {
          if (keep[i]) sel.push_back(begin + i);
        }
        return Status::Ok();
      }));
  std::vector<size_t> sel;
  {
    size_t total = 0;
    for (const auto& s : sels) total += s.size();
    sel.reserve(total);
    for (const auto& s : sels) sel.insert(sel.end(), s.begin(), s.end());
  }

  ColumnarResult out;
  out.columnar = true;
  out.batches = static_cast<int64_t>(NumMorsels(n));
  ColumnBatch& oc = out.columns;
  oc.num_rows = sel.size();
  oc.cols.resize(cb.cols.size());
  for (size_t c = 0; c < cb.cols.size(); ++c) {
    oc.cols[c].type = cb.cols[c].type;
    oc.cols[c].ResizeZero(sel.size());
    if (cb.cols[c].nulls.empty()) oc.cols[c].nulls.clear();  // stay dense
  }
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, sel.size(),
      [&](size_t begin, size_t end, size_t) -> Status {
        for (size_t c = 0; c < cb.cols.size(); ++c) {
          GatherColumnRange(cb.cols[c], sel.data() + begin, end - begin, begin,
                            &oc.cols[c]);
        }
        return Status::Ok();
      }));
  if (ctx->track_lineage) {
    oc.lineage.reserve(sel.size());
    for (size_t i : sel) oc.lineage.push_back(std::move(cb.lineage[i]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ProjectNode: expression kernels per morsel
// ---------------------------------------------------------------------------

Result<ColumnarResult> ProjectNode::ExecuteColumnarImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(ColumnarResult in, child_->ExecuteColumnar(ctx));
  bool can = in.columnar;
  for (size_t e = 0; can && e < exprs_.size(); ++e) {
    can = CanVectorizeExpr(*exprs_[e], ctx->params);
  }
  if (!can) {
    LDV_ASSIGN_OR_RETURN(Batch rows,
                         ColumnarToRows(ctx, &stats_, std::move(in)));
    LDV_ASSIGN_OR_RETURN(Batch out, ProcessRows(ctx, std::move(rows)));
    return WrapRows(std::move(out));
  }
  ColumnBatch& cb = in.columns;
  const size_t n = cb.num_rows;
  std::vector<ColumnBatch> parts(NumMorsels(n));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, n, [&](size_t begin, size_t end, size_t morsel) -> Status {
        ColumnBatch& part = parts[morsel];
        part.cols.resize(exprs_.size());
        for (size_t e = 0; e < exprs_.size(); ++e) {
          EvalVector(*exprs_[e], cb, begin, end, ctx->params, &part.cols[e]);
        }
        part.num_rows = end - begin;
        return Status::Ok();
      }));
  ColumnarResult out;
  out.columnar = true;
  out.batches = static_cast<int64_t>(NumMorsels(n));
  out.columns = ConcatColumnBatches(std::move(parts));
  if (out.columns.cols.empty()) out.columns.cols.resize(exprs_.size());
  if (ctx->track_lineage) out.columns.lineage = std::move(cb.lineage);
  return out;
}

// ---------------------------------------------------------------------------
// JoinNode: columnar hash build + probe (equi-join, no residual/outer)
// ---------------------------------------------------------------------------

Result<ColumnarResult> JoinNode::ExecuteColumnarImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(ColumnarResult left, left_->ExecuteColumnar(ctx));
  LDV_ASSIGN_OR_RETURN(ColumnarResult right, right_->ExecuteColumnar(ctx));
  // The kernel covers the hot shape: hash equi-join, inner, no residual.
  // Everything else (nested loop, outer padding, residual re-evaluation)
  // stays on the row path.
  if (!left.columnar || !right.columnar || key_pairs_.empty() ||
      residual_ != nullptr || left_outer_) {
    LDV_ASSIGN_OR_RETURN(Batch l, ColumnarToRows(ctx, &stats_, std::move(left)));
    LDV_ASSIGN_OR_RETURN(Batch r,
                         ColumnarToRows(ctx, &stats_, std::move(right)));
    LDV_ASSIGN_OR_RETURN(Batch out,
                         ProcessRows(ctx, std::move(l), std::move(r)));
    return WrapRows(std::move(out));
  }
  ColumnBatch& lb = left.columns;
  ColumnBatch& rb = right.columns;
  const bool lineage = ctx->track_lineage;
  const bool timing = ctx->profile;
  const size_t num_rights = rb.num_rows;
  const size_t num_lefts = lb.num_rows;

  const int64_t build_start = timing ? NowNanos() : 0;
  // Same row-equivalent budget charge as the row path: the build side is
  // held materialized for the whole build+probe plus per-row bookkeeping.
  {
    size_t right_bytes = 0;
    for (size_t ri = 0; ri < num_rights; ++ri) {
      right_bytes += ApproxColumnRowBytes(rb, ri);
    }
    LDV_RETURN_IF_ERROR(ctx->ChargeMemory(
        right_bytes +
        num_rights * (sizeof(uint64_t) + sizeof(char) + 3 * sizeof(size_t))));
  }

  // Hash the right key columns per morsel; bit-identical to HashTuple over
  // the materialized key (shared per-type primitives + combiner).
  std::vector<uint64_t> right_hash(num_rights);
  std::vector<char> right_null_key(num_rights, 0);
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, num_rights,
      [&](size_t begin, size_t end, size_t) -> Status {
        for (size_t ri = begin; ri < end; ++ri) {
          right_hash[ri] = storage::kTupleHashSeed;
        }
        for (const auto& [l, r] : key_pairs_) {
          const ColumnVector& col = rb.cols[static_cast<size_t>(r)];
          HashColumnCombine(col, begin, end - begin, &right_hash[begin]);
          if (col.type == ValueType::kNull) {
            for (size_t ri = begin; ri < end; ++ri) right_null_key[ri] = 1;
          } else if (!col.nulls.empty()) {
            for (size_t ri = begin; ri < end; ++ri) {
              if (col.nulls[ri] != 0) right_null_key[ri] = 1;
            }
          }
        }
        return Status::Ok();
      }));

  // Identical partitioned build to the row path: hash-disjoint partitions,
  // bucket lists in ascending right-row order.
  using PartitionTable = std::unordered_map<uint64_t, std::vector<size_t>>;
  const size_t num_partitions =
      ctx->parallel() ? std::min<size_t>(static_cast<size_t>(ctx->dop), 16)
                      : 1;
  std::vector<PartitionTable> partitions(num_partitions);
  {
    std::vector<std::function<Status()>> build_tasks;
    build_tasks.reserve(num_partitions);
    for (size_t p = 0; p < num_partitions; ++p) {
      build_tasks.push_back([&, p]() -> Status {
        PartitionTable& table = partitions[p];
        for (size_t ri = 0; ri < num_rights; ++ri) {
          if (right_null_key[ri]) continue;
          if (right_hash[ri] % num_partitions != p) continue;
          table[right_hash[ri]].push_back(ri);
        }
        return Status::Ok();
      });
    }
    if (num_partitions > 1) {
      LDV_RETURN_IF_ERROR(
          ctx->pool->RunTasks(std::move(build_tasks), ctx->dop));
    } else {
      LDV_RETURN_IF_ERROR(build_tasks[0]());
    }
  }
  const int64_t probe_start = timing ? NowNanos() : 0;
  if (timing) stats_.build_nanos += probe_start - build_start;

  // Probe per left morsel, collecting (left, right) match pairs; per-morsel
  // pair lists concatenate to left order with ascending right order within
  // a left row — the row path's emission order exactly.
  std::vector<std::vector<std::pair<size_t, size_t>>> pair_parts(
      NumMorsels(num_lefts));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, num_lefts,
      [&](size_t begin, size_t end, size_t morsel) -> Status {
        auto& pairs = pair_parts[morsel];
        const size_t count = end - begin;
        std::vector<uint64_t> left_hash(count, storage::kTupleHashSeed);
        std::vector<char> left_null_key(count, 0);
        for (const auto& [l, r] : key_pairs_) {
          const ColumnVector& col = lb.cols[static_cast<size_t>(l)];
          HashColumnCombine(col, begin, count, left_hash.data());
          if (col.type == ValueType::kNull) {
            std::fill(left_null_key.begin(), left_null_key.end(), 1);
          } else if (!col.nulls.empty()) {
            for (size_t k = 0; k < count; ++k) {
              if (col.nulls[begin + k] != 0) left_null_key[k] = 1;
            }
          }
        }
        for (size_t li = begin; li < end; ++li) {
          if (left_null_key[li - begin]) continue;  // NULL never matches
          const uint64_t h = left_hash[li - begin];
          const PartitionTable& table = partitions[h % num_partitions];
          auto it = table.find(h);
          if (it == table.end()) continue;
          for (size_t ri : it->second) {
            bool keys_equal = true;
            for (size_t k = 0; keys_equal && k < key_pairs_.size(); ++k) {
              keys_equal = JoinKeyCellsEqual(
                  lb.cols[static_cast<size_t>(key_pairs_[k].first)], li,
                  rb.cols[static_cast<size_t>(key_pairs_[k].second)], ri);
            }
            if (keys_equal) pairs.emplace_back(li, ri);
          }
        }
        return Status::Ok();
      }));

  std::vector<std::pair<size_t, size_t>> pairs;
  {
    size_t total = 0;
    for (const auto& p : pair_parts) total += p.size();
    pairs.reserve(total);
    for (const auto& p : pair_parts) {
      pairs.insert(pairs.end(), p.begin(), p.end());
    }
  }

  ColumnarResult out;
  out.columnar = true;
  out.batches =
      static_cast<int64_t>(NumMorsels(num_rights) + NumMorsels(num_lefts));
  ColumnBatch& oc = out.columns;
  const size_t lcols = lb.cols.size();
  const size_t rcols = rb.cols.size();
  oc.num_rows = pairs.size();
  oc.cols.resize(lcols + rcols);
  for (size_t c = 0; c < lcols; ++c) {
    oc.cols[c].type = lb.cols[c].type;
    oc.cols[c].ResizeZero(pairs.size());
    if (lb.cols[c].nulls.empty()) oc.cols[c].nulls.clear();  // stay dense
  }
  for (size_t c = 0; c < rcols; ++c) {
    oc.cols[lcols + c].type = rb.cols[c].type;
    oc.cols[lcols + c].ResizeZero(pairs.size());
    if (rb.cols[c].nulls.empty()) oc.cols[lcols + c].nulls.clear();
  }
  if (lineage) oc.lineage.resize(pairs.size());
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, pairs.size(),
      [&](size_t begin, size_t end, size_t) -> Status {
        const size_t count = end - begin;
        std::vector<size_t> lsel(count), rsel(count);
        for (size_t k = 0; k < count; ++k) {
          lsel[k] = pairs[begin + k].first;
          rsel[k] = pairs[begin + k].second;
        }
        for (size_t c = 0; c < lcols; ++c) {
          GatherColumnRange(lb.cols[c], lsel.data(), count, begin, &oc.cols[c]);
        }
        for (size_t c = 0; c < rcols; ++c) {
          GatherColumnRange(rb.cols[c], rsel.data(), count, begin,
                            &oc.cols[lcols + c]);
        }
        if (lineage) {
          for (size_t i = begin; i < end; ++i) {
            LineageSet merged = lb.lineage[pairs[i].first];
            MergeLineage(&merged, rb.lineage[pairs[i].second]);
            oc.lineage[i] = std::move(merged);
          }
        }
        return Status::Ok();
      }));
  if (timing) stats_.probe_nanos += NowNanos() - probe_start;
  return out;
}

// ---------------------------------------------------------------------------
// AggregateNode: typed accumulation over key/arg vectors
// ---------------------------------------------------------------------------

namespace {

/// Typed Accumulate over cell `i` of an evaluated argument vector;
/// semantics identical to internal::Accumulate over the equivalent Value
/// (int fast path for SUM/AVG until a double flips it, Compare-ordered
/// MIN/MAX). `arg` is null only for COUNT(*).
void AccumulateCell(AggState* state, AggregateSpec::Fn fn,
                    const ColumnVector* arg, size_t i) {
  switch (fn) {
    case AggregateSpec::Fn::kCountStar:
      ++state->count;
      return;
    case AggregateSpec::Fn::kCount:
      if (!arg->IsNull(i)) ++state->count;
      return;
    case AggregateSpec::Fn::kSum:
    case AggregateSpec::Fn::kAvg:
      if (arg->IsNull(i)) return;
      ++state->count;
      state->any = true;
      if (arg->type == ValueType::kInt64 && !state->sum_is_double) {
        state->sum_int += arg->i64[i];
      } else {
        if (!state->sum_is_double) {
          state->sum_double = static_cast<double>(state->sum_int);
          state->sum_is_double = true;
        }
        state->sum_double += arg->AsF64(i);
      }
      return;
    case AggregateSpec::Fn::kMin:
    case AggregateSpec::Fn::kMax: {
      if (arg->IsNull(i)) return;
      if (!state->any) {
        state->extreme = arg->GetValue(i);
        state->any = true;
        return;
      }
      // The running extreme came from this same vector, so the types match
      // and the comparison is the error-free arm of Value::Compare.
      int cmp = 0;
      switch (arg->type) {
        case ValueType::kInt64: {
          const int64_t a = arg->i64[i];
          const int64_t b = state->extreme.AsInt();
          cmp = a < b ? -1 : (a > b ? 1 : 0);
          break;
        }
        case ValueType::kDouble: {
          const double a = arg->f64[i];
          const double b = state->extreme.AsDouble();
          cmp = a < b ? -1 : (a > b ? 1 : 0);
          break;
        }
        case ValueType::kString: {
          const int c = arg->str[i].compare(state->extreme.AsString());
          cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
          break;
        }
        case ValueType::kNull:
          break;
      }
      if ((fn == AggregateSpec::Fn::kMin && cmp < 0) ||
          (fn == AggregateSpec::Fn::kMax && cmp > 0)) {
        state->extreme = arg->GetValue(i);
      }
      return;
    }
  }
}

/// Finds the group whose keys equal cell `i` of the evaluated key vectors
/// (Value::operator== semantics), materializing the key tuple only when a
/// new group is created.
size_t FindOrCreateGroupCell(GroupTable* table, uint64_t hash,
                             const std::vector<ColumnVector>& keys, size_t i,
                             size_t num_aggs) {
  auto [begin, end] = table->index.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    const Tuple& group_keys = table->groups[it->second].keys;
    bool eq = true;
    for (size_t k = 0; eq && k < keys.size(); ++k) {
      eq = CellEqualsValue(keys[k], i, group_keys[k]);
    }
    if (eq) return it->second;
  }
  Tuple key;
  key.reserve(keys.size());
  for (const ColumnVector& kv : keys) key.push_back(kv.GetValue(i));
  return table->FindOrCreate(hash, std::move(key), num_aggs);
}

/// One aggregate over a whole morsel with the function and argument-type
/// dispatch hoisted out of the row loop; per-cell effects are identical to
/// AccumulateCell in morsel order.
void AccumulateColumn(GroupTable* table, const std::vector<size_t>& gids,
                      size_t slot, AggregateSpec::Fn fn,
                      const ColumnVector* arg) {
  std::vector<GroupState>& groups = table->groups;
  const size_t n = gids.size();
  switch (fn) {
    case AggregateSpec::Fn::kCountStar:
      for (size_t i = 0; i < n; ++i) ++groups[gids[i]].aggs[slot].count;
      return;
    case AggregateSpec::Fn::kCount:
      for (size_t i = 0; i < n; ++i) {
        if (!arg->IsNull(i)) ++groups[gids[i]].aggs[slot].count;
      }
      return;
    case AggregateSpec::Fn::kSum:
    case AggregateSpec::Fn::kAvg:
      // A kNull argument never accumulates; kString was gated to the row
      // engine. The slot's partial state is fed only by this single-typed
      // vector, so an int sum can never flip to double mid-morsel.
      if (arg->type == ValueType::kInt64) {
        for (size_t i = 0; i < n; ++i) {
          if (arg->IsNull(i)) continue;
          AggState& state = groups[gids[i]].aggs[slot];
          ++state.count;
          state.any = true;
          if (state.sum_is_double) {
            state.sum_double += static_cast<double>(arg->i64[i]);
          } else {
            state.sum_int += arg->i64[i];
          }
        }
      } else if (arg->type == ValueType::kDouble) {
        for (size_t i = 0; i < n; ++i) {
          if (arg->IsNull(i)) continue;
          AggState& state = groups[gids[i]].aggs[slot];
          ++state.count;
          state.any = true;
          if (!state.sum_is_double) {
            state.sum_double = static_cast<double>(state.sum_int);
            state.sum_is_double = true;
          }
          state.sum_double += arg->f64[i];
        }
      }
      return;
    case AggregateSpec::Fn::kMin:
    case AggregateSpec::Fn::kMax:
      for (size_t i = 0; i < n; ++i) {
        AccumulateCell(&groups[gids[i]].aggs[slot], fn, arg, i);
      }
      return;
  }
}

}  // namespace

Result<ColumnarResult> AggregateNode::ExecuteColumnarImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(ColumnarResult in, child_->ExecuteColumnar(ctx));
  bool can = in.columnar;
  for (size_t g = 0; can && g < group_exprs_.size(); ++g) {
    can = CanVectorizeExpr(*group_exprs_[g], ctx->params);
  }
  for (size_t a = 0; can && a < aggs_.size(); ++a) {
    if (aggs_[a].arg == nullptr) continue;
    can = CanVectorizeExpr(*aggs_[a].arg, ctx->params);
    // SUM/AVG over strings is a row-engine error path; keep it there.
    if (can &&
        (aggs_[a].fn == AggregateSpec::Fn::kSum ||
         aggs_[a].fn == AggregateSpec::Fn::kAvg) &&
        aggs_[a].arg->result_type == ValueType::kString) {
      can = false;
    }
  }
  if (!can) {
    LDV_ASSIGN_OR_RETURN(Batch rows,
                         ColumnarToRows(ctx, &stats_, std::move(in)));
    LDV_ASSIGN_OR_RETURN(Batch out, ProcessRows(ctx, std::move(rows)));
    return WrapRows(std::move(out));
  }
  ColumnBatch& cb = in.columns;
  const bool lineage = ctx->track_lineage;
  const size_t n = cb.num_rows;

  std::vector<GroupTable> partials(NumMorsels(n));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, n, [&](size_t begin, size_t end, size_t morsel) -> Status {
        GroupTable& local = partials[morsel];
        std::vector<ColumnVector> keys(group_exprs_.size());
        for (size_t g = 0; g < group_exprs_.size(); ++g) {
          EvalVector(*group_exprs_[g], cb, begin, end, ctx->params, &keys[g]);
        }
        std::vector<ColumnVector> args(aggs_.size());
        for (size_t a = 0; a < aggs_.size(); ++a) {
          if (aggs_[a].arg != nullptr) {
            EvalVector(*aggs_[a].arg, cb, begin, end, ctx->params, &args[a]);
          }
        }
        const size_t count = end - begin;
        std::vector<uint64_t> hashes(count, storage::kTupleHashSeed);
        for (const ColumnVector& kv : keys) {
          HashColumnCombine(kv, 0, count, hashes.data());
        }
        std::vector<size_t> gids(count);
        for (size_t i = 0; i < count; ++i) {
          gids[i] = FindOrCreateGroupCell(&local, hashes[i], keys, i,
                                          aggs_.size());
        }
        for (size_t a = 0; a < aggs_.size(); ++a) {
          AccumulateColumn(&local, gids, a, aggs_[a].fn,
                           aggs_[a].arg != nullptr ? &args[a] : nullptr);
        }
        if (lineage) {
          for (size_t i = 0; i < count; ++i) {
            const LineageSet& src = cb.lineage[begin + i];
            GroupState& group = local.groups[gids[i]];
            group.lineage.insert(group.lineage.end(), src.begin(), src.end());
          }
        }
        size_t partial_bytes = 0;
        for (const GroupState& g : local.groups) {
          partial_bytes += sizeof(GroupState) + ApproxTupleBytes(g.keys) +
                           g.aggs.size() * sizeof(AggState);
        }
        return ctx->ChargeMemory(partial_bytes);
      }));

  LDV_ASSIGN_OR_RETURN(
      Batch rows, MergeAndFinalizeGroups(std::move(partials), aggs_,
                                         !group_exprs_.empty(), lineage));
  // Group counts are small; hand the result on as rows (HAVING filters and
  // projections above fall back harmlessly).
  ColumnarResult out;
  out.rows = std::move(rows);
  out.batches = static_cast<int64_t>(NumMorsels(n));
  return out;
}

// ---------------------------------------------------------------------------
// DistinctNode: hash dedup over column cells
// ---------------------------------------------------------------------------

Result<ColumnarResult> DistinctNode::ExecuteColumnarImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(ColumnarResult in, child_->ExecuteColumnar(ctx));
  if (!in.columnar) {
    LDV_ASSIGN_OR_RETURN(Batch rows,
                         ColumnarToRows(ctx, &stats_, std::move(in)));
    LDV_ASSIGN_OR_RETURN(Batch out, ProcessRows(ctx, std::move(rows)));
    return WrapRows(std::move(out));
  }
  ColumnBatch& cb = in.columns;
  const bool lineage = ctx->track_lineage;
  const size_t n = cb.num_rows;

  auto rows_equal = [&](size_t a, size_t b) {
    for (const ColumnVector& col : cb.cols) {
      if (!CellsEqual(col, a, col, b)) return false;
    }
    return true;
  };

  // Phase 1: dedup within each morsel — kept rows stay as indexes into the
  // shared input batch (first appearance kept, duplicate lineage unioned).
  struct Partial {
    std::vector<size_t> kept;
    std::vector<uint64_t> hashes;
    std::vector<LineageSet> lineage;
    std::unordered_multimap<uint64_t, size_t> seen;
  };
  std::vector<Partial> partials(NumMorsels(n));
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, n, [&](size_t begin, size_t end, size_t morsel) -> Status {
        Partial& local = partials[morsel];
        std::vector<uint64_t> row_hashes(end - begin, storage::kTupleHashSeed);
        for (const ColumnVector& col : cb.cols) {
          HashColumnCombine(col, begin, end - begin, row_hashes.data());
        }
        for (size_t i = begin; i < end; ++i) {
          const uint64_t h = row_hashes[i - begin];
          size_t found = SIZE_MAX;
          auto [first, last] = local.seen.equal_range(h);
          for (auto it = first; it != last; ++it) {
            if (rows_equal(local.kept[it->second], i)) {
              found = it->second;
              break;
            }
          }
          if (found == SIZE_MAX) {
            local.seen.emplace(h, local.kept.size());
            local.hashes.push_back(h);
            local.kept.push_back(i);
            if (lineage) local.lineage.push_back(std::move(cb.lineage[i]));
          } else if (lineage) {
            MergeLineage(&local.lineage[found], cb.lineage[i]);
          }
        }
        // Row-equivalent charge for the retained dedup output + hash index.
        size_t kept_bytes = 0;
        for (size_t i : local.kept) kept_bytes += ApproxColumnRowBytes(cb, i);
        return ctx->ChargeMemory(
            kept_bytes +
            local.kept.size() * (sizeof(uint64_t) + 4 * sizeof(size_t)));
      }));

  // Phase 2: merge in morsel order — global first-appearance order and
  // lineage unions match the serial pass exactly.
  std::unordered_multimap<uint64_t, size_t> seen;
  std::vector<size_t> kept;
  std::vector<LineageSet> kept_lineage;
  for (Partial& partial : partials) {
    for (size_t i = 0; i < partial.kept.size(); ++i) {
      const uint64_t h = partial.hashes[i];
      size_t found = SIZE_MAX;
      auto [first, last] = seen.equal_range(h);
      for (auto it = first; it != last; ++it) {
        if (rows_equal(kept[it->second], partial.kept[i])) {
          found = it->second;
          break;
        }
      }
      if (found == SIZE_MAX) {
        seen.emplace(h, kept.size());
        kept.push_back(partial.kept[i]);
        if (lineage) kept_lineage.push_back(std::move(partial.lineage[i]));
      } else if (lineage) {
        MergeLineage(&kept_lineage[found], partial.lineage[i]);
      }
    }
  }

  ColumnarResult out;
  out.columnar = true;
  out.batches = static_cast<int64_t>(NumMorsels(n));
  ColumnBatch& oc = out.columns;
  oc.num_rows = kept.size();
  oc.cols.resize(cb.cols.size());
  for (size_t c = 0; c < cb.cols.size(); ++c) {
    oc.cols[c].type = cb.cols[c].type;
    oc.cols[c].ResizeZero(kept.size());
    if (cb.cols[c].nulls.empty()) oc.cols[c].nulls.clear();  // stay dense
  }
  LDV_RETURN_IF_ERROR(RunMorsels(
      ctx, &stats_, kept.size(),
      [&](size_t begin, size_t end, size_t) -> Status {
        for (size_t c = 0; c < cb.cols.size(); ++c) {
          GatherColumnRange(cb.cols[c], kept.data() + begin, end - begin,
                            begin, &oc.cols[c]);
        }
        return Status::Ok();
      }));
  if (lineage) oc.lineage = std::move(kept_lineage);
  return out;
}

// ---------------------------------------------------------------------------
// SortLimitNode: no sort kernel — children vectorize, the sort runs on rows
// ---------------------------------------------------------------------------

Result<ColumnarResult> SortLimitNode::ExecuteColumnarImpl(ExecContext* ctx) {
  LDV_ASSIGN_OR_RETURN(ColumnarResult in, child_->ExecuteColumnar(ctx));
  LDV_ASSIGN_OR_RETURN(Batch rows, ColumnarToRows(ctx, &stats_, std::move(in)));
  LDV_ASSIGN_OR_RETURN(Batch out, ProcessRows(ctx, std::move(rows)));
  return WrapRows(std::move(out));
}

}  // namespace ldv::exec
