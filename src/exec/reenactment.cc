#include "exec/reenactment.h"

#include "exec/expression.h"

namespace ldv::exec {

using storage::RowVersion;
using storage::Table;
using storage::Tuple;
using storage::TupleVid;
using storage::Value;

namespace {

/// Binds an expression against `table`'s scope (columns + prov pseudo
/// columns, qualified by `alias`).
Result<std::unique_ptr<BoundExpr>> BindAgainstTable(const sql::Expr& expr,
                                                    const Table& table,
                                                    const std::string& alias) {
  Scope scope;
  for (const storage::Column& c : table.schema().columns()) {
    scope.Add({alias, c.name, c.type, /*hidden=*/false});
  }
  scope.Add({alias, std::string(storage::kProvRowIdColumn),
             storage::ValueType::kInt64, /*hidden=*/true});
  scope.Add({alias, std::string(storage::kProvVersionColumn),
             storage::ValueType::kInt64, /*hidden=*/true});
  scope.Add({alias, std::string(storage::kProvUsedByColumn),
             storage::ValueType::kInt64, /*hidden=*/true});
  scope.Add({alias, std::string(storage::kProvProcessColumn),
             storage::ValueType::kInt64, /*hidden=*/true});
  return BindExpr(expr, scope);
}

Tuple RowWithProvColumns(const RowVersion& row) {
  Tuple values = row.values;
  values.push_back(Value::Int(row.rowid));
  values.push_back(Value::Int(row.version));
  values.push_back(Value::Int(row.used_by_query));
  values.push_back(Value::Int(row.used_by_process));
  return values;
}

/// Finds an equality between an indexed column of `table` and a literal in
/// the top-level AND structure of `where`; returns (column, probe value) or
/// column -1.
std::pair<int, Value> FindIndexProbe(const Table& table,
                                     const sql::Expr* where) {
  if (where == nullptr) return {-1, Value::Null()};
  if (where->kind == sql::ExprKind::kBinary &&
      where->binary_op == sql::BinaryOp::kAnd) {
    auto left = FindIndexProbe(table, where->children[0].get());
    if (left.first >= 0) return left;
    return FindIndexProbe(table, where->children[1].get());
  }
  if (where->kind != sql::ExprKind::kBinary ||
      where->binary_op != sql::BinaryOp::kEq) {
    return {-1, Value::Null()};
  }
  for (int side = 0; side < 2; ++side) {
    const sql::Expr* col = where->children[static_cast<size_t>(side)].get();
    const sql::Expr* lit =
        where->children[static_cast<size_t>(1 - side)].get();
    if (col->kind != sql::ExprKind::kColumnRef ||
        lit->kind != sql::ExprKind::kLiteral) {
      continue;
    }
    int idx = table.schema().IndexOf(col->column);
    if (idx < 0 || !table.HasIndexOn(idx)) continue;
    Result<Value> coerced =
        exec::CoerceValue(lit->literal, table.schema().column(idx).type);
    if (!coerced.ok()) continue;
    return {idx, std::move(coerced).value()};
  }
  return {-1, Value::Null()};
}

/// Phase 1 of reenactment: evaluate the WHERE predicate against the
/// pre-state and snapshot the matched versions. `probe` narrows the visited
/// rows through the hash index when available.
Result<std::vector<RowVersion>> MatchPreState(
    Table* table, const BoundExpr* where,
    const std::pair<int, Value>& probe) {
  std::vector<RowVersion> matched;
  auto consider = [&](const RowVersion& row) -> Status {
    if (where != nullptr) {
      Tuple values = RowWithProvColumns(row);
      LDV_ASSIGN_OR_RETURN(Value keep, EvalExpr(*where, values));
      if (!keep.IsTruthy()) return Status::Ok();
    }
    matched.push_back(row);
    return Status::Ok();
  };
  if (probe.first >= 0) {
    for (storage::RowId rowid : table->IndexLookup(probe.first, probe.second)) {
      const RowVersion* row = table->Find(rowid);
      if (row != nullptr) LDV_RETURN_IF_ERROR(consider(*row));
    }
    return matched;
  }
  for (const RowVersion& row : table->rows()) {
    if (row.deleted) continue;
    LDV_RETURN_IF_ERROR(consider(row));
  }
  return matched;
}

/// Charges the reenactment pre-state snapshot (the version-archive capture
/// of every matched row) against the statement's memory budget.
Status ChargePreState(const ExecOptions& options,
                      const std::vector<RowVersion>& matched) {
  if (options.governor == nullptr) return Status::Ok();
  size_t bytes = 0;
  for (const RowVersion& row : matched) {
    bytes += sizeof(RowVersion) + ApproxTupleBytes(row.values);
  }
  return options.governor->ChargeMemory(bytes);
}

}  // namespace

Result<ResultSet> ExecUpdate(storage::Database* db,
                             const sql::UpdateStmt& update,
                             const sql::Expr* where_expr, bool provenance,
                             const ExecOptions& options) {
  Table* table = db->FindTable(update.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + update.table);
  }
  const std::string& alias =
      update.alias.empty() ? update.table : update.alias;

  std::unique_ptr<BoundExpr> where;
  if (where_expr != nullptr) {
    LDV_ASSIGN_OR_RETURN(where, BindAgainstTable(*where_expr, *table, alias));
  }
  // Bind SET expressions (they may reference old column values).
  std::vector<std::pair<int, std::unique_ptr<BoundExpr>>> sets;
  for (const auto& [col_name, expr] : update.assignments) {
    int idx = table->schema().IndexOf(col_name);
    if (idx < 0) {
      return Status::NotFound(update.table + ": no column " + col_name);
    }
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                         BindAgainstTable(*expr, *table, alias));
    sets.emplace_back(idx, std::move(bound));
  }

  // Reenactment: retrieve the statement's provenance (the matched pre-state
  // versions) BEFORE mutating, per §VII-B.
  LDV_ASSIGN_OR_RETURN(
      std::vector<RowVersion> matched,
      MatchPreState(table, where.get(), FindIndexProbe(*table, where_expr)));
  LDV_RETURN_IF_ERROR(ChargePreState(options, matched));

  ResultSet result;
  const int64_t stmt_seq = db->NextStatementSeq();
  for (const RowVersion& old_row : matched) {
    Tuple old_with_prov = RowWithProvColumns(old_row);
    Tuple new_values = old_row.values;
    for (const auto& [idx, expr] : sets) {
      LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, old_with_prov));
      LDV_ASSIGN_OR_RETURN(
          new_values[static_cast<size_t>(idx)],
          CoerceValue(std::move(v),
                      table->schema().column(idx).type));
    }
    LDV_RETURN_IF_ERROR(
        table->Update(old_row.rowid, std::move(new_values), stmt_seq));
    DmlRecord rec;
    rec.kind = DmlRecord::Kind::kUpdated;
    rec.table = table->name();
    rec.vid = TupleVid{table->id(), old_row.rowid, stmt_seq};
    rec.prior = TupleVid{table->id(), old_row.rowid, old_row.version};
    rec.has_prior = true;
    result.dml.push_back(rec);
    if (provenance) {
      ProvTupleRecord prov;
      prov.vid = rec.prior;
      prov.table = table->name();
      prov.values = old_row.values;
      result.prov_tuples.push_back(std::move(prov));
    }
  }
  result.affected = static_cast<int64_t>(matched.size());
  result.has_provenance = provenance;
  return result;
}

Result<ResultSet> ExecDelete(storage::Database* db, const sql::DeleteStmt& del,
                             const sql::Expr* where_expr, bool provenance,
                             const ExecOptions& options) {
  Table* table = db->FindTable(del.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + del.table);
  }
  const std::string& alias = del.alias.empty() ? del.table : del.alias;
  std::unique_ptr<BoundExpr> where;
  if (where_expr != nullptr) {
    LDV_ASSIGN_OR_RETURN(where, BindAgainstTable(*where_expr, *table, alias));
  }
  LDV_ASSIGN_OR_RETURN(
      std::vector<RowVersion> matched,
      MatchPreState(table, where.get(), FindIndexProbe(*table, where_expr)));
  LDV_RETURN_IF_ERROR(ChargePreState(options, matched));

  ResultSet result;
  const int64_t stmt_seq = db->NextStatementSeq();
  for (const RowVersion& old_row : matched) {
    LDV_RETURN_IF_ERROR(table->Delete(old_row.rowid, stmt_seq));
    DmlRecord rec;
    rec.kind = DmlRecord::Kind::kDeleted;
    rec.table = table->name();
    rec.vid = TupleVid{table->id(), old_row.rowid, old_row.version};
    rec.prior = rec.vid;
    rec.has_prior = true;
    result.dml.push_back(rec);
    if (provenance) {
      ProvTupleRecord prov;
      prov.vid = rec.prior;
      prov.table = table->name();
      prov.values = old_row.values;
      result.prov_tuples.push_back(std::move(prov));
    }
  }
  result.affected = static_cast<int64_t>(matched.size());
  result.has_provenance = provenance;
  return result;
}

}  // namespace ldv::exec
