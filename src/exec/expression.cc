#include "exec/expression.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace ldv::exec {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;
using storage::Value;
using storage::ValueType;

Scope Scope::Concat(const Scope& left, const Scope& right) {
  Scope out = left;
  for (const ScopeColumn& c : right.columns()) out.Add(c);
  return out;
}

Result<int> Scope::Resolve(const std::string& qualifier,
                           const std::string& name) const {
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ScopeColumn& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
      continue;
    }
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column: " + qualifier +
                                     (qualifier.empty() ? "" : ".") + name);
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound("unknown column: " +
                            (qualifier.empty() ? name : qualifier + "." + name));
  }
  return found;
}

bool Scope::CanResolve(const std::string& qualifier,
                       const std::string& name) const {
  return Resolve(qualifier, name).ok();
}

namespace {

ValueType ArithmeticResultType(BinaryOp op, ValueType a, ValueType b) {
  if (op == BinaryOp::kDiv) return ValueType::kDouble;
  if (a == ValueType::kInt64 && b == ValueType::kInt64) {
    return ValueType::kInt64;
  }
  return ValueType::kDouble;
}

Result<ValueType> InferFuncType(const std::string& name,
                                const std::vector<std::unique_ptr<BoundExpr>>&
                                    args) {
  if (name == "COUNT") return ValueType::kInt64;
  if (name == "AVG") return ValueType::kDouble;
  if (name == "SUM" || name == "MIN" || name == "MAX" || name == "ABS" ||
      name == "COALESCE") {
    if (args.empty()) {
      return Status::InvalidArgument(name + " needs an argument");
    }
    return args[0]->result_type;
  }
  if (name == "UPPER" || name == "LOWER" || name == "SUBSTR") {
    return ValueType::kString;
  }
  if (name == "LENGTH") return ValueType::kInt64;
  return Status::NotSupported("unknown function: " + name);
}

}  // namespace

Result<std::unique_ptr<BoundExpr>> BindExpr(const Expr& expr,
                                            const Scope& scope) {
  auto out = std::make_unique<BoundExpr>();
  out->kind = expr.kind;
  out->binary_op = expr.binary_op;
  out->unary_op = expr.unary_op;
  out->negated = expr.negated;
  for (const auto& child : expr.children) {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                         BindExpr(*child, scope));
    out->children.push_back(std::move(bound));
  }
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out->literal = expr.literal;
      out->result_type = expr.literal.type();
      break;
    case ExprKind::kColumnRef: {
      LDV_ASSIGN_OR_RETURN(out->column_index,
                           scope.Resolve(expr.table, expr.column));
      out->result_type = scope.column(out->column_index).type;
      break;
    }
    case ExprKind::kStar:
      return Status::InvalidArgument(
          "'*' is only valid in a select list or COUNT(*)");
    case ExprKind::kUnary:
      out->result_type = (expr.unary_op == UnaryOp::kNeg)
                             ? out->children[0]->result_type
                             : ValueType::kInt64;
      break;
    case ExprKind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          out->result_type =
              ArithmeticResultType(expr.binary_op,
                                   out->children[0]->result_type,
                                   out->children[1]->result_type);
          break;
        case BinaryOp::kConcat:
          out->result_type = ValueType::kString;
          break;
        default:
          out->result_type = ValueType::kInt64;  // boolean as int
      }
      break;
    case ExprKind::kBetween:
    case ExprKind::kInList:
      out->result_type = ValueType::kInt64;
      break;
    case ExprKind::kFuncCall: {
      out->func_name = expr.name;
      if (sql::IsAggregateFunction(expr.name)) {
        return Status::InvalidArgument(
            "aggregate " + expr.name +
            " is not allowed in this context (planner must rewrite it)");
      }
      LDV_ASSIGN_OR_RETURN(out->result_type,
                           InferFuncType(expr.name, out->children));
      break;
    }
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      // Subqueries are evaluated (flattened to literals) by the executor
      // before binding; correlated subqueries are not supported.
      return Status::NotSupported(
          "subquery was not flattened — correlated subqueries or subqueries "
          "in this position are not supported: " + expr.ToString());
    case ExprKind::kParameter:
      if (expr.param_index < 0) {
        return Status::InvalidArgument("unnumbered parameter placeholder");
      }
      // The plan cache stamps param_type per execution's parameter-type
      // signature, so the inferred result type matches the same statement
      // with the literal inlined (NULL params bind as kNull, exactly like a
      // NULL literal).
      out->column_index = expr.param_index;
      out->result_type = expr.param_type;
      break;
  }
  return out;
}

namespace {

Result<Value> EvalBinary(const BoundExpr& expr, const storage::Tuple& row,
                         const storage::Tuple* params) {
  const BinaryOp op = expr.binary_op;
  // Short-circuit logic first.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    LDV_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row, params));
    const bool l = lhs.IsTruthy();
    if (op == BinaryOp::kAnd && !l) return Value::Int(0);
    if (op == BinaryOp::kOr && l) return Value::Int(1);
    LDV_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row, params));
    return Value::Int(rhs.IsTruthy() ? 1 : 0);
  }
  LDV_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row, params));
  LDV_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row, params));
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      // SQL three-valued logic collapses to NULL, which WHERE treats as
      // not-qualifying.
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      LDV_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      bool v = false;
      switch (op) {
        case BinaryOp::kEq:
          v = cmp == 0;
          break;
        case BinaryOp::kNe:
          v = cmp != 0;
          break;
        case BinaryOp::kLt:
          v = cmp < 0;
          break;
        case BinaryOp::kLe:
          v = cmp <= 0;
          break;
        case BinaryOp::kGt:
          v = cmp > 0;
          break;
        case BinaryOp::kGe:
          v = cmp >= 0;
          break;
        default:
          break;
      }
      return Value::Int(v ? 1 : 0);
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (lhs.type() == ValueType::kString || rhs.type() == ValueType::kString) {
        return Status::InvalidArgument("arithmetic on a string value");
      }
      if (op == BinaryOp::kDiv) {
        double denominator = rhs.AsDouble();
        if (denominator == 0) return Value::Null();  // SQL: error; we yield NULL
        return Value::Real(lhs.AsDouble() / denominator);
      }
      if (op == BinaryOp::kMod) {
        if (lhs.type() != ValueType::kInt64 || rhs.type() != ValueType::kInt64) {
          return Status::InvalidArgument("%% requires integers");
        }
        if (rhs.AsInt() == 0) return Value::Null();
        return Value::Int(lhs.AsInt() % rhs.AsInt());
      }
      if (lhs.type() == ValueType::kInt64 && rhs.type() == ValueType::kInt64) {
        int64_t a = lhs.AsInt();
        int64_t b = rhs.AsInt();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int(a + b);
          case BinaryOp::kSub:
            return Value::Int(a - b);
          case BinaryOp::kMul:
            return Value::Int(a * b);
          default:
            break;
        }
      }
      double a = lhs.AsDouble();
      double b = rhs.AsDouble();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Real(a + b);
        case BinaryOp::kSub:
          return Value::Real(a - b);
        case BinaryOp::kMul:
          return Value::Real(a * b);
        default:
          break;
      }
      return Status::Internal("unreachable arithmetic");
    }
    case BinaryOp::kLike:
    case BinaryOp::kNotLike: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (lhs.type() != ValueType::kString ||
          rhs.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE requires strings");
      }
      bool m = SqlLikeMatch(lhs.AsString(), rhs.AsString());
      if (op == BinaryOp::kNotLike) m = !m;
      return Value::Int(m ? 1 : 0);
    }
    case BinaryOp::kConcat: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Str(lhs.ToText() + rhs.ToText());
    }
    default:
      return Status::Internal("unreachable binary op");
  }
}

Result<Value> EvalFunc(const BoundExpr& expr, const storage::Tuple& row,
                       const storage::Tuple* params) {
  const std::string& name = expr.func_name;
  if (name == "COALESCE") {
    for (const auto& arg : expr.children) {
      LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, row, params));
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (expr.children.size() != 1 && name != "SUBSTR") {
    return Status::InvalidArgument(name + " takes one argument");
  }
  LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row, params));
  if (v.is_null()) return Value::Null();
  if (name == "UPPER") return Value::Str(ToUpper(v.AsString()));
  if (name == "LOWER") return Value::Str(ToLower(v.AsString()));
  if (name == "LENGTH") {
    return Value::Int(static_cast<int64_t>(v.AsString().size()));
  }
  if (name == "ABS") {
    if (v.type() == ValueType::kInt64) {
      return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
    }
    return Value::Real(std::fabs(v.AsDouble()));
  }
  if (name == "SUBSTR") {
    if (expr.children.size() < 2 || expr.children.size() > 3) {
      return Status::InvalidArgument("SUBSTR(text, start[, len])");
    }
    LDV_ASSIGN_OR_RETURN(Value start_v, EvalExpr(*expr.children[1], row, params));
    int64_t start = start_v.AsInt();  // 1-based
    const std::string& s = v.AsString();
    if (start < 1) start = 1;
    size_t begin = static_cast<size_t>(start - 1);
    if (begin >= s.size()) return Value::Str("");
    size_t len = s.size() - begin;
    if (expr.children.size() == 3) {
      LDV_ASSIGN_OR_RETURN(Value len_v, EvalExpr(*expr.children[2], row, params));
      if (len_v.AsInt() < 0) return Value::Str("");
      len = std::min<size_t>(len, static_cast<size_t>(len_v.AsInt()));
    }
    return Value::Str(s.substr(begin, len));
  }
  return Status::NotSupported("unknown function: " + name);
}

}  // namespace

Result<Value> EvalExpr(const BoundExpr& expr, const storage::Tuple& row,
                       const storage::Tuple* params) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kParameter: {
      if (params == nullptr || expr.column_index < 0 ||
          static_cast<size_t>(expr.column_index) >= params->size()) {
        return Status::InvalidArgument(
            "parameter $" + std::to_string(expr.column_index + 1) +
            " has no bound value");
      }
      return (*params)[static_cast<size_t>(expr.column_index)];
    }
    case ExprKind::kColumnRef: {
      size_t i = static_cast<size_t>(expr.column_index);
      if (i >= row.size()) {
        return Status::Internal("column index out of range");
      }
      return row[i];
    }
    case ExprKind::kStar:
      return Status::Internal("cannot evaluate '*'");
    case ExprKind::kUnary: {
      LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row, params));
      switch (expr.unary_op) {
        case UnaryOp::kNot:
          if (v.is_null()) return Value::Null();
          return Value::Int(v.IsTruthy() ? 0 : 1);
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.type() == ValueType::kInt64) return Value::Int(-v.AsInt());
          if (v.type() == ValueType::kDouble) return Value::Real(-v.AsDouble());
          return Status::InvalidArgument("cannot negate a string");
        case UnaryOp::kIsNull:
          return Value::Int(v.is_null() ? 1 : 0);
        case UnaryOp::kIsNotNull:
          return Value::Int(v.is_null() ? 0 : 1);
      }
      return Status::Internal("unreachable unary op");
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, row, params);
    case ExprKind::kBetween: {
      LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row, params));
      LDV_ASSIGN_OR_RETURN(Value lo, EvalExpr(*expr.children[1], row, params));
      LDV_ASSIGN_OR_RETURN(Value hi, EvalExpr(*expr.children[2], row, params));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      LDV_ASSIGN_OR_RETURN(int cmp_lo, v.Compare(lo));
      LDV_ASSIGN_OR_RETURN(int cmp_hi, v.Compare(hi));
      bool in_range = cmp_lo >= 0 && cmp_hi <= 0;
      if (expr.negated) in_range = !in_range;
      return Value::Int(in_range ? 1 : 0);
    }
    case ExprKind::kInList: {
      LDV_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row, params));
      if (v.is_null()) return Value::Null();
      for (size_t i = 1; i < expr.children.size(); ++i) {
        LDV_ASSIGN_OR_RETURN(Value item, EvalExpr(*expr.children[i], row, params));
        if (item.is_null()) continue;
        LDV_ASSIGN_OR_RETURN(int cmp, v.Compare(item));
        if (cmp == 0) return Value::Int(expr.negated ? 0 : 1);
      }
      return Value::Int(expr.negated ? 1 : 0);
    }
    case ExprKind::kFuncCall:
      return EvalFunc(expr, row, params);
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      return Status::Internal("subquery reached evaluation unbound");
  }
  return Status::Internal("unreachable expression kind");
}

Result<Value> EvalConstExpr(const Expr& expr) {
  Scope empty;
  LDV_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound,
                       BindExpr(expr, empty));
  storage::Tuple no_row;
  return EvalExpr(*bound, no_row);
}

void CollectColumnRefs(const Expr& expr,
                       std::vector<std::pair<std::string, std::string>>* out) {
  if (expr.kind == ExprKind::kColumnRef) {
    out->emplace_back(expr.table, expr.column);
  }
  for (const auto& child : expr.children) CollectColumnRefs(*child, out);
}

Result<Value> CoerceValue(Value v, ValueType type) {
  if (v.is_null()) return v;
  if (v.type() == type) return v;
  if (type == ValueType::kDouble && v.type() == ValueType::kInt64) {
    return Value::Real(static_cast<double>(v.AsInt()));
  }
  if (type == ValueType::kInt64 && v.type() == ValueType::kDouble) {
    double d = v.AsDouble();
    if (d == static_cast<double>(static_cast<int64_t>(d))) {
      return Value::Int(static_cast<int64_t>(d));
    }
    return Status::InvalidArgument("cannot store non-integral " + v.ToText() +
                                   " in an INT column");
  }
  return Status::InvalidArgument(
      "cannot coerce " + std::string(ValueTypeName(v.type())) + " to " +
      std::string(ValueTypeName(type)));
}

}  // namespace ldv::exec
