#include "util/rng.h"

#include "common/logging.h"

namespace ldv {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  LDV_CHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace ldv
