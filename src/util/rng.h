#ifndef LDV_UTIL_RNG_H_
#define LDV_UTIL_RNG_H_

#include <cstdint>

namespace ldv {

/// Deterministic xoshiro256** pseudo-random generator. All workload
/// generation (TPC-H data, experiment parameters) is seeded so that audit and
/// replay observe identical request streams.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace ldv

#endif  // LDV_UTIL_RNG_H_
