#ifndef LDV_UTIL_CSV_H_
#define LDV_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ldv {

/// RFC-4180-style CSV with '|' unsupported characters quoted. Used for the
/// relevant-tuple files inside server-included packages (paper §VII-D) and
/// for TPC-H bulk loads.
class CsvWriter {
 public:
  /// Appends one record; fields are quoted when they contain separator,
  /// quote, or newline characters.
  void AppendRow(const std::vector<std::string>& fields);

  /// Buffered output so far.
  const std::string& data() const { return data_; }
  std::string TakeData() { return std::move(data_); }

  /// Number of rows appended.
  int64_t row_count() const { return rows_; }

 private:
  std::string data_;
  int64_t rows_ = 0;
};

/// Parses a full CSV document into rows of fields.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

}  // namespace ldv

#endif  // LDV_UTIL_CSV_H_
