#include "util/csv.h"

namespace ldv {
namespace {

bool NeedsQuoting(std::string_view field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

void CsvWriter::AppendRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) data_.push_back(',');
    const std::string& f = fields[i];
    if (NeedsQuoting(f)) {
      data_.push_back('"');
      for (char c : f) {
        if (c == '"') data_.push_back('"');
        data_.push_back(c);
      }
      data_.push_back('"');
    } else {
      data_ += f;
    }
  }
  data_.push_back('\n');
  ++rows_;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else {
      switch (c) {
        case '"':
          if (!field.empty()) {
            return Status::ParseError("quote inside unquoted CSV field");
          }
          in_quotes = true;
          field_started = true;
          ++i;
          break;
        case ',':
          end_field();
          ++i;
          break;
        case '\r':
          ++i;
          break;
        case '\n':
          end_row();
          ++i;
          break;
        default:
          field.push_back(c);
          field_started = true;
          ++i;
      }
    }
  }
  if (in_quotes) return Status::ParseError("unterminated CSV quote");
  if (!field.empty() || field_started || !row.empty()) end_row();
  return rows;
}

}  // namespace ldv
