#ifndef LDV_UTIL_CRC32_H_
#define LDV_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ldv {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum appended to
/// persisted `.tbl` payloads and recorded in catalog.json so a truncated or
/// bit-flipped data file is detected at load time instead of silently
/// deserializing as wrong data.

/// One-shot checksum of `data`.
uint32_t Crc32(std::string_view data);

/// Incremental form: feed `crc` the previous return value (0 to start).
/// Crc32(a + b) == Crc32Update(Crc32(a), b).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t n);

}  // namespace ldv

#endif  // LDV_UTIL_CRC32_H_
