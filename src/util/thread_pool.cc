#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace ldv {

/// One RunTasks submission: the task list plus claim/done bookkeeping.
/// Shared-ptr'd so a worker finishing the last task after the submitter
/// already returned keeps the batch alive.
struct ThreadPool::TaskBatch {
  std::vector<std::function<Status()>> tasks;
  std::vector<Status> results;
  /// Next unclaimed task index; claims are atomic so workers and the
  /// submitter never run the same task twice.
  std::atomic<size_t> next{0};
  /// Worker slots still available (max_concurrency minus the submitter and
  /// the workers currently helping). Guarded by the pool's mu_.
  int worker_slots = 0;

  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;

  bool drained() const {
    return next.load(std::memory_order_relaxed) >= tasks.size();
  }
};

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::RunOne(const std::shared_ptr<TaskBatch>& batch) {
  size_t index = batch->next.fetch_add(1, std::memory_order_relaxed);
  if (index >= batch->tasks.size()) return false;
  Status status;
  try {
    status = batch->tasks[index]();
  } catch (const std::exception& e) {
    status = Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    status = Status::Internal("task threw a non-exception object");
  }
  std::lock_guard<std::mutex> lock(batch->mu);
  batch->results[index] = std::move(status);
  if (++batch->completed == batch->tasks.size()) {
    batch->done_cv.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<TaskBatch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& b : pending_) {
          if (b->worker_slots > 0 && !b->drained()) return true;
        }
        return false;
      });
      if (stopping_) return;
      for (const auto& b : pending_) {
        if (b->worker_slots > 0 && !b->drained()) {
          batch = b;
          --batch->worker_slots;
          break;
        }
      }
      if (batch == nullptr) continue;
    }
    while (RunOne(batch)) {
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++batch->worker_slots;
      auto it = std::find(pending_.begin(), pending_.end(), batch);
      if (it != pending_.end() && batch->drained()) pending_.erase(it);
    }
    // A freed slot may unblock a waiter on a capped batch.
    work_cv_.notify_one();
  }
}

Status ThreadPool::RunTasks(std::vector<std::function<Status()>> tasks,
                            int max_concurrency) {
  if (tasks.empty()) return Status::Ok();
  if (tasks.size() == 1 || max_concurrency == 1) {
    for (auto& task : tasks) {
      // Serial degeneration still runs everything (batch semantics), but
      // reports the first error, which is also the lowest-indexed one.
      Status status = task();
      if (!status.ok()) {
        return status;
      }
    }
    return Status::Ok();
  }
  auto batch = std::make_shared<TaskBatch>();
  batch->results.resize(tasks.size());
  batch->tasks = std::move(tasks);
  // The submitter occupies one concurrency slot itself.
  const int cap = max_concurrency <= 0 ? num_threads() + 1 : max_concurrency;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->worker_slots =
        std::min(cap - 1, static_cast<int>(batch->tasks.size()));
    pending_.push_back(batch);
  }
  work_cv_.notify_all();
  // The submitter works too: with all workers busy elsewhere the batch
  // still makes progress, and the common single-query case uses every core
  // rather than num_threads - 1.
  while (RunOne(batch)) {
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(pending_.begin(), pending_.end(), batch);
    if (it != pending_.end()) pending_.erase(it);
  }
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait(
        lock, [&] { return batch->completed == batch->tasks.size(); });
  }
  for (Status& status : batch->results) {
    if (!status.ok()) return std::move(status);
  }
  return Status::Ok();
}

Status ThreadPool::ParallelFor(
    size_t n, size_t chunk,
    const std::function<Status(size_t, size_t, size_t)>& fn,
    int max_concurrency) {
  if (n == 0) return Status::Ok();
  if (chunk == 0) chunk = 1;
  const size_t num_chunks = (n + chunk - 1) / chunk;
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t begin = c * chunk;
    size_t end = std::min(n, begin + chunk);
    tasks.push_back([&fn, begin, end, c] { return fn(begin, end, c); });
  }
  return RunTasks(std::move(tasks), max_concurrency);
}

namespace {

std::mutex g_shared_mu;
ThreadPool* g_shared_pool = nullptr;  // leaked: workers may outlive main
int g_default_dop = 0;                // 0 = not yet resolved

int HardwareDop() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool* ThreadPool::Shared() {
  std::lock_guard<std::mutex> lock(g_shared_mu);
  if (g_default_dop == 0) g_default_dop = HardwareDop();
  if (g_shared_pool == nullptr) {
    g_shared_pool = new ThreadPool(g_default_dop);
  }
  return g_shared_pool;
}

void ThreadPool::SetDefaultDop(int n) {
  std::lock_guard<std::mutex> lock(g_shared_mu);
  g_default_dop = n > 0 ? n : HardwareDop();
  if (g_shared_pool != nullptr &&
      g_shared_pool->num_threads() != g_default_dop) {
    delete g_shared_pool;
    g_shared_pool = nullptr;  // recreated on next Shared()
  }
}

int ThreadPool::default_dop() {
  std::lock_guard<std::mutex> lock(g_shared_mu);
  if (g_default_dop == 0) g_default_dop = HardwareDop();
  return g_default_dop;
}

}  // namespace ldv
