#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ldv {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("not an integer: '" + std::string(s) + "'");
  }
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty number");
  std::string buf(s);
  char* end = nullptr;
  double d = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("not a number: '" + buf + "'");
  }
  return d;
}

bool SqlLikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking over the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string ZeroPad(int64_t value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(static_cast<size_t>(width) - digits.size(), '0') + digits;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(len));
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace ldv
