#include "util/serde.h"

#include <cstring>

namespace ldv {

void BufferWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BufferWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BufferWriter::PutUvarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void BufferWriter::PutVarint(int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutUvarint(zz);
}

void BufferWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BufferWriter::PutString(std::string_view s) {
  PutUvarint(s.size());
  buf_.append(s.data(), s.size());
}

Result<uint8_t> BufferReader::GetU8() {
  if (pos_ >= data_.size()) return Status::IOError("serde: truncated u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BufferReader::GetU32() {
  if (pos_ + 4 > data_.size()) return Status::IOError("serde: truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BufferReader::GetU64() {
  if (pos_ + 8 > data_.size()) return Status::IOError("serde: truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> BufferReader::GetUvarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return Status::IOError("serde: truncated varint");
    uint8_t b = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 64) return Status::IOError("serde: varint overflow");
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<int64_t> BufferReader::GetVarint() {
  LDV_ASSIGN_OR_RETURN(uint64_t zz, GetUvarint());
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

Result<double> BufferReader::GetDouble() {
  LDV_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BufferReader::GetString() {
  LDV_ASSIGN_OR_RETURN(uint64_t len, GetUvarint());
  if (pos_ + len > data_.size()) {
    return Status::IOError("serde: truncated string");
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<bool> BufferReader::GetBool() {
  LDV_ASSIGN_OR_RETURN(uint8_t b, GetU8());
  return b != 0;
}

}  // namespace ldv
