#include "util/fsutil.h"

#include <fcntl.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/fault.h"

namespace ldv {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data;
  in.seekg(0, std::ios::end);
  std::streampos size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  data.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (!in) return Status::IOError("short read: " + path);
  return data;
}

namespace {

Status EnsureParentDirs(const std::string& path) {
  fs::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("mkdir " + p.parent_path().string() + ": " +
                             ec.message());
    }
  }
  return Status::Ok();
}

}  // namespace

Status WriteStringToFile(const std::string& path, std::string_view data) {
  LDV_FAULT_POINT("fs.write");
  LDV_RETURN_IF_ERROR(EnsureParentDirs(path));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  LDV_FAULT_POINT("fs.write");
  LDV_RETURN_IF_ERROR(EnsureParentDirs(path));
  // Unique temp name in the same directory so the final rename cannot cross
  // filesystems; pid + counter keeps concurrent writers apart.
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  auto fail = [&](const std::string& what) {
    Status status = Status::IOError(what + " " + tmp + ": " +
                                    std::strerror(errno));
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return fail("fsync");
  if (::close(fd) != 0) {
    fd = -1;
    return fail("close");
  }
  fd = -1;
  Status injected = CheckFault("fs.rename");
  if (!injected.ok()) {
    ::unlink(tmp.c_str());
    return injected;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) return fail("rename to");
  // Durability of the rename itself: fsync the containing directory
  // (best-effort — some filesystems refuse O_RDONLY directory fds).
  fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    int dirfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
  return Status::Ok();
}

Status AppendStringToFile(const std::string& path, std::string_view data) {
  LDV_RETURN_IF_ERROR(EnsureParentDirs(path));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open for append: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short append: " + path);
  return Status::Ok();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::Ok();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("rm -r " + path + ": " + ec.message());
  return Status::Ok();
}

Status CopyFile(const std::string& from, const std::string& to) {
  LDV_RETURN_IF_ERROR(EnsureParentDirs(to));
  std::error_code ec;
  fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return Status::IOError("copy " + from + " -> " + to + ": " + ec.message());
  }
  return Status::Ok();
}

Status CopyTree(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::create_directories(to, ec);
  if (ec) return Status::IOError("mkdir " + to + ": " + ec.message());
  fs::copy(from, to,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing,
           ec);
  if (ec) {
    return Status::IOError("copy -r " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

bool DirExists(const std::string& path) {
  std::error_code ec;
  return fs::is_directory(path, ec);
}

Result<int64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uintmax_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("stat " + path + ": " + ec.message());
  return static_cast<int64_t>(size);
}

int64_t TreeSize(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return 0;
  if (fs::is_regular_file(path, ec)) {
    uintmax_t size = fs::file_size(path, ec);
    return ec ? 0 : static_cast<int64_t>(size);
  }
  int64_t total = 0;
  fs::recursive_directory_iterator it(path, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      uintmax_t size = it->file_size(ec);
      if (!ec) total += static_cast<int64_t>(size);
    }
  }
  return total;
}

Result<std::vector<std::string>> ListTree(const std::string& path) {
  std::vector<std::string> out;
  std::error_code ec;
  if (!fs::exists(path, ec)) return out;
  fs::recursive_directory_iterator it(path, ec), end;
  if (ec) return Status::IOError("list " + path + ": " + ec.message());
  for (; it != end; it.increment(ec)) {
    if (ec) return Status::IOError("list " + path + ": " + ec.message());
    if (it->is_regular_file(ec)) {
      out.push_back(fs::relative(it->path(), path, ec).string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

std::string SelfExeDir() {
  std::error_code ec;
  fs::path exe = fs::read_symlink("/proc/self/exe", ec);
  if (ec) return "";
  return exe.parent_path().string();
}

std::string FindLdvServerBinary() {
  std::string dir = SelfExeDir();
  while (!dir.empty() && dir != "/") {
    std::string candidate = dir + "/tools/ldv_server";
    if (FileExists(candidate)) return candidate;
    candidate = dir + "/ldv_server";
    if (FileExists(candidate)) return candidate;
    fs::path parent = fs::path(dir).parent_path();
    if (parent.string() == dir) break;
    dir = parent.string();
  }
  return "";
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  std::string tmpl = (fs::temp_directory_path() / (prefix + "XXXXXX")).string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  if (dir == nullptr) {
    return Status::IOError(std::string("mkdtemp: ") + std::strerror(errno));
  }
  return std::string(dir);
}

}  // namespace ldv
