#ifndef LDV_UTIL_THREAD_POOL_H_
#define LDV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace ldv {

/// Fixed-size worker pool for intra-query parallelism (morsel-driven
/// execution, DESIGN.md §10). Threads are started once and block on a
/// condition variable while no work is queued, so an idle pool costs
/// nothing on the query path.
///
/// Error contract: every task returns a Status. A batch submission
/// (RunTasks / ParallelFor) always runs *all* tasks to completion, then
/// reports the non-OK Status of the lowest-indexed failed task — the same
/// error a serial left-to-right loop would have surfaced first, so error
/// behavior is deterministic regardless of scheduling. A task that throws
/// is converted to Status::Internal instead of tearing down the process.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs every task (possibly concurrently) and blocks until all finish.
  /// The calling thread participates, so a pool is never a bottleneck for
  /// a single submission and `tasks.size() == 1` degenerates to a plain
  /// call. At most `max_concurrency` threads (including the caller) touch
  /// the batch; 0 means no cap. Returns the Status of the lowest-indexed
  /// failed task.
  Status RunTasks(std::vector<std::function<Status()>> tasks,
                  int max_concurrency = 0);

  /// Chunked parallel-for over [0, n): invokes
  /// `fn(chunk_begin, chunk_end, chunk_index)` for consecutive chunks of
  /// `chunk` items. Chunk boundaries depend only on (n, chunk) — never on
  /// thread count — so any decomposition-sensitive computation is
  /// reproducible across degrees of parallelism.
  Status ParallelFor(size_t n, size_t chunk,
                     const std::function<Status(size_t, size_t, size_t)>& fn,
                     int max_concurrency = 0);

  /// The process-wide pool shared by query execution. Created on first use
  /// with `default_dop()` threads.
  static ThreadPool* Shared();

  /// Sets the default degree of parallelism (the `--threads` flag): the
  /// shared pool's size and the DOP queries run at when ExecOptions does
  /// not override it. `n <= 0` selects the hardware concurrency. Must be
  /// called before queries run concurrently (process startup); an existing
  /// shared pool is replaced.
  static void SetDefaultDop(int n);

  /// Current default degree of parallelism (>= 1).
  static int default_dop();

 private:
  struct TaskBatch;

  void WorkerLoop();
  /// Runs one pending task of `batch`; returns false when none remain.
  static bool RunOne(const std::shared_ptr<TaskBatch>& batch);

  std::mutex mu_;
  std::condition_variable work_cv_;
  bool stopping_ = false;
  /// Batches with unclaimed tasks, oldest first.
  std::vector<std::shared_ptr<TaskBatch>> pending_;
  std::vector<std::thread> workers_;
};

}  // namespace ldv

#endif  // LDV_UTIL_THREAD_POOL_H_
