#ifndef LDV_UTIL_FSUTIL_H_
#define LDV_UTIL_FSUTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ldv {

/// Filesystem helpers used by packaging and the virtual file system.
/// All paths are host paths; callers are responsible for sandboxing.

/// Reads the whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (creates/truncates) the file with `data`, creating parent dirs.
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Crash-safe write: the data goes to a unique temp file in the target's
/// directory, is flushed with fsync(2), and is renamed over `path` (with a
/// best-effort directory fsync). A crash or injected fault at any step
/// leaves either the old file or no file — never a torn one. Fault points:
/// `fs.write` before the write, `fs.rename` before the commit rename.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// Appends `data`, creating the file and parent dirs if needed.
Status AppendStringToFile(const std::string& path, std::string_view data);

/// Recursively creates a directory (no error if it exists).
Status MakeDirs(const std::string& path);

/// Recursively removes a file or directory tree (no error if absent).
Status RemoveAll(const std::string& path);

/// Copies a regular file, creating parent directories of `to`.
Status CopyFile(const std::string& from, const std::string& to);

/// Copies a directory tree.
Status CopyTree(const std::string& from, const std::string& to);

bool FileExists(const std::string& path);
bool DirExists(const std::string& path);

/// Size of a regular file in bytes.
Result<int64_t> FileSize(const std::string& path);

/// Total bytes of all regular files under `path` (0 if absent).
int64_t TreeSize(const std::string& path);

/// Lists regular files under `path` recursively, as paths relative to
/// `path`, sorted.
Result<std::vector<std::string>> ListTree(const std::string& path);

/// Joins path components with '/'.
std::string JoinPath(const std::string& a, const std::string& b);

/// Creates a unique temporary directory under the system temp dir with the
/// given prefix; returns its path.
Result<std::string> MakeTempDir(const std::string& prefix);

/// Directory containing the running executable ("" if unknown).
std::string SelfExeDir();

/// Locates the built `ldv_server` binary relative to the running executable
/// (tools/ldv_server in the build tree); returns "" when not found. Packages
/// embed this as their DB server binary; callers fall back to a placeholder.
std::string FindLdvServerBinary();

}  // namespace ldv

#endif  // LDV_UTIL_FSUTIL_H_
