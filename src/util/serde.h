#ifndef LDV_UTIL_SERDE_H_
#define LDV_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ldv {

/// Little-endian binary writer used by the network protocol and the trace
/// serialization. Variable-length integers keep messages compact.
class BufferWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Zig-zag varint for signed 64-bit integers.
  void PutVarint(int64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);  // varint length + bytes
  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  const std::string& data() const { return buf_; }
  std::string TakeData() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutUvarint(uint64_t v);
  std::string buf_;
};

/// Reader counterpart; every Get returns a Result so truncated/corrupt input
/// surfaces as a Status rather than UB.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}
  // The reader only views the buffer; a temporary string would dangle.
  template <typename S,
            typename = std::enable_if_t<
                std::is_same_v<std::remove_cvref_t<S>, std::string> &&
                !std::is_lvalue_reference_v<S>>>
  explicit BufferReader(S&&) = delete;

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetVarint();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<bool> GetBool();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Result<uint64_t> GetUvarint();
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace ldv

#endif  // LDV_UTIL_SERDE_H_
