#ifndef LDV_UTIL_STRINGS_H_
#define LDV_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ldv {

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);
/// Upper-cases ASCII.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict parse of a decimal integer.
Result<int64_t> ParseInt64(std::string_view s);
/// Strict parse of a floating point number.
Result<double> ParseDouble(std::string_view s);

/// SQL LIKE match: '%' matches any run, '_' matches one char. Case-sensitive,
/// matching PostgreSQL semantics for LIKE.
bool SqlLikeMatch(std::string_view text, std::string_view pattern);

/// Zero-pads `value` to `width` digits (value must be non-negative).
std::string ZeroPad(int64_t value, int width);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// FNV-1a 64-bit hash, used for dedup hash tables and trace checksums.
uint64_t Fnv1a(std::string_view s);

}  // namespace ldv

#endif  // LDV_UTIL_STRINGS_H_
