#ifndef LDV_OS_VFS_H_
#define LDV_OS_VFS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ldv::os {

/// A chroot-like view of the host filesystem rooted at `root`: the sandbox
/// in which audited applications run and into which packages are re-rooted
/// at replay time (paper §VII-D: "creates a chroot-like environment").
/// Virtual paths are absolute ("/data/in.csv") and resolve to
/// `<root>/data/in.csv`; escapes via ".." are rejected.
class Vfs {
 public:
  explicit Vfs(std::string root);

  const std::string& root() const { return root_; }

  /// Maps a virtual path to a host path; rejects escapes.
  Result<std::string> HostPath(const std::string& vpath) const;

  Result<std::string> ReadFile(const std::string& vpath) const;
  Status WriteFile(const std::string& vpath, std::string_view data) const;
  Status AppendFile(const std::string& vpath, std::string_view data) const;
  bool Exists(const std::string& vpath) const;
  Result<int64_t> FileSize(const std::string& vpath) const;

  /// All regular files under the root as sorted virtual paths.
  Result<std::vector<std::string>> ListAll() const;

 private:
  std::string root_;
};

}  // namespace ldv::os

#endif  // LDV_OS_VFS_H_
