#ifndef LDV_OS_SIM_PROCESS_H_
#define LDV_OS_SIM_PROCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "os/vfs.h"

namespace ldv::os {

/// Time interval on a provenance edge (paper Definition 2): [begin, end]
/// logical ticks.
struct Interval {
  int64_t begin = 0;
  int64_t end = 0;

  bool operator==(const Interval& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// One observed OS-level interaction — the event vocabulary PTU extracts
/// from ptrace (fork/exec and file opens/reads/writes/closes, §VII-A).
struct OsEvent {
  enum class Kind {
    kProcessStart,  // pid spawned by parent_pid (fork/exec)
    kProcessExit,
    kFileRead,   // pid read from path over interval t
    kFileWrite,  // pid wrote path over interval t
  };
  Kind kind = Kind::kProcessStart;
  int64_t pid = 0;
  int64_t parent_pid = 0;  // kProcessStart only
  std::string path;        // file events only (virtual path)
  int64_t bytes = 0;
  Interval t;
  std::string label;  // optional human-readable tag (e.g. argv for exec)
};

/// Receiver of OS events; the LDV Auditor implements this to build the
/// P_BB side of the combined execution trace.
class OsEventSink {
 public:
  virtual ~OsEventSink() = default;
  virtual void OnOsEvent(const OsEvent& event) = 0;
};

class SimOs;

/// Handle through which a simulated process performs its file and process
/// operations. Every operation advances the shared logical clock and emits
/// an event to the sink — the deterministic stand-in for a ptrace'd process.
class ProcessContext {
 public:
  int64_t pid() const { return pid_; }
  SimOs& os() { return *os_; }
  Vfs& vfs();

  /// Reads a whole file; emits kFileRead with the open..close interval.
  Result<std::string> ReadFile(const std::string& vpath);

  /// Creates/truncates a file; emits kFileWrite.
  Status WriteFile(const std::string& vpath, std::string_view data);

  /// Appends to a file; emits kFileWrite.
  Status AppendFile(const std::string& vpath, std::string_view data);

  /// Spawns a child process (fork+exec); emits kProcessStart. The child is
  /// owned by the SimOs.
  Result<ProcessContext*> Spawn(const std::string& label = "");

  /// Marks the process exited; emits kProcessExit.
  void Exit();

 private:
  friend class SimOs;
  ProcessContext(SimOs* os, int64_t pid) : os_(os), pid_(pid) {}

  SimOs* os_;
  int64_t pid_;
  bool exited_ = false;
};

/// The simulated OS: owns process contexts, assigns pids, and threads every
/// operation through one logical clock so that trace timestamps are totally
/// ordered and reproducible.
class SimOs {
 public:
  /// `sink` may be null (un-audited baseline runs). `clock` is shared with
  /// the DB auditing layer so OS and DB events interleave on one timeline.
  SimOs(Vfs* vfs, LogicalClock* clock, OsEventSink* sink);

  /// The root process (pid 1); created on first call.
  ProcessContext* root();

  Vfs& vfs() { return *vfs_; }
  LogicalClock& clock() { return *clock_; }
  OsEventSink* sink() { return sink_; }
  void set_sink(OsEventSink* sink) { sink_ = sink; }

  int64_t process_count() const {
    return static_cast<int64_t>(processes_.size());
  }

 private:
  friend class ProcessContext;
  ProcessContext* NewProcess(int64_t parent_pid, const std::string& label);
  void Emit(const OsEvent& event);

  Vfs* vfs_;
  LogicalClock* clock_;
  OsEventSink* sink_;
  std::vector<std::unique_ptr<ProcessContext>> processes_;
  int64_t next_pid_ = 1;
};

}  // namespace ldv::os

#endif  // LDV_OS_SIM_PROCESS_H_
