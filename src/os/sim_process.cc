#include "os/sim_process.h"

namespace ldv::os {

Vfs& ProcessContext::vfs() { return os_->vfs(); }

Result<std::string> ProcessContext::ReadFile(const std::string& vpath) {
  int64_t open_t = os_->clock().Tick();
  LDV_ASSIGN_OR_RETURN(std::string data, os_->vfs().ReadFile(vpath));
  int64_t close_t = os_->clock().Tick();
  OsEvent event;
  event.kind = OsEvent::Kind::kFileRead;
  event.pid = pid_;
  event.path = vpath;
  event.bytes = static_cast<int64_t>(data.size());
  event.t = {open_t, close_t};
  os_->Emit(event);
  return data;
}

Status ProcessContext::WriteFile(const std::string& vpath,
                                 std::string_view data) {
  int64_t open_t = os_->clock().Tick();
  LDV_RETURN_IF_ERROR(os_->vfs().WriteFile(vpath, data));
  int64_t close_t = os_->clock().Tick();
  OsEvent event;
  event.kind = OsEvent::Kind::kFileWrite;
  event.pid = pid_;
  event.path = vpath;
  event.bytes = static_cast<int64_t>(data.size());
  event.t = {open_t, close_t};
  os_->Emit(event);
  return Status::Ok();
}

Status ProcessContext::AppendFile(const std::string& vpath,
                                  std::string_view data) {
  int64_t open_t = os_->clock().Tick();
  LDV_RETURN_IF_ERROR(os_->vfs().AppendFile(vpath, data));
  int64_t close_t = os_->clock().Tick();
  OsEvent event;
  event.kind = OsEvent::Kind::kFileWrite;
  event.pid = pid_;
  event.path = vpath;
  event.bytes = static_cast<int64_t>(data.size());
  event.t = {open_t, close_t};
  os_->Emit(event);
  return Status::Ok();
}

Result<ProcessContext*> ProcessContext::Spawn(const std::string& label) {
  if (exited_) return Status::Internal("spawn from an exited process");
  return os_->NewProcess(pid_, label);
}

void ProcessContext::Exit() {
  if (exited_) return;
  exited_ = true;
  int64_t t = os_->clock().Tick();
  OsEvent event;
  event.kind = OsEvent::Kind::kProcessExit;
  event.pid = pid_;
  event.t = {t, t};
  os_->Emit(event);
}

SimOs::SimOs(Vfs* vfs, LogicalClock* clock, OsEventSink* sink)
    : vfs_(vfs), clock_(clock), sink_(sink) {}

ProcessContext* SimOs::root() {
  if (processes_.empty()) return NewProcess(0, "root");
  return processes_.front().get();
}

ProcessContext* SimOs::NewProcess(int64_t parent_pid,
                                  const std::string& label) {
  int64_t pid = next_pid_++;
  processes_.emplace_back(
      std::unique_ptr<ProcessContext>(new ProcessContext(this, pid)));
  int64_t t = clock_->Tick();
  OsEvent event;
  event.kind = OsEvent::Kind::kProcessStart;
  event.pid = pid;
  event.parent_pid = parent_pid;
  // Fork/exec of the child is modeled as instantaneous (§VII-A).
  event.t = {t, t};
  event.label = label;
  Emit(event);
  return processes_.back().get();
}

void SimOs::Emit(const OsEvent& event) {
  if (sink_ != nullptr) sink_->OnOsEvent(event);
}

}  // namespace ldv::os
