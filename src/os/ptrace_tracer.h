#ifndef LDV_OS_PTRACE_TRACER_H_
#define LDV_OS_PTRACE_TRACER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "os/sim_process.h"

namespace ldv::os {

/// Result of tracing one external command.
struct PtraceReport {
  /// Events in observation order, same vocabulary as the simulated OS.
  std::vector<OsEvent> events;
  int exit_code = 0;
  /// Distinct regular files opened for reading / writing (sorted). These are
  /// what a CDE/PTU-style packager copies into a package.
  std::vector<std::string> files_read;
  std::vector<std::string> files_written;
  std::vector<std::string> binaries_executed;
};

/// The genuine PTU capture mechanism (paper §VII-A): runs `argv` as a child
/// under ptrace(2), intercepts open/openat/creat, read/write (fd->path
/// attribution), close, fork/vfork/clone and execve across the whole process
/// tree, and produces the same OsEvent stream the simulated OS emits —
/// with a logical timestamp per syscall.
///
/// Linux x86-64 only. Returns NotSupported on other platforms and IOError
/// when the environment forbids ptrace (some sandboxes do).
class PtraceTracer {
 public:
  /// When set, uninteresting paths (/proc, /sys, /dev, shared-library and
  /// locale noise) are dropped from the report. Default true.
  void set_filter_system_paths(bool filter) { filter_system_paths_ = filter; }

  Result<PtraceReport> Run(const std::vector<std::string>& argv);

 private:
  bool filter_system_paths_ = true;
};

/// True if `path` is infrastructure noise (loader, /proc, ...) rather than
/// application data; exposed for tests.
bool IsSystemPath(const std::string& path);

}  // namespace ldv::os

#endif  // LDV_OS_PTRACE_TRACER_H_
