#include "os/vfs.h"

#include "util/fsutil.h"
#include "util/strings.h"

namespace ldv::os {

Vfs::Vfs(std::string root) : root_(std::move(root)) {
  while (!root_.empty() && root_.back() == '/') root_.pop_back();
}

Result<std::string> Vfs::HostPath(const std::string& vpath) const {
  if (vpath.empty() || vpath[0] != '/') {
    return Status::InvalidArgument("virtual path must be absolute: " + vpath);
  }
  for (const std::string& part : Split(vpath.substr(1), '/')) {
    if (part == "..") {
      return Status::InvalidArgument("virtual path escapes sandbox: " + vpath);
    }
  }
  return root_ + vpath;
}

Result<std::string> Vfs::ReadFile(const std::string& vpath) const {
  LDV_ASSIGN_OR_RETURN(std::string host, HostPath(vpath));
  return ReadFileToString(host);
}

Status Vfs::WriteFile(const std::string& vpath, std::string_view data) const {
  LDV_ASSIGN_OR_RETURN(std::string host, HostPath(vpath));
  return WriteStringToFile(host, data);
}

Status Vfs::AppendFile(const std::string& vpath, std::string_view data) const {
  LDV_ASSIGN_OR_RETURN(std::string host, HostPath(vpath));
  return AppendStringToFile(host, data);
}

bool Vfs::Exists(const std::string& vpath) const {
  Result<std::string> host = HostPath(vpath);
  return host.ok() && FileExists(*host);
}

Result<int64_t> Vfs::FileSize(const std::string& vpath) const {
  LDV_ASSIGN_OR_RETURN(std::string host, HostPath(vpath));
  return ldv::FileSize(host);
}

Result<std::vector<std::string>> Vfs::ListAll() const {
  LDV_ASSIGN_OR_RETURN(std::vector<std::string> files, ListTree(root_));
  for (std::string& f : files) f = "/" + f;
  return files;
}

}  // namespace ldv::os
