#include "os/ptrace_tracer.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/ptrace.h>
#include <sys/types.h>
#include <sys/user.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"

namespace ldv::os {

bool IsSystemPath(const std::string& path) {
  static constexpr std::string_view kPrefixes[] = {
      "/proc/", "/sys/", "/dev/", "/etc/ld.so", "/lib/", "/lib64/",
      "/usr/lib/", "/usr/share/locale", "/usr/share/zoneinfo"};
  for (std::string_view prefix : kPrefixes) {
    if (StartsWith(path, prefix)) return true;
  }
  return EndsWith(path, ".so") || path.find(".so.") != std::string::npos;
}

#if defined(__x86_64__) && defined(__linux__)

namespace {

/// Reads a NUL-terminated string from the tracee's memory.
std::string ReadTraceeString(pid_t pid, unsigned long addr) {
  std::string out;
  if (addr == 0) return out;
  while (out.size() < 4096) {
    errno = 0;
    long word = ptrace(PTRACE_PEEKDATA, pid, addr + out.size(), nullptr);
    if (errno != 0) break;
    const char* bytes = reinterpret_cast<const char*>(&word);
    for (size_t i = 0; i < sizeof(long); ++i) {
      if (bytes[i] == '\0') return out;
      out.push_back(bytes[i]);
    }
  }
  return out;
}

/// Per-tracee-process state: fd table and in-flight syscall info.
struct TraceeState {
  bool in_syscall = false;
  long syscall_number = -1;
  std::string pending_path;  // open/openat path captured at entry
  int pending_flags = 0;
  std::map<int, std::string> fd_table;
};

}  // namespace

Result<PtraceReport> PtraceTracer::Run(const std::vector<std::string>& argv) {
  if (argv.empty()) return Status::InvalidArgument("empty argv");

  pid_t child = fork();
  if (child < 0) {
    return Status::IOError(std::string("fork: ") + strerror(errno));
  }
  if (child == 0) {
    // Tracee: request tracing and exec the target.
    if (ptrace(PTRACE_TRACEME, 0, nullptr, nullptr) != 0) _exit(126);
    std::vector<char*> c_argv;
    c_argv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      c_argv.push_back(const_cast<char*>(a.c_str()));
    }
    c_argv.push_back(nullptr);
    execvp(c_argv[0], c_argv.data());
    _exit(127);
  }

  // Tracer.
  int status = 0;
  if (waitpid(child, &status, 0) < 0) {
    return Status::IOError(std::string("waitpid: ") + strerror(errno));
  }
  if (WIFEXITED(status)) {
    // TRACEME failed (sandbox forbids ptrace) or exec failed immediately.
    return Status::IOError("ptrace unavailable or exec failed (exit " +
                           std::to_string(WEXITSTATUS(status)) + ")");
  }
  const long options = PTRACE_O_TRACESYSGOOD | PTRACE_O_TRACEFORK |
                       PTRACE_O_TRACEVFORK | PTRACE_O_TRACECLONE |
                       PTRACE_O_TRACEEXEC;
  if (ptrace(PTRACE_SETOPTIONS, child, nullptr, options) != 0) {
    int err = errno;
    ptrace(PTRACE_KILL, child, nullptr, nullptr);
    waitpid(child, &status, 0);
    return Status::IOError(std::string("ptrace setoptions: ") + strerror(err));
  }

  PtraceReport report;
  std::map<pid_t, TraceeState> tracees;
  std::map<pid_t, pid_t> parent_of;
  std::set<std::string> reads;
  std::set<std::string> writes;
  std::set<std::string> execs;
  int64_t logical_time = 0;
  tracees[child];  // root state
  parent_of[child] = 0;

  auto emit = [&](OsEvent::Kind kind, pid_t pid, const std::string& path,
                  pid_t parent, const std::string& label) {
    OsEvent event;
    event.kind = kind;
    event.pid = pid;
    event.parent_pid = parent;
    event.path = path;
    event.label = label;
    ++logical_time;
    event.t = {logical_time, logical_time};
    report.events.push_back(std::move(event));
  };
  emit(OsEvent::Kind::kProcessStart, child, "", 0, argv[0]);

  if (ptrace(PTRACE_SYSCALL, child, nullptr, nullptr) != 0) {
    return Status::IOError(std::string("ptrace syscall: ") + strerror(errno));
  }

  int live = 1;
  while (live > 0) {
    pid_t pid = waitpid(-1, &status, __WALL);
    if (pid < 0) {
      if (errno == EINTR) continue;
      if (errno == ECHILD) break;
      return Status::IOError(std::string("waitpid: ") + strerror(errno));
    }
    if (WIFEXITED(status) || WIFSIGNALED(status)) {
      emit(OsEvent::Kind::kProcessExit, pid, "", 0, "");
      if (pid == child && WIFEXITED(status)) {
        report.exit_code = WEXITSTATUS(status);
      }
      tracees.erase(pid);
      --live;
      continue;
    }
    long signal_to_deliver = 0;
    if (WIFSTOPPED(status)) {
      int sig = WSTOPSIG(status);
      const unsigned int ptrace_event =
          static_cast<unsigned int>(status) >> 16;
      if (ptrace_event == PTRACE_EVENT_FORK ||
          ptrace_event == PTRACE_EVENT_VFORK ||
          ptrace_event == PTRACE_EVENT_CLONE) {
        unsigned long new_pid = 0;
        ptrace(PTRACE_GETEVENTMSG, pid, nullptr, &new_pid);
        pid_t np = static_cast<pid_t>(new_pid);
        if (tracees.find(np) == tracees.end()) {
          tracees[np].fd_table = tracees[pid].fd_table;  // fds inherited
          parent_of[np] = pid;
          ++live;
          emit(OsEvent::Kind::kProcessStart, np, "", pid, "fork");
        }
      } else if (ptrace_event == PTRACE_EVENT_EXEC) {
        // execve completed in `pid`.
      } else if (sig == (SIGTRAP | 0x80)) {
        // Syscall stop.
        TraceeState& state = tracees[pid];
        user_regs_struct regs{};
        if (ptrace(PTRACE_GETREGS, pid, nullptr, &regs) == 0) {
          if (!state.in_syscall) {
            state.in_syscall = true;
            state.syscall_number = static_cast<long>(regs.orig_rax);
            switch (state.syscall_number) {
              case 2:  // open(path, flags)
                state.pending_path = ReadTraceeString(pid, regs.rdi);
                state.pending_flags = static_cast<int>(regs.rsi);
                break;
              case 257:  // openat(dirfd, path, flags)
                state.pending_path = ReadTraceeString(pid, regs.rsi);
                state.pending_flags = static_cast<int>(regs.rdx);
                break;
              case 85:  // creat(path, mode)
                state.pending_path = ReadTraceeString(pid, regs.rdi);
                state.pending_flags = O_WRONLY | O_CREAT | O_TRUNC;
                break;
              case 59: {  // execve(path, ...)
                std::string path = ReadTraceeString(pid, regs.rdi);
                if (!path.empty()) {
                  execs.insert(path);
                  emit(OsEvent::Kind::kProcessStart, pid, path, pid, "exec");
                }
                break;
              }
              default:
                break;
            }
          } else {
            state.in_syscall = false;
            long ret = static_cast<long>(regs.rax);
            switch (state.syscall_number) {
              case 2:
              case 257:
              case 85: {
                if (ret >= 0 && !state.pending_path.empty()) {
                  const std::string& path = state.pending_path;
                  state.fd_table[static_cast<int>(ret)] = path;
                  bool keep = !filter_system_paths_ || !IsSystemPath(path);
                  if (keep) {
                    int acc = state.pending_flags & O_ACCMODE;
                    bool write_mode = acc == O_WRONLY || acc == O_RDWR ||
                                      (state.pending_flags & O_CREAT) != 0;
                    if (write_mode) {
                      writes.insert(path);
                      emit(OsEvent::Kind::kFileWrite, pid, path, 0, "");
                    } else {
                      reads.insert(path);
                      emit(OsEvent::Kind::kFileRead, pid, path, 0, "");
                    }
                  }
                }
                state.pending_path.clear();
                break;
              }
              case 3:  // close(fd)
                state.fd_table.erase(static_cast<int>(regs.rdi));
                break;
              default:
                break;
            }
          }
        }
      } else if (sig == SIGTRAP || sig == SIGSTOP) {
        // Swallow trace-machinery signals.
      } else {
        signal_to_deliver = sig;
      }
    }
    ptrace(PTRACE_SYSCALL, pid, nullptr,
           reinterpret_cast<void*>(signal_to_deliver));
  }

  report.files_read.assign(reads.begin(), reads.end());
  report.files_written.assign(writes.begin(), writes.end());
  report.binaries_executed.assign(execs.begin(), execs.end());
  return report;
}

#else  // !x86_64 Linux

Result<PtraceReport> PtraceTracer::Run(const std::vector<std::string>& argv) {
  (void)argv;
  return Status::NotSupported("PtraceTracer requires Linux x86-64");
}

#endif

}  // namespace ldv::os
