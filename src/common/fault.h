#ifndef LDV_COMMON_FAULT_H_
#define LDV_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ldv {

/// Counters for one injection point, as returned by
/// FaultInjector::PointStats().
struct FaultPointStats {
  std::string point;
  int64_t calls = 0;
  int64_t injected = 0;
};

/// Configuration of one named fault-injection point.
struct FaultPointConfig {
  /// Probability in [0, 1] that any given call through the point fails.
  /// Draws come from the injector's seeded per-point generator.
  double failure_probability = 0;
  /// When >= 0 the point succeeds for this many calls, then fails the next
  /// `fail_times` calls, then succeeds again. Independent of (and in
  /// addition to) `failure_probability`.
  int64_t fail_after_calls = -1;
  int64_t fail_times = 1;
  /// Artificial delay added to every call through the point.
  int64_t latency_micros = 0;
  /// Status code carried by injected failures.
  StatusCode code = StatusCode::kIOError;
  /// Kill-at-faultpoint: when a failure triggers, _exit(2) the process
  /// instead of returning a Status — the crash-torture harness's way of
  /// dying at exactly the chosen point (no destructors, no flushes, like a
  /// power cut).
  bool crash = false;
};

/// Process-wide deterministic fault injector. Production code declares named
/// injection points (`net.send`, `net.recv`, `engine.execute`, `fs.write`,
/// `fs.rename`, ...) via LDV_FAULT_POINT; tests and the CLI configure
/// failure probability, fail-after-N-calls schedules, and latency per point.
///
/// Disabled by default: the LDV_FAULT_POINT fast path is a single relaxed
/// atomic load, and building with -DLDV_DISABLE_FAULT_INJECTION compiles the
/// points out entirely. All state is guarded by one mutex; probability draws
/// use an independent splitmix64 stream per point derived from the seed, so
/// single-threaded runs are bit-reproducible.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms injection with a deterministic seed. Clears nothing: points
  /// configured earlier stay configured.
  void Enable(uint64_t seed);
  /// Disarms injection (configurations and counters are kept).
  void Disable();
  /// Disarms and drops every configuration and counter.
  void Reset();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  void Configure(const std::string& point, const FaultPointConfig& config);
  void Clear(const std::string& point);

  /// Configures points from a CLI spec: `;`-separated entries of the form
  ///   <point>=<kind>:<value>[,<kind>:<value>...]
  /// with kinds `p` (failure probability), `after` (fail after N calls),
  /// `times` (failures per `after` trigger), `lat` (latency, microseconds),
  /// and `crash` (non-zero: triggered failures _exit(2) the process).
  /// Example: "net.send=p:0.3;net.recv=p:0.3;fs.rename=after:2,times:1"
  /// Kill-at-faultpoint: "wal.fsync=after:7,crash:1"
  Status ConfigureFromSpec(std::string_view spec);

  /// Calls observed at `point` since the last Reset (0 if never hit).
  int64_t CallCount(const std::string& point) const;
  /// Failures injected at `point` since the last Reset.
  int64_t InjectedCount(const std::string& point) const;

  /// Call/injection counters for every point seen since the last Reset,
  /// sorted by point name. Lets the observability layer export coverage
  /// without common/fault depending on it.
  std::vector<FaultPointStats> PointStats() const;

  /// Slow path behind CheckFault: counts the call, applies latency, and
  /// decides whether to inject a failure.
  Status Check(const char* point);

 private:
  FaultInjector() = default;
  static std::atomic<bool> enabled_;
};

/// Returns OK with a single atomic load when injection is disabled.
inline Status CheckFault(const char* point) {
  if (!FaultInjector::enabled()) return Status::Ok();
  return FaultInjector::Instance().Check(point);
}

}  // namespace ldv

/// Declares a named injection point inside a function returning Status or
/// Result<T>: propagates an injected failure to the caller. Compiles to
/// nothing under LDV_DISABLE_FAULT_INJECTION.
#ifdef LDV_DISABLE_FAULT_INJECTION
#define LDV_FAULT_POINT(point) \
  do {                         \
  } while (false)
#else
#define LDV_FAULT_POINT(point) LDV_RETURN_IF_ERROR(::ldv::CheckFault(point))
#endif

#endif  // LDV_COMMON_FAULT_H_
