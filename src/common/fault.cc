#include "common/fault.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace ldv {

namespace {

/// splitmix64: tiny, high-quality stream generator. The injector cannot use
/// util/rng.h (util depends on common), so it keeps its own generator.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double ToUnitDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

uint64_t HashPointName(std::string_view name) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

std::atomic<bool> FaultInjector::enabled_{false};

namespace {

struct PointState {
  FaultPointConfig config;
  bool configured = false;
  int64_t calls = 0;
  int64_t injected = 0;
  uint64_t rng = 0;
};

struct InjectorState {
  std::mutex mu;
  uint64_t seed = 0;
  std::map<std::string, PointState, std::less<>> points;

  PointState& PointFor(std::string_view name) {
    auto it = points.find(name);
    if (it == points.end()) {
      it = points.emplace(std::string(name), PointState{}).first;
      it->second.rng = seed ^ HashPointName(name);
    }
    return it->second;
  }
};

InjectorState* GlobalState() {
  static auto* state = new InjectorState();  // leaked: outlives all threads
  return state;
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static auto* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Enable(uint64_t seed) {
  InjectorState* s = GlobalState();
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->seed = seed;
    for (auto& [name, point] : s->points) {
      point.rng = seed ^ HashPointName(name);
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  Disable();
  InjectorState* s = GlobalState();
  std::lock_guard<std::mutex> lock(s->mu);
  s->points.clear();
  s->seed = 0;
}

void FaultInjector::Configure(const std::string& point,
                              const FaultPointConfig& config) {
  InjectorState* s = GlobalState();
  std::lock_guard<std::mutex> lock(s->mu);
  PointState& state = s->PointFor(point);
  state.config = config;
  state.configured = true;
  // A fresh schedule restarts the fail-after window from this moment.
  state.calls = 0;
}

void FaultInjector::Clear(const std::string& point) {
  InjectorState* s = GlobalState();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->points.find(point);
  if (it != s->points.end()) {
    it->second.config = FaultPointConfig{};
    it->second.configured = false;
  }
}

Status FaultInjector::ConfigureFromSpec(std::string_view spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry needs <point>=<cfg>: " +
                                     std::string(entry));
    }
    std::string point(entry.substr(0, eq));
    FaultPointConfig config;
    std::string_view rest = entry.substr(eq + 1);
    size_t field_start = 0;
    while (field_start <= rest.size()) {
      size_t field_end = rest.find(',', field_start);
      if (field_end == std::string_view::npos) field_end = rest.size();
      std::string_view field = rest.substr(field_start, field_end - field_start);
      field_start = field_end + 1;
      if (field.empty()) continue;
      size_t colon = field.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("fault spec field needs <kind>:<value>: " +
                                       std::string(field));
      }
      std::string kind(field.substr(0, colon));
      std::string value(field.substr(colon + 1));
      char* parse_end = nullptr;
      if (kind == "p") {
        config.failure_probability = std::strtod(value.c_str(), &parse_end);
      } else if (kind == "after") {
        config.fail_after_calls = std::strtoll(value.c_str(), &parse_end, 10);
      } else if (kind == "times") {
        config.fail_times = std::strtoll(value.c_str(), &parse_end, 10);
      } else if (kind == "lat") {
        config.latency_micros = std::strtoll(value.c_str(), &parse_end, 10);
      } else if (kind == "crash") {
        config.crash = std::strtoll(value.c_str(), &parse_end, 10) != 0;
      } else {
        return Status::InvalidArgument("unknown fault spec kind: " + kind);
      }
      if (parse_end == value.c_str() || *parse_end != '\0') {
        return Status::InvalidArgument("bad fault spec value: " + value);
      }
    }
    Configure(point, config);
  }
  return Status::Ok();
}

int64_t FaultInjector::CallCount(const std::string& point) const {
  InjectorState* s = GlobalState();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->points.find(point);
  return it == s->points.end() ? 0 : it->second.calls;
}

int64_t FaultInjector::InjectedCount(const std::string& point) const {
  InjectorState* s = GlobalState();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->points.find(point);
  return it == s->points.end() ? 0 : it->second.injected;
}

std::vector<FaultPointStats> FaultInjector::PointStats() const {
  InjectorState* s = GlobalState();
  std::lock_guard<std::mutex> lock(s->mu);
  std::vector<FaultPointStats> stats;
  stats.reserve(s->points.size());
  for (const auto& [name, state] : s->points) {
    stats.push_back(FaultPointStats{name, state.calls, state.injected});
  }
  return stats;
}

Status FaultInjector::Check(const char* point) {
  if (!enabled()) return Status::Ok();
  InjectorState* s = GlobalState();
  int64_t latency_micros = 0;
  bool fail = false;
  bool crash = false;
  StatusCode code = StatusCode::kIOError;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    PointState& state = s->PointFor(point);
    int64_t call_index = state.calls++;
    if (!state.configured) return Status::Ok();
    latency_micros = state.config.latency_micros;
    code = state.config.code;
    crash = state.config.crash;
    if (state.config.fail_after_calls >= 0 &&
        call_index >= state.config.fail_after_calls &&
        call_index <
            state.config.fail_after_calls + state.config.fail_times) {
      fail = true;
    }
    if (!fail && state.config.failure_probability > 0 &&
        ToUnitDouble(SplitMix64(&state.rng)) <
            state.config.failure_probability) {
      fail = true;
    }
    if (fail) ++state.injected;
  }
  if (latency_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_micros));
  }
  if (fail) {
    // Kill-at-faultpoint: die exactly here, skipping destructors and
    // buffered-write flushes, the closest userspace gets to a power cut.
    if (crash) _exit(2);
    return Status(code,
                  "injected fault at " + std::string(point));
  }
  return Status::Ok();
}

}  // namespace ldv
