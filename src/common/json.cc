#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace ldv {

Json Json::MakeBool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::MakeInt(int64_t i) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = i;
  return j;
}

Json Json::MakeDouble(double d) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = d;
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  LDV_CHECK(type_ == Type::kBool);
  return bool_;
}

int64_t Json::AsInt() const {
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  LDV_CHECK(type_ == Type::kInt);
  return int_;
}

double Json::AsDouble() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  LDV_CHECK(type_ == Type::kDouble);
  return double_;
}

const std::string& Json::AsString() const {
  LDV_CHECK(type_ == Type::kString);
  return string_;
}

const std::vector<Json>& Json::AsArray() const {
  LDV_CHECK(type_ == Type::kArray);
  return array_;
}

std::vector<Json>& Json::MutableArray() {
  LDV_CHECK(type_ == Type::kArray);
  return array_;
}

const std::map<std::string, Json>& Json::AsObject() const {
  LDV_CHECK(type_ == Type::kObject);
  return object_;
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

void Json::Set(std::string key, Json value) {
  LDV_CHECK(type_ == Type::kObject);
  object_[std::move(key)] = std::move(value);
}

void Json::Append(Json value) {
  LDV_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
}

int64_t Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* j = Find(key);
  return (j != nullptr && (j->type_ == Type::kInt || j->type_ == Type::kDouble))
             ? j->AsInt()
             : fallback;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* j = Find(key);
  return (j != nullptr && (j->type_ == Type::kInt || j->type_ == Type::kDouble))
             ? j->AsDouble()
             : fallback;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* j = Find(key);
  return (j != nullptr && j->type_ == Type::kString) ? j->AsString()
                                                     : std::move(fallback);
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* j = Find(key);
  return (j != nullptr && j->type_ == Type::kBool) ? j->AsBool() : fallback;
}

namespace {

void EscapeStringTo(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Indent(std::string* out, bool pretty, int indent) {
  if (!pretty) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, bool pretty, int indent) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN.
      }
      break;
    }
    case Type::kString:
      EscapeStringTo(out, string_);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, pretty, indent + 1);
        item.DumpTo(out, pretty, indent + 1);
      }
      if (!array_.empty()) Indent(out, pretty, indent);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, pretty, indent + 1);
        EscapeStringTo(out, key);
        *out += pretty ? ": " : ":";
        value.DumpTo(out, pretty, indent + 1);
      }
      if (!object_.empty()) Indent(out, pretty, indent);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(bool pretty) const {
  std::string out;
  DumpTo(&out, pretty, 0);
  if (pretty) out.push_back('\n');
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    LDV_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::ParseError(std::string("expected '") + c + "' at offset " +
                                std::to_string(pos_));
    }
    return Status::Ok();
  }

  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        LDV_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::MakeString(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Json::MakeBool(true);
        }
        return Status::ParseError("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Json::MakeBool(false);
        }
        return Status::ParseError("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Json::MakeNull();
        }
        return Status::ParseError("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (Consume('-')) {
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty()) return Status::ParseError("bad number");
    if (!is_double) {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) {
        return Json::MakeInt(v);
      }
    }
    double d = std::strtod(std::string(tok).c_str(), nullptr);
    return Json::MakeDouble(d);
  }

  Result<std::string> ParseString() {
    LDV_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::ParseError("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Status::ParseError("bad \\u escape");
              }
            }
            // Encode as UTF-8 (BMP only; sufficient for manifests).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::ParseError("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Status::ParseError("unterminated string");
  }

  Result<Json> ParseArray() {
    LDV_RETURN_IF_ERROR(Expect('['));
    Json arr = Json::MakeArray();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      LDV_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      SkipWs();
      if (Consume(']')) return arr;
      LDV_RETURN_IF_ERROR(Expect(','));
    }
  }

  Result<Json> ParseObject() {
    LDV_RETURN_IF_ERROR(Expect('{'));
    Json obj = Json::MakeObject();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      LDV_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      LDV_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      LDV_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return obj;
      LDV_RETURN_IF_ERROR(Expect(','));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace ldv
