#ifndef LDV_COMMON_LOGGING_H_
#define LDV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ldv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that is emitted to stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Small dense id for the calling thread (the process's first thread gets 0).
/// Stable for the thread's lifetime; shown as `tN` in log prefixes so
/// concurrent connection threads are distinguishable, and reused as the
/// `tid` in trace events so logs and traces line up.
int LogThreadOrdinal();

/// Installs a callback returning the active trace span id for the calling
/// thread (0 = none). When set and non-zero, log prefixes gain `sN`. Pass
/// nullptr to remove. Installed by obs::TraceRecorder::Enable(); the
/// indirection keeps common/logging below the observability layer.
void SetLogSpanIdProvider(int64_t (*provider)());

namespace internal {

/// Stream-style log sink; writes one line to stderr on destruction.
/// kFatal aborts the process after emitting the message.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ldv

#define LDV_LOG(level)                                                     \
  ::ldv::internal::LogMessage(::ldv::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

/// Invariant check that is active in all build types; logs and aborts on
/// failure. Use for programmer errors, not for user-input validation.
#define LDV_CHECK(cond)                                      \
  if (!(cond)) LDV_LOG(Fatal) << "Check failed: " #cond " "

#define LDV_CHECK_OK(expr)                                            \
  do {                                                                \
    ::ldv::Status _ldv_chk = (expr);                                  \
    if (!_ldv_chk.ok())                                               \
      LDV_LOG(Fatal) << "Status not OK: " << _ldv_chk.ToString();     \
  } while (false)

#endif  // LDV_COMMON_LOGGING_H_
