#include "common/status.h"

namespace ldv {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kReplayMismatch:
      return "ReplayMismatch";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace ldv
