#ifndef LDV_COMMON_RESULT_H_
#define LDV_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ldv {

/// Value-or-Status, the project-wide replacement for exceptions
/// (StatusOr style). A Result is either OK and holds a T, or holds a
/// non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return my_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace ldv

// Internal helper for unique temporaries.
#define LDV_CONCAT_IMPL_(a, b) a##b
#define LDV_CONCAT_(a, b) LDV_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define LDV_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  LDV_ASSIGN_OR_RETURN_IMPL_(LDV_CONCAT_(_ldv_result_, __LINE__), lhs, rexpr)

#define LDV_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // LDV_COMMON_RESULT_H_
