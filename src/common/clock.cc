#include "common/clock.h"

#include <ctime>

namespace ldv {

int64_t NowNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void WallTimer::Restart() { start_ns_ = NowNanos(); }

double WallTimer::Seconds() const {
  return static_cast<double>(NowNanos() - start_ns_) * 1e-9;
}

}  // namespace ldv
