#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace ldv {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int64_t (*)()> g_span_id_provider{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

int LogThreadOrdinal() {
  static std::atomic<int> next_ordinal{0};
  thread_local const int ordinal =
      next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void SetLogSpanIdProvider(int64_t (*provider)()) {
  g_span_id_provider.store(provider, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " t" << LogThreadOrdinal();
  if (auto* provider = g_span_id_provider.load(std::memory_order_relaxed)) {
    if (int64_t span_id = provider(); span_id != 0) {
      stream_ << " s" << span_id;
    }
  }
  stream_ << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace ldv
