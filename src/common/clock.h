#ifndef LDV_COMMON_CLOCK_H_
#define LDV_COMMON_CLOCK_H_

#include <cstdint>

namespace ldv {

/// Monotonically increasing logical clock used to annotate provenance-trace
/// edges with time intervals (paper §IV-B, Definition 2). Deterministic, so
/// traces built from the simulated OS layer are reproducible in tests.
class LogicalClock {
 public:
  LogicalClock() = default;

  /// Advances and returns the new tick.
  int64_t Tick() { return ++now_; }

  /// Current time without advancing.
  int64_t Now() const { return now_; }

  /// Resets to `t` (used when loading a serialized trace).
  void Reset(int64_t t) { now_ = t; }

 private:
  int64_t now_ = 0;
};

/// Wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart();

  /// Seconds elapsed since construction/Restart.
  double Seconds() const;

 private:
  int64_t start_ns_ = 0;
};

/// Current wall time in nanoseconds (CLOCK_MONOTONIC).
int64_t NowNanos();

}  // namespace ldv

#endif  // LDV_COMMON_CLOCK_H_
