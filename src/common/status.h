#ifndef LDV_COMMON_STATUS_H_
#define LDV_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ldv {

/// Error categories used across the LDV code base. Mirrors the usual
/// database-engine status taxonomy (RocksDB/Arrow style) since the project
/// builds without exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kInternal,
  kNotSupported,
  kParseError,
  kConstraintViolation,
  kReplayMismatch,
  /// Resource-governance taxonomy (DESIGN.md §11). These three are
  /// definitive per-statement verdicts: clients must not transparently
  /// retry them (a retry would resurrect the query the governor killed).
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (no allocation); carries a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ReplayMismatch(std::string msg) {
    return Status(StatusCode::kReplayMismatch, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prepends `context` to the message of a non-OK status; no-op when OK.
  Status WithContext(std::string_view context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace ldv

/// Propagates a non-OK Status to the caller.
#define LDV_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ldv::Status _ldv_status = (expr);             \
    if (!_ldv_status.ok()) return _ldv_status;      \
  } while (false)

#endif  // LDV_COMMON_STATUS_H_
