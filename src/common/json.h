#ifndef LDV_COMMON_JSON_H_
#define LDV_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ldv {

/// Minimal JSON document model used for package manifests and replay logs.
/// Supports the subset LDV needs: null, bool, int64, double, string, array,
/// object (with deterministic, sorted key order on output).
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json MakeNull() { return Json(); }
  static Json MakeBool(bool b);
  static Json MakeInt(int64_t i);
  static Json MakeDouble(double d);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // Accessors; the type must match (checked with LDV_CHECK).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<Json>& AsArray() const;
  std::vector<Json>& MutableArray();
  const std::map<std::string, Json>& AsObject() const;

  /// Object field access; returns nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;
  /// Sets/overwrites an object field (must be an object).
  void Set(std::string key, Json value);
  /// Appends to an array (must be an array).
  void Append(Json value);

  // Convenience typed getters with defaults for manifest reading.
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  double GetDouble(std::string_view key, double fallback) const;
  std::string GetString(std::string_view key, std::string fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Serializes; `pretty` inserts newlines and two-space indentation.
  std::string Dump(bool pretty = false) const;

  /// Parses a JSON document.
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, bool pretty, int indent) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace ldv

#endif  // LDV_COMMON_JSON_H_
