#ifndef LDV_REPL_PRIMARY_H_
#define LDV_REPL_PRIMARY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "repl/replication.h"
#include "storage/wal.h"

namespace ldv::repl {

/// Primary side of WAL streaming replication (DESIGN.md §14).
///
/// Live commits reach standbys through a bounded in-memory ring: the WAL's
/// commit sink publishes every appended group (whole, pre-encoded), and
/// standbys long-poll kReplFrames against it. A standby that has fallen off
/// the ring's tail — slow, freshly bootstrapped, or back from a severed
/// stream — is served straight from the WAL segment files on disk
/// (ListWalSegments / ScanWalSegment), which checkpoints preserve up to the
/// minimum acknowledged LSN (RetireFloor).
///
/// Commit acknowledgement is semi-synchronous: WaitDurable blocks the
/// committer until every live standby has acknowledged the commit's LSN.
/// A standby silent past ack_timeout_millis is evicted (loudly) so a dead
/// standby degrades the primary to standalone durability instead of
/// freezing it; with no live standbys WaitDurable is a no-op.
///
/// Lock order: Wal::mu_ -> mu_ (the commit sink runs under the WAL mutex).
/// No method calls into the Wal or touches the disk while holding mu_.
class ReplicationManager {
 public:
  struct Options {
    /// Bytes of encoded groups the live ring retains.
    size_t ring_capacity_bytes = 4u << 20;
    /// Serve-side cap per kReplFrames response (stays far under the
    /// transport's 64 MiB frame cap; a batch always carries at least one
    /// whole group).
    size_t max_batch_bytes = 4u << 20;
    /// Server-side cap on a fetch's long-poll wait.
    int64_t max_wait_millis = 2'000;
    /// Semi-sync patience: a standby silent this long is evicted and no
    /// longer blocks commits. 0 disables eviction (commits wait forever
    /// for a registered standby — the chaos harness uses this).
    int64_t ack_timeout_millis = 10'000;
  };

  /// `wal` must outlive the manager. Installs the commit sink.
  explicit ReplicationManager(storage::Wal* wal);
  ReplicationManager(storage::Wal* wal, Options options);

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// Answers kReplSubscribe / kReplFrames / kReplHeartbeat / kPromote (the
  /// already-primary case — a standby's server intercepts kPromote before
  /// it gets here). Wired into DbServer::set_repl_handler.
  Result<exec::ResultSet> HandleRequest(const net::DbRequest& request);

  /// The commit-ack barrier (EngineHandle::set_commit_ack_barrier): blocks
  /// until every live standby acknowledged `lsn`, a standby got evicted for
  /// silence, or no standby is registered.
  Status WaitDurable(uint64_t lsn);

  /// Checkpoint floor (EngineHandle::set_wal_retire_floor): the minimum
  /// acknowledged LSN across registered standbys, UINT64_MAX with none.
  uint64_t RetireFloor() const;

  /// Registered standbys (live or not).
  int64_t standby_count() const;

  /// Merges a "replication" object (role, LSNs, per-standby lag) into a
  /// stats document and refreshes the repl.* registry gauges.
  void AugmentStats(Json* stats) const;

  void set_role(std::string role);
  std::string role() const;

  /// Wakes every long-poller and barrier waiter (server shutdown).
  void Shutdown();

 private:
  struct Standby {
    uint64_t acked_lsn = 0;
    int64_t last_seen_nanos = 0;
  };
  struct RingEntry {
    uint64_t first_lsn = 0;
    uint64_t last_lsn = 0;
    std::string frames;
  };

  /// The WAL commit sink: runs under the WAL mutex.
  void OnCommit(uint64_t first_lsn, uint64_t last_lsn,
                std::string_view frames);
  void AckLocked(const std::string& standby, uint64_t lsn);
  Result<ReplBatch> Fetch(const std::string& standby, uint64_t after_lsn,
                          int64_t wait_millis);
  /// Serves a batch from the segment files. Runs WITHOUT mu_ (disk I/O).
  Result<ReplBatch> CatchUpFromSegments(uint64_t after_lsn);

  storage::Wal* wal_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable frames_cv_;  // new groups (long-poll wakeup)
  std::condition_variable acks_cv_;    // new acks (WaitDurable wakeup)
  std::deque<RingEntry> ring_;
  size_t ring_bytes_ = 0;
  uint64_t last_appended_lsn_ = 0;  // mirror maintained by the sink
  std::map<std::string, Standby> standbys_;
  std::string role_ = "primary";
  bool shutdown_ = false;

  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* batches_sent_ = nullptr;
  obs::Counter* disk_catchups_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

}  // namespace ldv::repl

#endif  // LDV_REPL_PRIMARY_H_
