#include "repl/standby.h"

#include <chrono>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "storage/wal.h"
#include "util/strings.h"

namespace ldv::repl {

using storage::WalOp;
using storage::WalRecord;
using storage::WalRecordKind;

StandbyReplicator::StandbyReplicator(net::EngineHandle* engine,
                                     std::string primary_socket)
    : StandbyReplicator(engine, std::move(primary_socket), Options()) {}

StandbyReplicator::StandbyReplicator(net::EngineHandle* engine,
                                     std::string primary_socket,
                                     Options options)
    : engine_(engine),
      primary_socket_(std::move(primary_socket)),
      options_(std::move(options)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  batches_applied_ = reg.counter("repl.batches_applied");
  records_applied_ = reg.counter("repl.records_applied");
  reconnects_ = reg.counter("repl.stream_reconnects");
  // The standby resumes from its own durable log: everything recovery
  // replayed is already applied, so the stream starts right after it.
  applied_lsn_.store(engine_->wal()->last_appended_lsn(),
                     std::memory_order_release);
}

StandbyReplicator::~StandbyReplicator() { Stop(); }

void StandbyReplicator::Start() {
  if (started_.exchange(true)) return;
  engine_->set_read_only(true);
  LDV_LOG(Info) << "repl: standby '" << options_.standby_name
                << "' streaming from " << primary_socket_ << " (applied lsn "
                << applied_lsn() << ")";
  thread_ = std::thread([this] { Run(); });
}

void StandbyReplicator::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

uint64_t StandbyReplicator::Promote() {
  Stop();
  if (!promoted_.exchange(true)) {
    engine_->set_read_only(false);
    LDV_LOG(Warning) << "repl: standby '" << options_.standby_name
                     << "' promoted to primary at lsn " << applied_lsn();
  }
  return applied_lsn();
}

std::string StandbyReplicator::last_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return last_error_;
}

void StandbyReplicator::RecordError(const Status& status, bool fatal) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    last_error_ = status.ToString();
  }
  if (fatal) {
    fatal_.store(true, std::memory_order_release);
    LDV_LOG(Error) << "repl: standby apply stopped: " << status.ToString();
  }
}

void StandbyReplicator::Backoff() {
  const auto slice = std::chrono::milliseconds(10);
  auto remaining = std::chrono::milliseconds(options_.retry_backoff_millis);
  while (remaining.count() > 0 && !stop_.load(std::memory_order_acquire)) {
    const auto nap = std::min<std::chrono::milliseconds>(slice, remaining);
    std::this_thread::sleep_for(nap);
    remaining -= nap;
  }
}

void StandbyReplicator::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    // The chaos harness severs the stream here: drop the connection and
    // come back through a fresh subscribe (possibly far behind the ring,
    // forcing the primary's catch-up-from-segments path).
    if (Status severed = CheckFault("repl.stream"); !severed.ok()) {
      RecordError(severed, /*fatal=*/false);
      client_.reset();
      Backoff();
      continue;
    }
    if (client_ == nullptr) {
      client_ = net::RetryingDbClient::ForSocket(primary_socket_,
                                                 options_.fetch_policy);
      reconnects_->Add(1);
      Result<exec::ResultSet> hello_rs = client_->Execute(
          MakeSubscribeRequest(options_.standby_name, applied_lsn()));
      Result<ReplHello> hello =
          hello_rs.ok() ? ParseHelloResult(*hello_rs)
                        : Result<ReplHello>(hello_rs.status());
      if (!hello.ok()) {
        RecordError(hello.status(), /*fatal=*/false);
        client_.reset();
        Backoff();
        continue;
      }
      primary_lsn_.store(hello->primary_lsn, std::memory_order_release);
    }
    Result<exec::ResultSet> rs = client_->Execute(MakeFramesRequest(
        options_.standby_name, applied_lsn(), options_.poll_wait_millis));
    Result<ReplBatch> batch =
        rs.ok() ? ParseFramesResult(*rs) : Result<ReplBatch>(rs.status());
    if (!batch.ok()) {
      RecordError(batch.status(), /*fatal=*/false);
      client_.reset();
      Backoff();
      continue;
    }
    primary_lsn_.store(batch->primary_lsn, std::memory_order_release);
    if (batch->frames.empty()) continue;  // caught up; poll again
    if (Status applied = ApplyBatch(*batch); !applied.ok()) {
      // The local log must stay a prefix of the primary's; continuing past
      // a failed batch would diverge. Stop and surface the error.
      RecordError(applied, /*fatal=*/true);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      last_error_.clear();
    }
  }
}

Status StandbyReplicator::ApplyBatch(const ReplBatch& batch) {
  LDV_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                       storage::DecodeWalRecords(batch.frames));
  if (records.empty()) return Status::Ok();
  const uint64_t expected = applied_lsn() + 1;
  if (records.front().lsn != expected) {
    return Status::IOError(StrFormat(
        "replication stream gap: batch starts at lsn %llu, expected %llu",
        static_cast<unsigned long long>(records.front().lsn),
        static_cast<unsigned long long>(expected)));
  }
  // Durable before applied: a standby crash mid-apply recovers through the
  // ordinary WAL recovery path and replays exactly these records.
  LDV_RETURN_IF_ERROR(engine_->wal()->AppendRaw(
      batch.frames, records.front().lsn, records.back().lsn));
  LDV_RETURN_IF_ERROR(engine_->wal()->Sync(records.back().lsn));
  std::vector<WalOp> ops;
  for (const WalRecord& record : records) {
    switch (record.kind) {
      case WalRecordKind::kBegin:
        ops.clear();
        break;
      case WalRecordKind::kOp:
        ops.push_back(record.op);
        break;
      case WalRecordKind::kCommit:
        LDV_RETURN_IF_ERROR(engine_->ApplyReplicated(ops));
        ops.clear();
        applied_lsn_.store(record.lsn, std::memory_order_release);
        batches_applied_->Add(1);
        break;
    }
  }
  records_applied_->Add(static_cast<int64_t>(records.size()));
  return Status::Ok();
}

void StandbyReplicator::AugmentStats(Json* stats) const {
  const uint64_t applied = applied_lsn();
  const uint64_t primary = primary_lsn();
  const int64_t lag =
      primary > applied ? static_cast<int64_t>(primary - applied) : 0;
  Json repl = Json::MakeObject();
  repl.Set("role", Json::MakeString(promoted() ? "primary" : "standby"));
  repl.Set("primary_endpoint", Json::MakeString(primary_socket_));
  repl.Set("applied_lsn", Json::MakeInt(static_cast<int64_t>(applied)));
  repl.Set("primary_lsn", Json::MakeInt(static_cast<int64_t>(primary)));
  repl.Set("lag_lsn", Json::MakeInt(lag));
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    repl.Set("last_error", Json::MakeString(last_error_));
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.gauge("repl.applied_lsn")->Set(static_cast<int64_t>(applied));
  reg.gauge("repl.lag_lsn")->Set(lag);
  stats->Set("replication", std::move(repl));
}

}  // namespace ldv::repl
