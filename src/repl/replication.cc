#include "repl/replication.h"

namespace ldv::repl {

using storage::Column;
using storage::Schema;
using storage::Value;
using storage::ValueType;

net::DbRequest MakeSubscribeRequest(const std::string& standby,
                                    uint64_t applied_lsn) {
  net::DbRequest request;
  request.kind = net::RequestKind::kReplSubscribe;
  request.handle = standby;
  request.query_id = static_cast<int64_t>(applied_lsn);
  return request;
}

net::DbRequest MakeFramesRequest(const std::string& standby,
                                 uint64_t after_lsn, int64_t wait_millis) {
  net::DbRequest request;
  request.kind = net::RequestKind::kReplFrames;
  request.handle = standby;
  request.query_id = static_cast<int64_t>(after_lsn);
  request.timeout_millis = wait_millis;
  return request;
}

net::DbRequest MakeHeartbeatRequest(const std::string& standby,
                                    uint64_t applied_lsn) {
  net::DbRequest request;
  request.kind = net::RequestKind::kReplHeartbeat;
  request.handle = standby;
  request.query_id = static_cast<int64_t>(applied_lsn);
  return request;
}

exec::ResultSet MakeFramesResult(const ReplBatch& batch) {
  exec::ResultSet rs;
  rs.schema = Schema({Column{"frames", ValueType::kString},
                      Column{"last_lsn", ValueType::kInt64},
                      Column{"primary_lsn", ValueType::kInt64}});
  rs.rows.push_back({Value::Str(batch.frames),
                     Value::Int(static_cast<int64_t>(batch.last_lsn)),
                     Value::Int(static_cast<int64_t>(batch.primary_lsn))});
  rs.affected = 1;
  return rs;
}

Result<ReplBatch> ParseFramesResult(const exec::ResultSet& result) {
  if (result.rows.size() != 1 || result.rows[0].size() != 3 ||
      result.rows[0][0].type() != ValueType::kString ||
      result.rows[0][1].type() != ValueType::kInt64 ||
      result.rows[0][2].type() != ValueType::kInt64) {
    return Status::IOError("malformed replication frames response");
  }
  ReplBatch batch;
  batch.frames = result.rows[0][0].AsString();
  batch.last_lsn = static_cast<uint64_t>(result.rows[0][1].AsInt());
  batch.primary_lsn = static_cast<uint64_t>(result.rows[0][2].AsInt());
  return batch;
}

exec::ResultSet MakeHelloResult(const ReplHello& hello) {
  exec::ResultSet rs;
  rs.schema = Schema({Column{"primary_lsn", ValueType::kInt64},
                      Column{"role", ValueType::kString}});
  rs.rows.push_back({Value::Int(static_cast<int64_t>(hello.primary_lsn)),
                     Value::Str(hello.role)});
  rs.affected = 1;
  return rs;
}

Result<ReplHello> ParseHelloResult(const exec::ResultSet& result) {
  if (result.rows.size() != 1 || result.rows[0].size() != 2 ||
      result.rows[0][0].type() != ValueType::kInt64 ||
      result.rows[0][1].type() != ValueType::kString) {
    return Status::IOError("malformed replication hello response");
  }
  ReplHello hello;
  hello.primary_lsn = static_cast<uint64_t>(result.rows[0][0].AsInt());
  hello.role = result.rows[0][1].AsString();
  return hello;
}

exec::ResultSet MakePromoteResult(const std::string& role,
                                  uint64_t applied_lsn) {
  exec::ResultSet rs;
  rs.schema = Schema({Column{"role", ValueType::kString},
                      Column{"applied_lsn", ValueType::kInt64}});
  rs.rows.push_back(
      {Value::Str(role), Value::Int(static_cast<int64_t>(applied_lsn))});
  rs.affected = 1;
  return rs;
}

}  // namespace ldv::repl
