#ifndef LDV_REPL_STANDBY_H_
#define LDV_REPL_STANDBY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "net/db_client.h"
#include "net/retrying_db_client.h"
#include "obs/metrics.h"
#include "repl/replication.h"

namespace ldv::repl {

/// Standby side of WAL streaming replication (DESIGN.md §14): a background
/// thread that subscribes to the primary, long-polls kReplFrames, makes each
/// batch locally durable (Wal::AppendRaw + Sync — so a standby crash recovers
/// through the ordinary WAL recovery path), then applies it through the
/// engine's deterministic redo (EngineHandle::ApplyReplicated). The engine is
/// flipped read-only for the replicator's lifetime: SELECTs are served from
/// MVCC snapshots at the applied epoch, writes are rejected with the
/// "read-only standby" error clients fail over on.
///
/// A fetch after LSN N doubles as the acknowledgement of N, so the standby
/// only ever acks what it has durably appended *and* applied — the invariant
/// behind zero committed-data loss at failover. Promote() stops the apply
/// loop at a batch boundary (draining whatever was fetched), flips the
/// engine writable, and returns the applied LSN.
///
/// Fault point `repl.stream` severs the connection (the chaos harness uses
/// it to force catch-up-from-segments after the ring has moved on).
class StandbyReplicator {
 public:
  struct Options {
    /// Name this standby registers under on the primary.
    std::string standby_name = "standby";
    /// Long-poll wait per kReplFrames request.
    int64_t poll_wait_millis = 200;
    /// Sleep after a failed connect/fetch before trying again.
    int64_t retry_backoff_millis = 100;
    /// Transport policy for the stream connection. The deadline is kept
    /// short: the outer loop owns reconnection, a dead primary should not
    /// pin a fetch for the default 30 s.
    net::RetryPolicy fetch_policy = ShortFetchPolicy();
  };

  /// `engine` must have its WAL attached already and outlive the replicator.
  StandbyReplicator(net::EngineHandle* engine, std::string primary_socket);
  StandbyReplicator(net::EngineHandle* engine, std::string primary_socket,
                    Options options);
  ~StandbyReplicator();

  StandbyReplicator(const StandbyReplicator&) = delete;
  StandbyReplicator& operator=(const StandbyReplicator&) = delete;

  /// Flips the engine read-only and starts the streaming thread.
  void Start();

  /// Stops the streaming thread (waits for the in-flight batch to finish
  /// applying). Idempotent; the engine stays read-only.
  void Stop();

  /// Failover: drains the apply loop (Stop), flips the engine writable, and
  /// returns the applied LSN — every transaction the primary ever
  /// acknowledged is at or below it. Idempotent.
  uint64_t Promote();

  /// Last commit LSN durably applied locally.
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  /// Primary's last appended LSN as of the latest successful fetch.
  uint64_t primary_lsn() const {
    return primary_lsn_.load(std::memory_order_acquire);
  }
  bool promoted() const { return promoted_.load(std::memory_order_acquire); }
  /// Last stream/apply error ("" when healthy). A non-empty value with
  /// fatal() true means the apply loop stopped (LSN gap, apply failure).
  std::string last_error() const;
  bool fatal() const { return fatal_.load(std::memory_order_acquire); }

  /// Merges a "replication" object into a stats document and refreshes the
  /// repl.applied_lsn / repl.lag_lsn gauges.
  void AugmentStats(Json* stats) const;

 private:
  static net::RetryPolicy ShortFetchPolicy() {
    net::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.request_deadline_micros = 1'000'000;
    return policy;
  }

  void Run();
  /// Durably appends then applies one non-empty batch. Any error is fatal:
  /// the local log must stay a prefix of the primary's.
  Status ApplyBatch(const ReplBatch& batch);
  void RecordError(const Status& status, bool fatal);
  /// Sleeps retry_backoff_millis in small slices, watching stop_.
  void Backoff();

  net::EngineHandle* engine_;
  std::string primary_socket_;
  Options options_;

  std::unique_ptr<net::RetryingDbClient> client_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<bool> fatal_{false};
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> primary_lsn_{0};

  mutable std::mutex error_mu_;
  std::string last_error_;

  obs::Counter* batches_applied_ = nullptr;
  obs::Counter* records_applied_ = nullptr;
  obs::Counter* reconnects_ = nullptr;
};

}  // namespace ldv::repl

#endif  // LDV_REPL_STANDBY_H_
