#ifndef LDV_REPL_REPLICATION_H_
#define LDV_REPL_REPLICATION_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "exec/executor.h"
#include "net/protocol.h"

namespace ldv::repl {

/// One replication stream payload: encoded WAL record frames (the exact
/// bytes EncodeWalRecord produced on the primary, whole commit groups only)
/// plus the LSN bookkeeping the standby needs. An empty `frames` means
/// "caught up — nothing after `after_lsn` yet".
struct ReplBatch {
  std::string frames;
  uint64_t last_lsn = 0;     // last record LSN in `frames`; 0 when empty
  uint64_t primary_lsn = 0;  // primary's last appended LSN at serve time
};

/// Primary state returned by subscribe/heartbeat.
struct ReplHello {
  uint64_t primary_lsn = 0;
  std::string role;  // "primary" | "standby"
};

/// The replication verbs ride the ordinary request frame: `handle` names
/// the standby, `query_id` carries its LSN (applied/after), and
/// `timeout_millis` the long-poll wait. Responses are ordinary ResultSets.
net::DbRequest MakeSubscribeRequest(const std::string& standby,
                                    uint64_t applied_lsn);
net::DbRequest MakeFramesRequest(const std::string& standby,
                                 uint64_t after_lsn, int64_t wait_millis);
net::DbRequest MakeHeartbeatRequest(const std::string& standby,
                                    uint64_t applied_lsn);

/// Response row shapes. kReplFrames: (frames, last_lsn, primary_lsn);
/// kReplSubscribe / kReplHeartbeat: (primary_lsn, role); kPromote:
/// (role, applied_lsn).
exec::ResultSet MakeFramesResult(const ReplBatch& batch);
Result<ReplBatch> ParseFramesResult(const exec::ResultSet& result);
exec::ResultSet MakeHelloResult(const ReplHello& hello);
Result<ReplHello> ParseHelloResult(const exec::ResultSet& result);
exec::ResultSet MakePromoteResult(const std::string& role,
                                  uint64_t applied_lsn);

}  // namespace ldv::repl

#endif  // LDV_REPL_REPLICATION_H_
