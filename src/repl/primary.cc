#include "repl/primary.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/logging.h"
#include "util/fsutil.h"
#include "util/strings.h"

namespace ldv::repl {

using storage::WalRecord;
using storage::WalRecordKind;

ReplicationManager::ReplicationManager(storage::Wal* wal)
    : ReplicationManager(wal, Options()) {}

ReplicationManager::ReplicationManager(storage::Wal* wal, Options options)
    : wal_(wal), options_(options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  bytes_sent_ = reg.counter("repl.bytes_sent");
  batches_sent_ = reg.counter("repl.batches_sent");
  disk_catchups_ = reg.counter("repl.disk_catchup_batches");
  evictions_ = reg.counter("repl.standby_evictions");
  last_appended_lsn_ = wal_->last_appended_lsn();
  wal_->set_commit_sink(
      [this](uint64_t first_lsn, uint64_t last_lsn, std::string_view frames) {
        OnCommit(first_lsn, last_lsn, frames);
      });
}

void ReplicationManager::OnCommit(uint64_t first_lsn, uint64_t last_lsn,
                                  std::string_view frames) {
  std::lock_guard<std::mutex> lock(mu_);
  RingEntry entry;
  entry.first_lsn = first_lsn;
  entry.last_lsn = last_lsn;
  entry.frames.assign(frames.data(), frames.size());
  ring_bytes_ += entry.frames.size();
  ring_.push_back(std::move(entry));
  while (ring_bytes_ > options_.ring_capacity_bytes && !ring_.empty()) {
    ring_bytes_ -= ring_.front().frames.size();
    ring_.pop_front();
  }
  last_appended_lsn_ = std::max(last_appended_lsn_, last_lsn);
  frames_cv_.notify_all();
}

void ReplicationManager::AckLocked(const std::string& standby, uint64_t lsn) {
  Standby& entry = standbys_[standby];
  entry.acked_lsn = std::max(entry.acked_lsn, lsn);
  entry.last_seen_nanos = NowNanos();
  acks_cv_.notify_all();
}

Result<exec::ResultSet> ReplicationManager::HandleRequest(
    const net::DbRequest& request) {
  const std::string& standby =
      request.handle.empty() ? std::string("standby") : request.handle;
  const uint64_t lsn = static_cast<uint64_t>(request.query_id);
  switch (request.kind) {
    case net::RequestKind::kReplSubscribe: {
      ReplHello hello;
      {
        std::lock_guard<std::mutex> lock(mu_);
        AckLocked(standby, lsn);
        hello.primary_lsn = last_appended_lsn_;
        hello.role = role_;
      }
      LDV_LOG(Info) << "repl: standby '" << standby << "' subscribed at lsn "
                    << lsn;
      return MakeHelloResult(hello);
    }
    case net::RequestKind::kReplHeartbeat: {
      ReplHello hello;
      std::lock_guard<std::mutex> lock(mu_);
      AckLocked(standby, lsn);
      hello.primary_lsn = last_appended_lsn_;
      hello.role = role_;
      return MakeHelloResult(hello);
    }
    case net::RequestKind::kReplFrames: {
      const int64_t wait_millis =
          std::min<int64_t>(std::max<int64_t>(request.timeout_millis, 0),
                            options_.max_wait_millis);
      LDV_ASSIGN_OR_RETURN(ReplBatch batch, Fetch(standby, lsn, wait_millis));
      return MakeFramesResult(batch);
    }
    case net::RequestKind::kPromote: {
      // Only reachable on a server that is already primary (a standby's
      // server intercepts kPromote and drains its replicator first):
      // promotion is idempotent.
      std::lock_guard<std::mutex> lock(mu_);
      return MakePromoteResult(role_, last_appended_lsn_);
    }
    default:
      return Status::InvalidArgument("not a replication request");
  }
}

Result<ReplBatch> ReplicationManager::Fetch(const std::string& standby,
                                            uint64_t after_lsn,
                                            int64_t wait_millis) {
  const int64_t deadline_nanos = NowNanos() + wait_millis * 1'000'000;
  std::unique_lock<std::mutex> lock(mu_);
  // A fetch after LSN N is also the standby's acknowledgement of N.
  AckLocked(standby, after_lsn);
  while (true) {
    if (last_appended_lsn_ > after_lsn) {
      if (!ring_.empty() && ring_.front().first_lsn <= after_lsn + 1) {
        ReplBatch batch;
        batch.primary_lsn = last_appended_lsn_;
        for (const RingEntry& entry : ring_) {
          if (entry.last_lsn <= after_lsn) continue;
          if (batch.frames.empty() && entry.first_lsn != after_lsn + 1) {
            break;  // ack mid-group / ring gap: serve from disk instead
          }
          if (!batch.frames.empty() &&
              batch.frames.size() + entry.frames.size() >
                  options_.max_batch_bytes) {
            break;
          }
          batch.frames += entry.frames;
          batch.last_lsn = entry.last_lsn;
        }
        if (!batch.frames.empty()) {
          bytes_sent_->Add(static_cast<int64_t>(batch.frames.size()));
          batches_sent_->Add(1);
          return batch;
        }
      }
      // The ring's tail has moved past this standby: serve the gap from the
      // segment files. Disk I/O runs without the manager mutex.
      const uint64_t primary_lsn = last_appended_lsn_;
      lock.unlock();
      Result<ReplBatch> batch = CatchUpFromSegments(after_lsn);
      if (batch.ok()) {
        batch->primary_lsn = std::max(batch->primary_lsn, primary_lsn);
        if (!batch->frames.empty()) {
          bytes_sent_->Add(static_cast<int64_t>(batch->frames.size()));
          batches_sent_->Add(1);
          disk_catchups_->Add(1);
        }
      }
      return batch;
    }
    if (shutdown_ || NowNanos() >= deadline_nanos) {
      ReplBatch empty;
      empty.primary_lsn = last_appended_lsn_;
      return empty;
    }
    frames_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

Result<ReplBatch> ReplicationManager::CatchUpFromSegments(uint64_t after_lsn) {
  LDV_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                       storage::ListWalSegments(wal_->dir()));
  ReplBatch batch;
  std::string group_bytes;
  uint64_t group_first = 0;
  uint64_t group_last = 0;
  for (const std::string& file : segments) {
    // Tail damage is tolerated: the valid prefix is scanned, and only whole
    // begin/op.../commit groups are streamed — a torn trailing group (or
    // one mid-append on the live segment) is simply not sent yet.
    LDV_ASSIGN_OR_RETURN(storage::WalSegmentScan scan,
                         storage::ScanWalSegment(JoinPath(wal_->dir(), file)));
    for (const WalRecord& record : scan.records) {
      if (record.kind == WalRecordKind::kBegin) {
        group_bytes.clear();
        group_first = record.lsn;
      }
      group_bytes += storage::EncodeWalRecord(record);
      group_last = record.lsn;
      if (record.kind != WalRecordKind::kCommit) continue;
      if (group_first > after_lsn) {
        if (batch.frames.empty() && group_first != after_lsn + 1) {
          return Status::NotFound(StrFormat(
              "standby too far behind: needs lsn %llu but the oldest "
              "retained group starts at %llu (segments were retired); "
              "re-seed the standby from a base copy",
              static_cast<unsigned long long>(after_lsn + 1),
              static_cast<unsigned long long>(group_first)));
        }
        if (!batch.frames.empty() &&
            batch.frames.size() + group_bytes.size() >
                options_.max_batch_bytes) {
          return batch;  // full: the standby fetches the rest next round
        }
        batch.frames += group_bytes;
        batch.last_lsn = group_last;
      }
      group_bytes.clear();
    }
  }
  return batch;
}

Status ReplicationManager::WaitDurable(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (standbys_.empty()) return Status::Ok();
    if (options_.ack_timeout_millis > 0) {
      const int64_t now = NowNanos();
      const int64_t patience = options_.ack_timeout_millis * 1'000'000;
      for (auto it = standbys_.begin(); it != standbys_.end();) {
        if (now - it->second.last_seen_nanos > patience) {
          LDV_LOG(Warning)
              << "repl: evicting standby '" << it->first << "' (silent for "
              << (now - it->second.last_seen_nanos) / 1'000'000
              << " ms); commits no longer wait for it";
          evictions_->Add(1);
          it = standbys_.erase(it);
        } else {
          ++it;
        }
      }
      if (standbys_.empty()) return Status::Ok();
    }
    uint64_t min_acked = UINT64_MAX;
    for (const auto& [name, standby] : standbys_) {
      min_acked = std::min(min_acked, standby.acked_lsn);
    }
    if (min_acked >= lsn) return Status::Ok();
    if (shutdown_) {
      return Status::IOError(
          "replication shut down before standbys acknowledged the commit");
    }
    acks_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

uint64_t ReplicationManager::RetireFloor() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (standbys_.empty()) return UINT64_MAX;
  uint64_t min_acked = UINT64_MAX;
  for (const auto& [name, standby] : standbys_) {
    min_acked = std::min(min_acked, standby.acked_lsn);
  }
  return min_acked == UINT64_MAX ? UINT64_MAX : min_acked + 1;
}

int64_t ReplicationManager::standby_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(standbys_.size());
}

void ReplicationManager::AugmentStats(Json* stats) const {
  Json repl = Json::MakeObject();
  int64_t standby_count = 0;
  int64_t max_lag = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    repl.Set("role", Json::MakeString(role_));
    repl.Set("last_appended_lsn",
             Json::MakeInt(static_cast<int64_t>(last_appended_lsn_)));
    Json list = Json::MakeArray();
    const int64_t now = NowNanos();
    for (const auto& [name, standby] : standbys_) {
      const int64_t lag = static_cast<int64_t>(last_appended_lsn_) -
                          static_cast<int64_t>(standby.acked_lsn);
      max_lag = std::max(max_lag, lag);
      Json item = Json::MakeObject();
      item.Set("standby", Json::MakeString(name));
      item.Set("acked_lsn",
               Json::MakeInt(static_cast<int64_t>(standby.acked_lsn)));
      item.Set("lag_lsn", Json::MakeInt(lag));
      item.Set("last_seen_ms_ago",
               Json::MakeInt((now - standby.last_seen_nanos) / 1'000'000));
      list.Append(std::move(item));
      ++standby_count;
    }
    repl.Set("standbys", std::move(list));
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.gauge("repl.standbys")->Set(standby_count);
  reg.gauge("repl.standby_lag_lsn")->Set(max_lag);
  stats->Set("replication", std::move(repl));
}

void ReplicationManager::set_role(std::string role) {
  std::lock_guard<std::mutex> lock(mu_);
  role_ = std::move(role);
}

std::string ReplicationManager::role() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

void ReplicationManager::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  frames_cv_.notify_all();
  acks_cv_.notify_all();
}

}  // namespace ldv::repl
