#ifndef LDV_OBS_SPAN_H_
#define LDV_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace ldv::obs {

/// One finished span, in Chrome trace_event terms a "complete" (ph:"X")
/// event. Timestamps are CLOCK_MONOTONIC microseconds, so events recorded by
/// separate processes on the same host share a timeline.
struct SpanEvent {
  std::string name;
  std::string category;
  int64_t start_micros = 0;
  int64_t duration_micros = 0;
  int64_t span_id = 0;
  int64_t parent_id = 0;  // 0 = root
  int32_t pid = 0;
  int32_t tid = 0;
  std::map<std::string, std::string> args;
};

/// Process-wide span sink. Disabled by default: Span construction then costs
/// one relaxed atomic load and no allocation. Enable() arms recording and
/// tags log lines with the active span id (see common/logging).
class TraceRecorder {
 public:
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void Enable();
  /// Stops recording; buffered events are kept until Clear().
  static void Disable();
  static void Clear();

  static void Record(SpanEvent event);
  static std::vector<SpanEvent> Events();

  /// Chrome trace_event JSON: {"traceEvents": [{name, cat, ph:"X", ts, dur,
  /// pid, tid, id, args}...]}. Loadable in chrome://tracing / Perfetto.
  static Json ExportChromeTrace();
  /// Merges externally collected events (e.g. fetched from a server over the
  /// Stats protocol) with the local buffer and writes one trace file.
  static Status WriteTo(const std::string& path,
                        const std::vector<SpanEvent>& extra_events = {});

  /// Re-hydrates events parsed from an ExportChromeTrace() document; entries
  /// that do not look like span events are skipped.
  static std::vector<SpanEvent> EventsFromJson(const Json& trace);

  /// Span id of the innermost open span on this thread (0 when none); used
  /// by the logging prefix and for parenting.
  static int64_t CurrentSpanId();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII timed span. Records a SpanEvent on destruction when the recorder is
/// enabled at construction time; nests under the innermost live Span on the
/// same thread. Cheap no-op otherwise.
class Span {
 public:
  Span(std::string name, std::string category);
  explicit Span(std::string name) : Span(std::move(name), "ldv") {}
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value annotation (shown under "args" in the viewer).
  /// No-op when the span is not being recorded.
  void AddArg(const std::string& key, const std::string& value);

  bool recording() const { return recording_; }
  int64_t id() const { return event_.span_id; }

 private:
  bool recording_ = false;
  int64_t start_nanos_ = 0;
  int64_t saved_parent_ = 0;
  SpanEvent event_;
};

}  // namespace ldv::obs

#endif  // LDV_OBS_SPAN_H_
