#include "obs/profile.h"

#include <cstdio>

namespace ldv::obs {

namespace {

std::string FormatMillis(int64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(nanos) / 1e6);
  return buf;
}

/// rows_out over wall time as a human row rate ("1.2M rows/s").
std::string FormatRate(int64_t rows, int64_t nanos) {
  const double per_sec =
      static_cast<double>(rows) * 1e9 / static_cast<double>(nanos);
  char buf[32];
  if (per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", per_sec / 1e6);
  } else if (per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", per_sec);
  }
  return std::string(buf) + " rows/s";
}

Json OperatorToJson(const OperatorProfile& op) {
  Json node = Json::MakeObject();
  node.Set("operator", Json::MakeString(op.label));
  if (!op.detail.empty()) node.Set("detail", Json::MakeString(op.detail));
  node.Set("rows_out", Json::MakeInt(op.rows_out));
  node.Set("invocations", Json::MakeInt(op.invocations));
  node.Set("wall_nanos", Json::MakeInt(op.wall_nanos));
  if (op.build_nanos > 0 || op.probe_nanos > 0) {
    node.Set("build_nanos", Json::MakeInt(op.build_nanos));
    node.Set("probe_nanos", Json::MakeInt(op.probe_nanos));
  }
  if (op.parallel_morsels > 0) {
    node.Set("parallel_morsels", Json::MakeInt(op.parallel_morsels));
    node.Set("parallel_workers", Json::MakeInt(op.parallel_workers));
    node.Set("cpu_nanos", Json::MakeInt(op.cpu_nanos));
  }
  if (op.vector_batches > 0 || op.row_fallbacks > 0) {
    node.Set("vector_batches", Json::MakeInt(op.vector_batches));
    node.Set("row_fallbacks", Json::MakeInt(op.row_fallbacks));
  }
  if (!op.children.empty()) {
    Json children = Json::MakeArray();
    for (const OperatorProfile& child : op.children) {
      children.Append(OperatorToJson(child));
    }
    node.Set("children", std::move(children));
  }
  return node;
}

void RenderOperator(const OperatorProfile& op, bool analyze, int depth,
                    std::vector<std::string>* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += op.label;
  if (!op.detail.empty()) line += " (" + op.detail + ")";
  if (analyze) {
    line += "  rows=" + std::to_string(op.rows_out);
    line += " time=" + FormatMillis(op.wall_nanos);
    if (op.build_nanos > 0 || op.probe_nanos > 0) {
      line += " build=" + FormatMillis(op.build_nanos);
      line += " probe=" + FormatMillis(op.probe_nanos);
    }
    if (op.parallel_morsels > 0) {
      line += " workers=" + std::to_string(op.parallel_workers);
      line += " morsels=" + std::to_string(op.parallel_morsels);
      line += " cpu=" + FormatMillis(op.cpu_nanos);
    }
    if (op.rows_out > 0 && op.wall_nanos > 0) {
      line += " rate=" + FormatRate(op.rows_out, op.wall_nanos);
    }
    if (op.vector_batches > 0) {
      line += " batches=" + std::to_string(op.vector_batches) +
              " [vectorized]";
    } else if (op.row_fallbacks > 0) {
      line += " [row-fallback]";
    }
  }
  out->push_back(std::move(line));
  for (const OperatorProfile& child : op.children) {
    RenderOperator(child, analyze, depth + 1, out);
  }
}

}  // namespace

Json QueryProfile::ToJson() const {
  Json root_json = Json::MakeObject();
  root_json.Set("plan", OperatorToJson(root));
  root_json.Set("total_nanos", Json::MakeInt(total_nanos));
  root_json.Set("rows_returned", Json::MakeInt(rows_returned));
  return root_json;
}

std::vector<std::string> QueryProfile::ToTextLines(bool analyze) const {
  std::vector<std::string> lines;
  RenderOperator(root, analyze, 0, &lines);
  if (analyze) {
    lines.push_back("Total: rows=" + std::to_string(rows_returned) +
                    " time=" + FormatMillis(total_nanos));
  }
  return lines;
}

}  // namespace ldv::obs
