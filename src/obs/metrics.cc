#include "obs/metrics.h"

#include <algorithm>

#include "common/fault.h"
#include "common/logging.h"
#include "util/fsutil.h"

namespace ldv::obs {

namespace {

/// Maps the calling thread onto a fixed shard. Thread ordinals are assigned
/// once per thread; kMetricShards is a power of two so the mask is cheap.
int ShardIndex() {
  static std::atomic<int> next_ordinal{0};
  thread_local const int ordinal =
      next_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal & (kMetricShards - 1);
}

static_assert((kMetricShards & (kMetricShards - 1)) == 0,
              "kMetricShards must be a power of two");

}  // namespace

void Counter::Add(int64_t delta) {
  shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  LDV_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  const size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<int64_t>[]>(buckets);
    for (size_t i = 0; i < buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(int64_t value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& shard = shards_[ShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

const std::vector<int64_t>& LatencyBucketsMicros() {
  static const auto* buckets = new std::vector<int64_t>{
      1,      2,      5,       10,      20,      50,      100,     200,
      500,    1000,   2000,    5000,    10000,   20000,   50000,   100000,
      200000, 500000, 1000000, 2000000, 5000000, 10000000};
  return *buckets;
}

Json MetricsSnapshot::ToJson() const {
  Json root = Json::MakeObject();
  Json counters_json = Json::MakeObject();
  for (const auto& [name, value] : counters) {
    counters_json.Set(name, Json::MakeInt(value));
  }
  root.Set("counters", std::move(counters_json));
  Json gauges_json = Json::MakeObject();
  for (const auto& [name, value] : gauges) {
    gauges_json.Set(name, Json::MakeInt(value));
  }
  root.Set("gauges", std::move(gauges_json));
  Json histograms_json = Json::MakeObject();
  for (const auto& [name, data] : histograms) {
    Json hist = Json::MakeObject();
    Json buckets = Json::MakeArray();
    for (size_t i = 0; i < data.counts.size(); ++i) {
      Json bucket = Json::MakeObject();
      if (i < data.bounds.size()) {
        bucket.Set("le", Json::MakeInt(data.bounds[i]));
      } else {
        bucket.Set("le", Json::MakeString("+Inf"));
      }
      bucket.Set("count", Json::MakeInt(data.counts[i]));
      buckets.Append(std::move(bucket));
    }
    hist.Set("buckets", std::move(buckets));
    hist.Set("count", Json::MakeInt(data.total_count));
    hist.Set("sum", Json::MakeInt(data.sum));
    histograms_json.Set(name, std::move(hist));
  }
  root.Set("histograms", std::move(histograms_json));
  return root;
}

std::string MetricsSnapshot::DeltaReport(const MetricsSnapshot& before) const {
  std::string out;
  auto prior_counter = [&before](const std::string& name) {
    auto it = before.counters.find(name);
    return it == before.counters.end() ? int64_t{0} : it->second;
  };
  for (const auto& [name, value] : counters) {
    int64_t delta = value - prior_counter(name);
    if (delta == 0) continue;
    out += "  " + name + ": +" + std::to_string(delta) + " (total " +
           std::to_string(value) + ")\n";
  }
  for (const auto& [name, data] : histograms) {
    int64_t prior_count = 0;
    int64_t prior_sum = 0;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      prior_count = it->second.total_count;
      prior_sum = it->second.sum;
    }
    int64_t count_delta = data.total_count - prior_count;
    if (count_delta == 0) continue;
    int64_t sum_delta = data.sum - prior_sum;
    out += "  " + name + ": +" + std::to_string(count_delta) + " obs, mean " +
           std::to_string(sum_delta / count_delta) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();  // leaked: outlives threads
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<int64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.counts = histogram->BucketCounts();
    data.total_count = histogram->TotalCount();
    data.sum = histogram->Sum();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void CaptureFaultInjectorMetrics(MetricsRegistry* registry) {
  for (const FaultPointStats& stats : FaultInjector::Instance().PointStats()) {
    registry->gauge("fault." + stats.point + ".calls")->Set(stats.calls);
    registry->gauge("fault." + stats.point + ".injected")->Set(stats.injected);
  }
}

Status WriteGlobalMetrics(const std::string& path) {
  CaptureFaultInjectorMetrics(&MetricsRegistry::Global());
  return WriteStringToFile(path,
                           MetricsRegistry::Global().Snapshot().ToJson().Dump(
                               /*pretty=*/true) +
                               "\n");
}

}  // namespace ldv::obs
