#ifndef LDV_OBS_METRICS_H_
#define LDV_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace ldv::obs {

/// Shards per hot-path metric. Writers pick a shard by thread ordinal, so
/// concurrent threads rarely contend on the same cache line; readers sum.
inline constexpr int kMetricShards = 8;

/// Monotone event count. Add() is a single relaxed atomic increment on the
/// writer's shard — safe on any hot path.
class Counter {
 public:
  void Add(int64_t delta = 1);
  int64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-written instantaneous value (queue depth, active connections, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Observe() is a binary search
/// plus two relaxed increments on the writer's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Per-bucket totals summed over shards; size() == bounds().size() + 1.
  std::vector<int64_t> BucketCounts() const;
  int64_t TotalCount() const;
  int64_t Sum() const;

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<int64_t>[]> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
  };
  std::vector<int64_t> bounds_;
  Shard shards_[kMetricShards];
};

/// Default latency bucket bounds in microseconds: 1us .. 10s, roughly
/// logarithmic (1-2-5 per decade).
const std::vector<int64_t>& LatencyBucketsMicros();

/// Point-in-time copy of every registered metric, taken while writers keep
/// running (each individual value is an atomic read; totals are monotone).
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<int64_t> bounds;
    std::vector<int64_t> counts;  // bounds.size() + 1 entries (last = +inf)
    int64_t total_count = 0;
    int64_t sum = 0;
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {"buckets": [{"le": bound, "count": n}...], "count": n, "sum": n}}}
  Json ToJson() const;

  /// Human-readable per-metric delta vs `before` (counters and histogram
  /// totals that changed); empty string when nothing moved.
  std::string DeltaReport(const MetricsSnapshot& before) const;
};

/// Thread-safe name -> metric registry. Lookup takes a mutex, so hot paths
/// must resolve their Counter*/Histogram* once and cache the pointer;
/// returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// Get-or-create; `bounds` is only used on first creation.
  Histogram* histogram(std::string_view name,
                       const std::vector<int64_t>& bounds);
  Histogram* latency_histogram(std::string_view name) {
    return histogram(name, LatencyBucketsMicros());
  }

  MetricsSnapshot Snapshot() const;

  /// Drops every metric (tests only; outstanding pointers dangle).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Mirrors the fault injector's per-point call/injection counts into
/// `registry` as gauges `fault.<point>.calls` / `fault.<point>.injected`,
/// so fault-storm tests and metrics dumps can assert on injection coverage.
void CaptureFaultInjectorMetrics(MetricsRegistry* registry);

/// Snapshots Global() (fault counters included) and writes the JSON to
/// `path`.
Status WriteGlobalMetrics(const std::string& path);

}  // namespace ldv::obs

#endif  // LDV_OBS_METRICS_H_
