#include "obs/span.h"

#include <unistd.h>

#include <mutex>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "util/fsutil.h"

namespace ldv::obs {

namespace {

struct RecorderState {
  std::mutex mu;
  std::vector<SpanEvent> events;
};

RecorderState* State() {
  static auto* state = new RecorderState();  // leaked: outlives all threads
  return state;
}

std::atomic<int64_t> g_next_span_id{1};
thread_local int64_t t_current_span_id = 0;

Json EventToJson(const SpanEvent& event) {
  Json e = Json::MakeObject();
  e.Set("name", Json::MakeString(event.name));
  e.Set("cat", Json::MakeString(event.category));
  e.Set("ph", Json::MakeString("X"));
  e.Set("ts", Json::MakeInt(event.start_micros));
  e.Set("dur", Json::MakeInt(event.duration_micros));
  e.Set("pid", Json::MakeInt(event.pid));
  e.Set("tid", Json::MakeInt(event.tid));
  e.Set("id", Json::MakeInt(event.span_id));
  // Non-standard field; trace viewers ignore it, EventsFromJson round-trips
  // it so nesting survives a serialize/merge cycle.
  e.Set("parent_id", Json::MakeInt(event.parent_id));
  Json args = Json::MakeObject();
  for (const auto& [key, value] : event.args) {
    args.Set(key, Json::MakeString(value));
  }
  e.Set("args", std::move(args));
  return e;
}

}  // namespace

std::atomic<bool> TraceRecorder::enabled_{false};

void TraceRecorder::Enable() {
  SetLogSpanIdProvider(&TraceRecorder::CurrentSpanId);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  SetLogSpanIdProvider(nullptr);
}

void TraceRecorder::Clear() {
  RecorderState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  state->events.clear();
}

void TraceRecorder::Record(SpanEvent event) {
  RecorderState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  state->events.push_back(std::move(event));
}

std::vector<SpanEvent> TraceRecorder::Events() {
  RecorderState* state = State();
  std::lock_guard<std::mutex> lock(state->mu);
  return state->events;
}

Json TraceRecorder::ExportChromeTrace() {
  Json root = Json::MakeObject();
  Json events = Json::MakeArray();
  for (const SpanEvent& event : Events()) {
    events.Append(EventToJson(event));
  }
  root.Set("traceEvents", std::move(events));
  return root;
}

Status TraceRecorder::WriteTo(const std::string& path,
                              const std::vector<SpanEvent>& extra_events) {
  Json root = Json::MakeObject();
  Json events = Json::MakeArray();
  for (const SpanEvent& event : Events()) {
    events.Append(EventToJson(event));
  }
  for (const SpanEvent& event : extra_events) {
    events.Append(EventToJson(event));
  }
  root.Set("traceEvents", std::move(events));
  return WriteStringToFile(path, root.Dump(/*pretty=*/true) + "\n");
}

std::vector<SpanEvent> TraceRecorder::EventsFromJson(const Json& trace) {
  std::vector<SpanEvent> events;
  const Json* array = trace.Find("traceEvents");
  if (array == nullptr || !array->is_array()) return events;
  for (const Json& e : array->AsArray()) {
    if (!e.is_object()) continue;
    SpanEvent event;
    event.name = e.GetString("name", "");
    event.category = e.GetString("cat", "");
    event.start_micros = e.GetInt("ts", 0);
    event.duration_micros = e.GetInt("dur", 0);
    event.pid = static_cast<int32_t>(e.GetInt("pid", 0));
    event.tid = static_cast<int32_t>(e.GetInt("tid", 0));
    event.span_id = e.GetInt("id", 0);
    event.parent_id = e.GetInt("parent_id", 0);
    const Json* args = e.Find("args");
    if (args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->AsObject()) {
        if (value.type() == Json::Type::kString) {
          event.args[key] = value.AsString();
        }
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

int64_t TraceRecorder::CurrentSpanId() { return t_current_span_id; }

Span::Span(std::string name, std::string category) {
  if (!TraceRecorder::enabled()) return;
  recording_ = true;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.parent_id = t_current_span_id;
  event_.pid = static_cast<int32_t>(::getpid());
  event_.tid = LogThreadOrdinal();
  saved_parent_ = t_current_span_id;
  t_current_span_id = event_.span_id;
  start_nanos_ = NowNanos();
}

Span::~Span() {
  if (!recording_) return;
  const int64_t end_nanos = NowNanos();
  event_.start_micros = start_nanos_ / 1000;
  event_.duration_micros = (end_nanos - start_nanos_) / 1000;
  t_current_span_id = saved_parent_;
  TraceRecorder::Record(std::move(event_));
}

void Span::AddArg(const std::string& key, const std::string& value) {
  if (!recording_) return;
  event_.args[key] = value;
}

}  // namespace ldv::obs
