#ifndef LDV_OBS_PROFILE_H_
#define LDV_OBS_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"

namespace ldv::obs {

/// Execution statistics for one plan operator, collected when a query runs
/// with profiling enabled (EXPLAIN ANALYZE or ExecOptions::profile).
struct OperatorProfile {
  std::string label;   // "HashJoin", "Scan", ...
  std::string detail;  // operator-specific: table name, predicate, ...
  int64_t rows_out = 0;
  int64_t invocations = 0;
  int64_t wall_nanos = 0;
  // Join-only split of wall_nanos; both stay 0 for other operators and for
  // nested-loop fallback probes that never build a hash table.
  int64_t build_nanos = 0;
  int64_t probe_nanos = 0;
  // Morsel-parallel operators only (all 0 on the serial path): morsels
  // fanned out, the degree of parallelism used, and worker CPU time summed
  // across threads — against wall_nanos this is the wall/CPU split.
  int64_t parallel_morsels = 0;
  int64_t parallel_workers = 0;
  int64_t cpu_nanos = 0;
  // Vectorized columnar execution (DESIGN.md §15): batches this operator
  // processed through its kernels, and the times it produced rows without
  // running any kernel (visible in EXPLAIN ANALYZE as [vectorized] vs
  // [row-fallback]).
  int64_t vector_batches = 0;
  int64_t row_fallbacks = 0;
  std::vector<OperatorProfile> children;
};

/// Whole-query profile attached to a ResultSet by EXPLAIN ANALYZE.
struct QueryProfile {
  OperatorProfile root;
  int64_t total_nanos = 0;
  int64_t rows_returned = 0;

  Json ToJson() const;

  /// Postgres-style rendering, one line per operator:
  ///   HashJoin (emp.dept_id = dept.id)  rows=42 time=1.234ms build=0.2ms
  ///     Scan emp  rows=100 time=0.5ms
  /// `analyze` = false omits the runtime columns (plain EXPLAIN).
  std::vector<std::string> ToTextLines(bool analyze) const;
};

}  // namespace ldv::obs

#endif  // LDV_OBS_PROFILE_H_
