#ifndef LDV_LDV_AUDITOR_H_
#define LDV_LDV_AUDITOR_H_

#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "exec/executor.h"
#include "ldv/app.h"
#include "ldv/manifest.h"
#include "net/db_client.h"
#include "net/retrying_db_client.h"
#include "obs/metrics.h"
#include "os/sim_process.h"
#include "os/vfs.h"
#include "storage/database.h"
#include "trace/graph.h"

namespace ldv {

class AuditingDbClient;

/// Options for one audited run (the `ldv-audit` command of §IX).
struct AuditOptions {
  PackageMode mode = PackageMode::kServerIncluded;
  /// Output package directory (created; must not contain a package).
  std::string package_dir;
  /// Sandbox root containing the application's input files.
  std::string sandbox_root;
  /// Host path of the DB server binary to embed (server-included/PTU/VMI).
  /// Empty: a small deterministic placeholder blob is written instead (and
  /// noted in the manifest), so audits work from any build layout.
  std::string server_binary_path;
  /// Create per-result-tuple trace nodes (rich trace for provenance
  /// queries). Disable for large benchmark workloads where the §VII-D
  /// streaming persistence path alone decides package contents.
  bool record_tuple_nodes = true;
  /// Bytes of the synthetic VM base image (vm-image mode). Defaults to the
  /// paper's 8.2 GB scaled by 1/100 — see DESIGN.md substitution #5.
  int64_t vm_base_image_bytes = 82LL * 1000 * 1000;
  /// When set, audited DB connections go through a real Unix-domain socket
  /// to a DbServer at this path (the paper's client/server deployment)
  /// instead of the in-process engine. The server must serve the same
  /// database passed to the Auditor.
  std::string db_socket_path;
  /// Socket connections are wrapped in a RetryingDbClient with this policy,
  /// so transient transport failures (connection resets, server restarts,
  /// injected faults) do not abort the audited run. Set
  /// `db_retry.max_attempts = 1` to disable retries.
  net::RetryPolicy db_retry;
};

/// Statistics of one audited run.
struct AuditReport {
  std::string package_dir;
  int64_t statements_audited = 0;
  int64_t tuples_persisted = 0;
  int64_t files_copied = 0;
  int64_t processes = 0;
  int64_t trace_nodes = 0;
  int64_t trace_edges = 0;
};

/// Monitors one application execution (paper §VII): observes OS events from
/// the simulated-OS sandbox, intercepts the DB client library, builds the
/// combined execution trace, and assembles a re-executable package in one of
/// the four modes. The analog of running `ldv-audit <app>`.
class Auditor final : public os::OsEventSink, public AppEnv {
 public:
  /// `db` is the live ("server") database the application talks to; it is
  /// mutated by the application's DML exactly as a real server would be.
  Auditor(storage::Database* db, const AuditOptions& options);
  ~Auditor() override;

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Runs `app` under audit and finalizes the package.
  Result<AuditReport> Run(const AppFn& app);

  // AppEnv:
  os::ProcessContext& root_process() override;
  Result<net::DbClient*> OpenDbConnection(os::ProcessContext& proc) override;

  // OsEventSink (called by the sandbox):
  void OnOsEvent(const os::OsEvent& event) override;

  /// The combined execution trace built so far.
  const trace::TraceGraph& trace_graph() const { return trace_; }

  const AuditOptions& options() const { return options_; }

 private:
  friend class AuditingDbClient;

  /// Record of one statement execution, reported by the auditing client.
  struct DbStatementRecord {
    int64_t process_id = 0;
    int64_t query_id = 0;
    std::string sql;                  // original text
    sql::StatementKind kind = sql::StatementKind::kSelect;
    os::Interval t;
    const exec::ResultSet* result = nullptr;  // full (with provenance)
    std::string encoded_request;      // server-excluded replay log
    std::string encoded_response;
  };

  int64_t NextQueryId() { return ++next_query_id_; }

  /// First-touch registration of a table (the prototype's schema-extension
  /// moment, §VII-B): enables version archiving and records the schema.
  Status EnsureTableRegistered(const std::string& table);

  /// Builds trace nodes/edges and streams provenance tuples / replay frames
  /// to the package.
  Status OnDbStatement(const DbStatementRecord& record);

  Status PersistProvTuple(const exec::ProvTupleRecord& tuple);
  /// Open-once appender for package files streamed during the run (the
  /// per-table tuple CSVs and the replay log).
  Result<std::ofstream*> StreamFor(const std::string& relative_path);
  trace::NodeId TupleNode(const storage::TupleVid& vid,
                          const std::string& table);
  Status FinalizePackage();

  storage::Database* db_;
  AuditOptions options_;
  LogicalClock clock_;
  os::Vfs vfs_;
  os::SimOs sim_os_;
  net::EngineHandle engine_;
  trace::TraceGraph trace_;

  std::vector<std::unique_ptr<AuditingDbClient>> clients_;
  std::vector<std::unique_ptr<net::DbClient>> backends_;

  int64_t next_query_id_ = 0;
  // Tuple versions created by the application itself — excluded from the
  // package (§II / §VII-D).
  std::unordered_set<storage::TupleVid, storage::TupleVidHash> created_vids_;
  // Tuple versions already persisted (the §VII-D in-memory dedup table).
  std::unordered_set<storage::TupleVid, storage::TupleVidHash> persisted_vids_;
  std::unordered_set<std::string> registered_tables_;
  std::vector<PackageManifest::TableEntry> table_entries_;
  std::unordered_map<std::string, int64_t> tuples_per_table_;
  // Files already copied / first written by the app (copy-on-first-read).
  std::unordered_map<std::string, std::unique_ptr<std::ofstream>> streams_;
  std::unordered_set<std::string> copied_files_;
  std::unordered_set<std::string> app_written_files_;
  std::vector<std::string> packaged_files_;

  AuditReport report_;
  int64_t statements_recorded_ = 0;
  // Process-wide mirrors of the audit progress counters (resolved once; the
  // registry lookup takes a lock).
  obs::Counter* statements_metric_ = nullptr;
  obs::Counter* tuples_metric_ = nullptr;
  /// First error raised inside a void callback (OS event sink); surfaced
  /// when the run finishes.
  Status deferred_error_;
  bool finalized_ = false;
};

}  // namespace ldv

#endif  // LDV_LDV_AUDITOR_H_
