#ifndef LDV_LDV_REPLAY_DB_CLIENT_H_
#define LDV_LDV_REPLAY_DB_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/db_client.h"

namespace ldv {

/// The recorded request/response stream of a server-excluded package
/// (db/replay.log). Shared by all replayed connections; requests are
/// matched in recorded order (paper §VIII: "A server-excluded package must
/// be replayed in the same order as in the original execution trace").
class ReplayLog {
 public:
  static Result<std::unique_ptr<ReplayLog>> Load(const std::string& path);

  /// Returns the recorded response for the next occurrence of `sql` at or
  /// after the cursor. Out-of-order requests from other (concurrent)
  /// processes are tolerated by searching forward; a request that was never
  /// recorded is a ReplayMismatch.
  Result<exec::ResultSet> Next(const std::string& sql);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t replayed() const { return replayed_; }

 private:
  struct Entry {
    std::string sql;
    int64_t process_id = 0;
    std::string response;
    bool used = false;
  };
  std::vector<Entry> entries_;
  size_t cursor_ = 0;
  int64_t replayed_ = 0;
};

/// The client library in replay mode (§VIII): read requests are answered
/// from the recorded buffers; no DB server is contacted. Update statements
/// are acknowledged with their recorded outcome but have no effect.
class ReplayDbClient final : public net::DbClient {
 public:
  explicit ReplayDbClient(ReplayLog* log) : log_(log) {}

  Result<exec::ResultSet> Execute(const net::DbRequest& request) override {
    return log_->Next(request.sql);
  }

 private:
  ReplayLog* log_;
};

}  // namespace ldv

#endif  // LDV_LDV_REPLAY_DB_CLIENT_H_
