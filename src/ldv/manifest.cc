#include "ldv/manifest.h"

#include "common/json.h"
#include "util/fsutil.h"

namespace ldv {

std::string_view PackageModeName(PackageMode mode) {
  switch (mode) {
    case PackageMode::kServerIncluded:
      return "server-included";
    case PackageMode::kServerExcluded:
      return "server-excluded";
    case PackageMode::kPtu:
      return "ptu";
    case PackageMode::kVmImage:
      return "vm-image";
  }
  return "?";
}

Result<PackageMode> ParsePackageMode(std::string_view name) {
  if (name == "server-included") return PackageMode::kServerIncluded;
  if (name == "server-excluded") return PackageMode::kServerExcluded;
  if (name == "ptu") return PackageMode::kPtu;
  if (name == "vm-image") return PackageMode::kVmImage;
  return Status::InvalidArgument("unknown package mode: " + std::string(name));
}

std::string PackageManifest::ToJson() const {
  Json root = Json::MakeObject();
  root.Set("format", Json::MakeString("ldv-package-v1"));
  root.Set("mode", Json::MakeString(std::string(PackageModeName(mode))));
  Json tables_json = Json::MakeArray();
  for (const TableEntry& t : tables) {
    Json entry = Json::MakeObject();
    entry.Set("name", Json::MakeString(t.name));
    entry.Set("create_sql", Json::MakeString(t.create_sql));
    entry.Set("rows", Json::MakeInt(t.rows));
    tables_json.Append(std::move(entry));
  }
  root.Set("tables", std::move(tables_json));
  Json files_json = Json::MakeArray();
  for (const std::string& f : files) files_json.Append(Json::MakeString(f));
  root.Set("files", std::move(files_json));
  root.Set("statements_recorded", Json::MakeInt(statements_recorded));
  root.Set("processes", Json::MakeInt(processes));
  root.Set("has_trace", Json::MakeBool(has_trace));
  root.Set("has_server_binary", Json::MakeBool(has_server_binary));
  root.Set("has_full_data", Json::MakeBool(has_full_data));
  root.Set("has_vm_image", Json::MakeBool(has_vm_image));
  return root.Dump(true);
}

Result<PackageManifest> PackageManifest::FromJson(std::string_view text) {
  LDV_ASSIGN_OR_RETURN(Json root, Json::Parse(text));
  if (root.GetString("format", "") != "ldv-package-v1") {
    return Status::InvalidArgument("not an ldv-package-v1 manifest");
  }
  PackageManifest m;
  LDV_ASSIGN_OR_RETURN(m.mode, ParsePackageMode(root.GetString("mode", "")));
  if (const Json* tables = root.Find("tables"); tables != nullptr) {
    for (const Json& entry : tables->AsArray()) {
      TableEntry t;
      t.name = entry.GetString("name", "");
      t.create_sql = entry.GetString("create_sql", "");
      t.rows = entry.GetInt("rows", 0);
      m.tables.push_back(std::move(t));
    }
  }
  if (const Json* files = root.Find("files"); files != nullptr) {
    for (const Json& f : files->AsArray()) m.files.push_back(f.AsString());
  }
  m.statements_recorded = root.GetInt("statements_recorded", 0);
  m.processes = root.GetInt("processes", 0);
  m.has_trace = root.GetBool("has_trace", false);
  m.has_server_binary = root.GetBool("has_server_binary", false);
  m.has_full_data = root.GetBool("has_full_data", false);
  m.has_vm_image = root.GetBool("has_vm_image", false);
  return m;
}

Result<PackageManifest> PackageManifest::Load(const std::string& package_dir) {
  LDV_ASSIGN_OR_RETURN(
      std::string text,
      ReadFileToString(JoinPath(package_dir, std::string(kManifestFile))));
  return FromJson(text);
}

Status PackageManifest::Save(const std::string& package_dir) const {
  return WriteStringToFile(JoinPath(package_dir, std::string(kManifestFile)),
                           ToJson());
}

Result<PackageInfo> InspectPackage(const std::string& package_dir) {
  LDV_ASSIGN_OR_RETURN(PackageManifest manifest,
                       PackageManifest::Load(package_dir));
  PackageInfo info;
  info.mode = manifest.mode;
  info.total_bytes = TreeSize(package_dir);
  info.app_files_bytes =
      TreeSize(JoinPath(package_dir, std::string(kFilesDir)));
  info.server_binary_bytes =
      TreeSize(JoinPath(package_dir, std::string(kServerBinaryFile)));
  info.tuple_data_bytes =
      TreeSize(JoinPath(package_dir, std::string(kTupleDataDir)));
  info.full_data_bytes =
      TreeSize(JoinPath(package_dir, std::string(kFullDataDir)));
  info.replay_log_bytes =
      TreeSize(JoinPath(package_dir, std::string(kReplayLogFile)));
  info.trace_bytes = TreeSize(JoinPath(package_dir, std::string(kTraceFile)));
  info.vm_image_bytes =
      TreeSize(JoinPath(package_dir, std::string(kVmBaseImageFile)));
  for (const PackageManifest::TableEntry& t : manifest.tables) {
    info.packaged_tuples += t.rows;
  }
  return info;
}

}  // namespace ldv
