#include "ldv/vm_image_model.h"

// Header-only model; this translation unit anchors the library target.
