#ifndef LDV_LDV_AUDITING_DB_CLIENT_H_
#define LDV_LDV_AUDITING_DB_CLIENT_H_

#include <string>

#include "ldv/app.h"
#include "net/db_client.h"

namespace ldv {

class Auditor;

/// The instrumented DB client library (the prototype's patched libpq,
/// §VII-C): tags every statement with the owning process id and a fresh
/// query id, rewrites statements to carry the Perm PROVENANCE keyword when
/// the package is server-included, reports each execution to the Auditor,
/// and hands the application a provenance-free result — applications cannot
/// observe that they are being audited.
class AuditingDbClient final : public net::DbClient {
 public:
  AuditingDbClient(net::DbClient* backend, Auditor* auditor,
                   int64_t process_id)
      : backend_(backend), auditor_(auditor), process_id_(process_id) {}

  Result<exec::ResultSet> Execute(const net::DbRequest& request) override;

 private:
  net::DbClient* backend_;
  Auditor* auditor_;
  int64_t process_id_;
};

/// Referenced table names of a parsed statement (used for first-touch
/// registration). Exposed for tests.
std::vector<std::string> ReferencedTables(const sql::Statement& stmt);

}  // namespace ldv

#endif  // LDV_LDV_AUDITING_DB_CLIENT_H_
