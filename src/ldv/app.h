#ifndef LDV_LDV_APP_H_
#define LDV_LDV_APP_H_

#include <functional>

#include "common/result.h"
#include "net/db_client.h"
#include "os/sim_process.h"

namespace ldv {

/// The environment an LDV-managed application runs against. The same
/// application function is executed by the Auditor (original run, paper
/// `ldv-audit`) and by the Replayer (package re-execution, `ldv-exec`);
/// only the environment changes — which is exactly the paper's guarantee
/// that "an application shared this way runs exactly as it did for the
/// original user".
class AppEnv {
 public:
  virtual ~AppEnv() = default;

  /// The application's root process (pid 1) in the sandbox.
  virtual os::ProcessContext& root_process() = 0;

  /// Opens a DB connection on behalf of `proc`. The returned client is
  /// owned by the environment and valid until the run finishes. Under
  /// audit this is the instrumented client library; under server-excluded
  /// replay it is the recorded-response client.
  virtual Result<net::DbClient*> OpenDbConnection(os::ProcessContext& proc) = 0;
};

/// An LDV-managed application: a deterministic function of its environment.
using AppFn = std::function<Status(AppEnv&)>;

/// Packaging strategies (paper §VII-D plus the two baselines of §IX).
enum class PackageMode {
  /// DB server binaries + the relevant tuple subset as CSV (§VII-D).
  kServerIncluded,
  /// No server; recorded query answers replayed from disk (§VII-D).
  kServerExcluded,
  /// PTU baseline: server binaries + the FULL data files, no DB provenance.
  kPtu,
  /// Virtual-machine-image baseline: base OS image + full stack (§IX-F).
  kVmImage,
};

std::string_view PackageModeName(PackageMode mode);
Result<PackageMode> ParsePackageMode(std::string_view name);

}  // namespace ldv

#endif  // LDV_LDV_APP_H_
