#include "ldv/replayer.h"

#include <algorithm>

#include "obs/span.h"
#include "storage/persistence.h"
#include "util/csv.h"
#include "util/fsutil.h"
#include "util/strings.h"

namespace ldv {

Replayer::Replayer(ReplayOptions options, PackageManifest manifest)
    : options_(std::move(options)), manifest_(std::move(manifest)) {}

Result<std::unique_ptr<Replayer>> Replayer::Open(const ReplayOptions& options) {
  LDV_ASSIGN_OR_RETURN(PackageManifest manifest,
                       PackageManifest::Load(options.package_dir));
  std::unique_ptr<Replayer> replayer(
      new Replayer(options, std::move(manifest)));
  LDV_RETURN_IF_ERROR(replayer->Initialize());
  return replayer;
}

Status Replayer::Initialize() {
  report_.mode = manifest_.mode;
  obs::Span span("replay.init", "replay");
  if (span.recording()) {
    span.AddArg("mode", std::string(PackageModeName(manifest_.mode)));
  }
  WallTimer timer;

  // Unpack the application files into the scratch sandbox (the chroot-like
  // redirection environment of §VII-D).
  LDV_RETURN_IF_ERROR(MakeDirs(options_.scratch_dir));
  std::string files_dir =
      JoinPath(options_.package_dir, std::string(kFilesDir));
  if (DirExists(files_dir)) {
    LDV_RETURN_IF_ERROR(CopyTree(files_dir, options_.scratch_dir));
  }
  vfs_ = std::make_unique<os::Vfs>(options_.scratch_dir);
  sim_os_ = std::make_unique<os::SimOs>(vfs_.get(), &clock_, nullptr);

  switch (manifest_.mode) {
    case PackageMode::kServerIncluded: {
      // Fresh embedded server initialized from the packaged tuples: "LDV
      // needs to create the DB using the tuples included in the package"
      // (§IX-C) — the dominant Initialization cost of Fig. 7b.
      db_ = std::make_unique<storage::Database>();
      engine_ = std::make_unique<net::EngineHandle>(db_.get());
      LDV_RETURN_IF_ERROR(RestoreIncludedTuples());
      break;
    }
    case PackageMode::kPtu:
    case PackageMode::kVmImage: {
      // PTU/VMI ship the server's native data files; loading them is the
      // fast path (no per-tuple SQL work).
      db_ = std::make_unique<storage::Database>();
      LDV_RETURN_IF_ERROR(storage::LoadDatabase(
          db_.get(),
          JoinPath(options_.package_dir, std::string(kFullDataDir))));
      engine_ = std::make_unique<net::EngineHandle>(db_.get());
      report_.restored_tuples = db_->TotalLiveRows();
      break;
    }
    case PackageMode::kServerExcluded: {
      LDV_ASSIGN_OR_RETURN(
          replay_log_,
          ReplayLog::Load(JoinPath(options_.package_dir,
                                   std::string(kReplayLogFile))));
      break;
    }
  }
  report_.init_seconds = timer.Seconds();
  return Status::Ok();
}

namespace {

std::string SqlLiteral(const storage::Value& v) {
  if (v.is_null()) return "NULL";
  if (v.type() == storage::ValueType::kString) {
    std::string escaped;
    for (char c : v.AsString()) {
      escaped.push_back(c);
      if (c == '\'') escaped.push_back('\'');
    }
    return "'" + escaped + "'";
  }
  return v.ToText();
}

}  // namespace

Status Replayer::RestoreIncludedTuples() {
  // Schema first (the packaged CREATE TABLE statements).
  for (const PackageManifest::TableEntry& entry : manifest_.tables) {
    net::DbRequest create;
    create.sql = entry.create_sql;
    LDV_RETURN_IF_ERROR(engine_->Execute(create).status());
  }
  int64_t max_version = 0;
  for (const PackageManifest::TableEntry& entry : manifest_.tables) {
    storage::Table* table = db_->FindTable(entry.name);
    if (table == nullptr) {
      return Status::Internal("restored schema lost table " + entry.name);
    }
    std::string csv_path =
        JoinPath(options_.package_dir,
                 std::string(kTupleDataDir) + "/" + entry.name + ".csv");
    if (!FileExists(csv_path)) continue;  // no relevant tuples for this table
    LDV_ASSIGN_OR_RETURN(std::string text, ReadFileToString(csv_path));
    LDV_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
    const storage::Schema& schema = table->schema();
    std::vector<storage::RowVersion> restored;
    restored.reserve(rows.size());
    for (const auto& fields : rows) {
      if (static_cast<int>(fields.size()) != schema.num_columns() + 2) {
        return Status::IOError("corrupt packaged tuple row in " + entry.name);
      }
      storage::RowVersion row;
      LDV_ASSIGN_OR_RETURN(row.rowid, ParseInt64(fields[0]));
      LDV_ASSIGN_OR_RETURN(row.version, ParseInt64(fields[1]));
      max_version = std::max(max_version, row.version);
      row.values.reserve(static_cast<size_t>(schema.num_columns()));
      for (int c = 0; c < schema.num_columns(); ++c) {
        LDV_ASSIGN_OR_RETURN(
            storage::Value v,
            storage::Value::FromText(schema.column(c).type,
                                     fields[static_cast<size_t>(c) + 2]));
        row.values.push_back(std::move(v));
      }
      restored.push_back(std::move(row));
    }
    // Restore in rowid order so replayed scans see tuples in the original
    // run's physical order regardless of the order statements first touched
    // them (the DB is "reset to the state valid at the start", §I).
    std::sort(restored.begin(), restored.end(),
              [](const storage::RowVersion& a, const storage::RowVersion& b) {
                return a.rowid < b.rowid;
              });
    // The tuples go in through the regular SQL INSERT path — re-creating the
    // DB from the package is real per-tuple work, which is why Fig. 7b's
    // Initialization bar belongs almost entirely to server-included replay.
    for (const storage::RowVersion& row : restored) {
      std::string sql = "INSERT INTO " + entry.name + " VALUES (";
      for (size_t c = 0; c < row.values.size(); ++c) {
        if (c > 0) sql += ", ";
        sql += SqlLiteral(row.values[c]);
      }
      sql += ")";
      net::DbRequest insert;
      insert.sql = std::move(sql);
      LDV_RETURN_IF_ERROR(engine_->Execute(insert).status());
      ++report_.restored_tuples;
    }
  }
  // Keep version stamps monotone across the restored boundary.
  db_->set_statement_seq(max_version);
  return Status::Ok();
}

Result<ReplayReport> Replayer::Run(const AppFn& app) {
  Status status;
  {
    obs::Span span("replay.run", "replay");
    if (span.recording()) {
      span.AddArg("mode", std::string(PackageModeName(manifest_.mode)));
    }
    status = app(*this);
  }
  if (!status.ok()) return status.WithContext("replayed application failed");
  if (replay_log_ != nullptr) {
    report_.statements_replayed = replay_log_->replayed();
  }
  return report_;
}

os::ProcessContext& Replayer::root_process() { return *sim_os_->root(); }

Result<net::DbClient*> Replayer::OpenDbConnection(os::ProcessContext& proc) {
  // Connection redirection (§VIII): server-included/PTU/VMI connect to the
  // package's embedded server; server-excluded connects to the log.
  if (manifest_.mode == PackageMode::kServerExcluded) {
    clients_.push_back(std::make_unique<ReplayDbClient>(replay_log_.get()));
  } else {
    clients_.push_back(std::make_unique<net::LocalDbClient>(engine_.get()));
  }
  return clients_.back().get();
}

}  // namespace ldv
