#ifndef LDV_LDV_PACKAGER_H_
#define LDV_LDV_PACKAGER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "os/ptrace_tracer.h"

namespace ldv {

/// CDE/PTU-style application-virtualization packaging for *real* processes
/// traced with PtraceTracer: copies every file the process tree read (and
/// the executed binaries) into `package_dir/files/<original path>`,
/// recreating the directory structure — the chroot-like package layout of
/// §VII-D, without the DB-aware parts.
struct CdePackageReport {
  std::string package_dir;
  int64_t files_copied = 0;
  int64_t bytes_copied = 0;
  std::vector<std::string> missing_files;  // read but unreadable/ephemeral
};

Result<CdePackageReport> BuildCdePackage(const os::PtraceReport& trace,
                                         const std::string& package_dir);

}  // namespace ldv

#endif  // LDV_LDV_PACKAGER_H_
