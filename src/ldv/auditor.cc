#include "ldv/auditor.h"

#include <algorithm>
#include <cstring>

#include "ldv/auditing_db_client.h"
#include "obs/span.h"
#include "storage/persistence.h"
#include "trace/serialize.h"
#include "util/csv.h"
#include "util/fsutil.h"
#include "util/serde.h"
#include "util/strings.h"

namespace ldv {

using storage::TupleVid;

namespace {

trace::NodeType StatementNodeType(sql::StatementKind kind) {
  switch (kind) {
    case sql::StatementKind::kInsert:
      return trace::NodeType::kInsert;
    case sql::StatementKind::kUpdate:
      return trace::NodeType::kUpdate;
    case sql::StatementKind::kDelete:
      return trace::NodeType::kDelete;
    default:
      return trace::NodeType::kQuery;
  }
}

std::string ProcessLabel(int64_t pid) { return "pid:" + std::to_string(pid); }

/// Deterministic placeholder used when no real server binary is supplied.
std::string PlaceholderServerBinary() {
  std::string blob;
  blob.reserve(1 << 21);
  uint64_t x = 0x1DB5EEDULL;
  while (blob.size() < (1 << 21)) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    blob.append(reinterpret_cast<const char*>(&x), sizeof(x));
  }
  return blob;
}

}  // namespace

Auditor::Auditor(storage::Database* db, const AuditOptions& options)
    : db_(db),
      options_(options),
      vfs_(options.sandbox_root),
      sim_os_(&vfs_, &clock_, this),
      engine_(db),
      statements_metric_(
          obs::MetricsRegistry::Global().counter("audit.statements")),
      tuples_metric_(
          obs::MetricsRegistry::Global().counter("audit.tuples_persisted")) {}

Auditor::~Auditor() = default;

os::ProcessContext& Auditor::root_process() { return *sim_os_.root(); }

Result<net::DbClient*> Auditor::OpenDbConnection(os::ProcessContext& proc) {
  // A fresh connection per process; the auditing layer assigns the unique
  // process id used to link DB activity to the OS trace (§VII-C).
  if (!options_.db_socket_path.empty()) {
    // Per-connection jitter streams: otherwise every connection would back
    // off in lockstep under correlated failures.
    net::RetryPolicy policy = options_.db_retry;
    policy.seed += static_cast<uint64_t>(proc.pid());
    backends_.push_back(
        net::RetryingDbClient::ForSocket(options_.db_socket_path, policy));
  } else {
    backends_.push_back(std::make_unique<net::LocalDbClient>(&engine_));
  }
  clients_.push_back(std::make_unique<AuditingDbClient>(backends_.back().get(),
                                                        this, proc.pid()));
  return clients_.back().get();
}

Result<AuditReport> Auditor::Run(const AppFn& app) {
  if (options_.package_dir.empty()) {
    return Status::InvalidArgument("AuditOptions.package_dir is required");
  }
  if (FileExists(JoinPath(options_.package_dir, std::string(kManifestFile)))) {
    return Status::AlreadyExists("package already exists at " +
                                 options_.package_dir);
  }
  LDV_RETURN_IF_ERROR(MakeDirs(options_.package_dir));

  if (options_.mode == PackageMode::kPtu ||
      options_.mode == PackageMode::kVmImage) {
    // PTU/VMI capture the server's data files in their start-of-run state
    // (the server is "started as the first step of the experiment", §IX-A).
    LDV_RETURN_IF_ERROR(storage::SaveDatabase(
        *db_, JoinPath(options_.package_dir, std::string(kFullDataDir))));
  }

  Status app_status;
  {
    obs::Span span("audit.run", "audit");
    if (span.recording()) {
      span.AddArg("mode", std::string(PackageModeName(options_.mode)));
    }
    app_status = app(*this);
  }
  if (!app_status.ok()) {
    return app_status.WithContext("audited application failed");
  }
  if (!deferred_error_.ok()) return deferred_error_;

  {
    obs::Span span("audit.finalize", "audit");
    LDV_RETURN_IF_ERROR(FinalizePackage());
  }
  report_.package_dir = options_.package_dir;
  report_.trace_nodes = trace_.num_nodes();
  report_.trace_edges = trace_.num_edges();
  return report_;
}

void Auditor::OnOsEvent(const os::OsEvent& event) {
  using Kind = os::OsEvent::Kind;
  switch (event.kind) {
    case Kind::kProcessStart: {
      trace::NodeId child = trace_.GetOrAddNode(trace::NodeType::kProcess,
                                                ProcessLabel(event.pid));
      if (event.parent_pid > 0) {
        trace::NodeId parent = trace_.GetOrAddNode(
            trace::NodeType::kProcess, ProcessLabel(event.parent_pid));
        Status s = trace_.AddEdge(parent, child, trace::EdgeType::kExecuted,
                                  event.t);
        if (!s.ok() && deferred_error_.ok()) deferred_error_ = s;
      }
      ++report_.processes;
      break;
    }
    case Kind::kProcessExit:
      break;
    case Kind::kFileRead: {
      trace::NodeId file =
          trace_.GetOrAddNode(trace::NodeType::kFile, event.path);
      trace::NodeId proc = trace_.GetOrAddNode(trace::NodeType::kProcess,
                                               ProcessLabel(event.pid));
      Status s =
          trace_.MergeEdge(file, proc, trace::EdgeType::kReadFrom, event.t);
      if (!s.ok() && deferred_error_.ok()) deferred_error_ = s;
      // CDE/PTU-style copy-on-first-read: input files enter the package in
      // the state the application observed; files the application created
      // itself are regenerated at replay and are not packaged (§II).
      if (!copied_files_.contains(event.path) &&
          !app_written_files_.contains(event.path)) {
        copied_files_.insert(event.path);
        Result<std::string> host = vfs_.HostPath(event.path);
        if (host.ok()) {
          Status copy = CopyFile(
              *host, JoinPath(options_.package_dir,
                              std::string(kFilesDir) + event.path));
          if (!copy.ok() && deferred_error_.ok()) deferred_error_ = copy;
          packaged_files_.push_back(event.path);
          ++report_.files_copied;
        }
      }
      break;
    }
    case Kind::kFileWrite: {
      trace::NodeId file =
          trace_.GetOrAddNode(trace::NodeType::kFile, event.path);
      trace::NodeId proc = trace_.GetOrAddNode(trace::NodeType::kProcess,
                                               ProcessLabel(event.pid));
      Status s =
          trace_.MergeEdge(proc, file, trace::EdgeType::kHasWritten, event.t);
      if (!s.ok() && deferred_error_.ok()) deferred_error_ = s;
      app_written_files_.insert(event.path);
      break;
    }
  }
}

Status Auditor::EnsureTableRegistered(const std::string& table_name) {
  std::string key = ToLower(table_name);
  if (registered_tables_.contains(key)) return Status::Ok();
  storage::Table* table = db_->FindTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("audited statement references unknown table: " +
                            table_name);
  }
  table->set_provenance_tracking(true);
  std::string create_sql = "CREATE TABLE " + table->name() + " (";
  const storage::Schema& schema = table->schema();
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) create_sql += ", ";
    create_sql += schema.column(i).name;
    create_sql += " ";
    create_sql += storage::ValueTypeName(schema.column(i).type);
  }
  create_sql += ");";
  table_entries_.push_back({table->name(), std::move(create_sql), 0});
  registered_tables_.insert(std::move(key));
  return Status::Ok();
}

trace::NodeId Auditor::TupleNode(const TupleVid& vid,
                                 const std::string& table) {
  return trace_.GetOrAddNode(
      trace::NodeType::kTuple,
      StrFormat("%s#%lld.v%lld", table.c_str(),
                static_cast<long long>(vid.rowid),
                static_cast<long long>(vid.version)));
}

Result<std::ofstream*> Auditor::StreamFor(const std::string& relative_path) {
  auto it = streams_.find(relative_path);
  if (it != streams_.end()) return it->second.get();
  std::string path = JoinPath(options_.package_dir, relative_path);
  // Create parent directories, then keep the stream open for the run.
  LDV_RETURN_IF_ERROR(WriteStringToFile(path, ""));
  auto stream = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::app);
  if (!*stream) return Status::IOError("cannot open package file: " + path);
  std::ofstream* raw = stream.get();
  streams_.emplace(relative_path, std::move(stream));
  return raw;
}

Status Auditor::PersistProvTuple(const exec::ProvTupleRecord& tuple) {
  if (persisted_vids_.contains(tuple.vid)) return Status::Ok();
  persisted_vids_.insert(tuple.vid);
  CsvWriter row;
  std::vector<std::string> fields;
  fields.reserve(tuple.values.size() + 2);
  fields.push_back(std::to_string(tuple.vid.rowid));
  fields.push_back(std::to_string(tuple.vid.version));
  for (const storage::Value& v : tuple.values) fields.push_back(v.ToText());
  row.AppendRow(fields);
  LDV_ASSIGN_OR_RETURN(
      std::ofstream * out,
      StreamFor(std::string(kTupleDataDir) + "/" + tuple.table + ".csv"));
  out->write(row.data().data(),
             static_cast<std::streamsize>(row.data().size()));
  out->flush();
  if (!*out) return Status::IOError("short write to packaged tuple file");
  ++tuples_per_table_[tuple.table];
  ++report_.tuples_persisted;
  tuples_metric_->Add(1);
  return Status::Ok();
}

Status Auditor::OnDbStatement(const DbStatementRecord& record) {
  ++report_.statements_audited;
  statements_metric_->Add(1);
  const exec::ResultSet& result = *record.result;

  // --- Trace: statement node + run edge (Definition 5). ---
  trace::NodeId stmt_node = trace_.GetOrAddNode(
      StatementNodeType(record.kind),
      StrFormat("q%lld: %s", static_cast<long long>(record.query_id),
                record.sql.substr(0, 60).c_str()));
  trace::NodeId proc_node = trace_.GetOrAddNode(
      trace::NodeType::kProcess, ProcessLabel(record.process_id));
  LDV_RETURN_IF_ERROR(
      trace_.AddEdge(proc_node, stmt_node, trace::EdgeType::kRun, record.t));

  // --- Server-excluded: stream the request/response pair to disk. ---
  if (options_.mode == PackageMode::kServerExcluded) {
    BufferWriter frame;
    frame.PutString(record.encoded_request);
    frame.PutString(record.encoded_response);
    LDV_ASSIGN_OR_RETURN(std::ofstream * out,
                         StreamFor(std::string(kReplayLogFile)));
    out->write(frame.data().data(),
               static_cast<std::streamsize>(frame.data().size()));
    out->flush();
    if (!*out) return Status::IOError("short write to replay log");
    ++statements_recorded_;
  }

  if (options_.mode != PackageMode::kServerIncluded) return Status::Ok();

  // --- Server-included: persist relevant tuples + build DB-side trace. ---
  // Input side: every tuple version in the statement's provenance that the
  // application did not itself create is packaged (§VII-D).
  for (const exec::ProvTupleRecord& tuple : result.prov_tuples) {
    if (created_vids_.contains(tuple.vid)) continue;
    LDV_RETURN_IF_ERROR(PersistProvTuple(tuple));
  }

  const bool tuples_in_trace = options_.record_tuple_nodes;
  std::unordered_map<TupleVid, trace::NodeId, storage::TupleVidHash>
      input_nodes;
  if (tuples_in_trace) {
    for (const exec::ProvTupleRecord& tuple : result.prov_tuples) {
      trace::NodeId node = TupleNode(tuple.vid, tuple.table);
      input_nodes.emplace(tuple.vid, node);
      LDV_RETURN_IF_ERROR(trace_.MergeEdge(
          node, stmt_node, trace::EdgeType::kHasRead, record.t));
    }
  }

  if (record.kind == sql::StatementKind::kSelect && tuples_in_trace) {
    // Result tuples are fresh entities returned to the process (Figure 2).
    for (size_t i = 0; i < result.rows.size(); ++i) {
      trace::NodeId out = trace_.GetOrAddNode(
          trace::NodeType::kTuple,
          StrFormat("q%lld#%zu", static_cast<long long>(record.query_id), i));
      LDV_RETURN_IF_ERROR(trace_.AddEdge(
          stmt_node, out, trace::EdgeType::kHasReturned, record.t));
      LDV_RETURN_IF_ERROR(trace_.AddEdge(
          out, proc_node, trace::EdgeType::kReadFromDb, record.t));
      if (i < result.lineage.size()) {
        for (const TupleVid& vid : result.lineage[i]) {
          auto it = input_nodes.find(vid);
          if (it != input_nodes.end()) {
            trace_.AddTupleDependency(out, it->second);
          }
        }
      }
    }
  }

  // DML effects: remember application-created versions (excluded from the
  // package) and add the reenactment edges.
  for (size_t i = 0; i < result.dml.size(); ++i) {
    const exec::DmlRecord& dml = result.dml[i];
    switch (dml.kind) {
      case exec::DmlRecord::Kind::kInserted: {
        created_vids_.insert(dml.vid);
        if (tuples_in_trace) {
          trace::NodeId node = TupleNode(dml.vid, dml.table);
          LDV_RETURN_IF_ERROR(trace_.AddEdge(
              stmt_node, node, trace::EdgeType::kHasReturned, record.t));
          // INSERT ... SELECT: source lineage becomes the new tuple's deps.
          if (i < result.lineage.size()) {
            for (const TupleVid& vid : result.lineage[i]) {
              auto it = input_nodes.find(vid);
              if (it != input_nodes.end()) {
                trace_.AddTupleDependency(node, it->second);
              }
            }
          }
        }
        break;
      }
      case exec::DmlRecord::Kind::kUpdated: {
        created_vids_.insert(dml.vid);
        if (tuples_in_trace) {
          trace::NodeId new_node = TupleNode(dml.vid, dml.table);
          trace::NodeId old_node = TupleNode(dml.prior, dml.table);
          LDV_RETURN_IF_ERROR(trace_.MergeEdge(
              old_node, stmt_node, trace::EdgeType::kHasRead, record.t));
          LDV_RETURN_IF_ERROR(trace_.AddEdge(
              stmt_node, new_node, trace::EdgeType::kHasReturned, record.t));
          trace_.AddTupleDependency(new_node, old_node);
        }
        break;
      }
      case exec::DmlRecord::Kind::kDeleted: {
        if (tuples_in_trace) {
          trace::NodeId old_node = TupleNode(dml.prior, dml.table);
          LDV_RETURN_IF_ERROR(trace_.MergeEdge(
              old_node, stmt_node, trace::EdgeType::kHasRead, record.t));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

Status Auditor::FinalizePackage() {
  if (finalized_) return Status::Internal("package already finalized");
  finalized_ = true;

  PackageManifest manifest;
  manifest.mode = options_.mode;
  manifest.processes = report_.processes;
  manifest.files = packaged_files_;
  std::sort(manifest.files.begin(), manifest.files.end());
  manifest.statements_recorded = statements_recorded_;

  // DB server binary (all modes that ship a server).
  if (options_.mode == PackageMode::kServerIncluded ||
      options_.mode == PackageMode::kPtu ||
      options_.mode == PackageMode::kVmImage) {
    std::string target =
        JoinPath(options_.package_dir, std::string(kServerBinaryFile));
    if (!options_.server_binary_path.empty() &&
        FileExists(options_.server_binary_path)) {
      LDV_RETURN_IF_ERROR(CopyFile(options_.server_binary_path, target));
    } else {
      LDV_RETURN_IF_ERROR(WriteStringToFile(target, PlaceholderServerBinary()));
    }
    manifest.has_server_binary = true;
  }

  if (options_.mode == PackageMode::kServerIncluded) {
    std::string schema_sql;
    for (PackageManifest::TableEntry& entry : table_entries_) {
      entry.rows = 0;
      auto it = tuples_per_table_.find(entry.name);
      if (it != tuples_per_table_.end()) entry.rows = it->second;
      schema_sql += entry.create_sql;
      schema_sql += "\n";
    }
    LDV_RETURN_IF_ERROR(WriteStringToFile(
        JoinPath(options_.package_dir, std::string(kSchemaFile)), schema_sql));
    manifest.tables = table_entries_;
  }

  manifest.has_full_data = options_.mode == PackageMode::kPtu ||
                           options_.mode == PackageMode::kVmImage;

  if (options_.mode == PackageMode::kVmImage) {
    // Synthetic base OS image (DESIGN.md substitution #5).
    std::string chunk(1 << 20, '\0');
    uint64_t x = 0xBA5E1Du;
    for (size_t i = 0; i < chunk.size(); i += 8) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      std::memcpy(chunk.data() + i, &x, sizeof(x));
    }
    std::string image_path =
        JoinPath(options_.package_dir, std::string(kVmBaseImageFile));
    LDV_RETURN_IF_ERROR(WriteStringToFile(image_path, ""));
    int64_t remaining = options_.vm_base_image_bytes;
    while (remaining > 0) {
      size_t n = std::min<int64_t>(remaining,
                                   static_cast<int64_t>(chunk.size()));
      LDV_RETURN_IF_ERROR(AppendStringToFile(
          image_path, std::string_view(chunk.data(), n)));
      remaining -= static_cast<int64_t>(n);
    }
    manifest.has_vm_image = true;
  }

  // The serialized execution trace travels with every package (§VII-D).
  LDV_RETURN_IF_ERROR(
      WriteStringToFile(JoinPath(options_.package_dir, std::string(kTraceFile)),
                        trace::SerializeTrace(trace_)));
  manifest.has_trace = true;

  return manifest.Save(options_.package_dir);
}

}  // namespace ldv
