#ifndef LDV_LDV_MANIFEST_H_
#define LDV_LDV_MANIFEST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ldv/app.h"

namespace ldv {

/// Canonical package layout (relative to the package root).
inline constexpr std::string_view kManifestFile = "MANIFEST.json";
inline constexpr std::string_view kTraceFile = "trace.ldv";
inline constexpr std::string_view kFilesDir = "files";
inline constexpr std::string_view kSchemaFile = "db/schema.sql";
inline constexpr std::string_view kTupleDataDir = "db/data";
inline constexpr std::string_view kFullDataDir = "db/data_full";
inline constexpr std::string_view kReplayLogFile = "db/replay.log";
inline constexpr std::string_view kServerBinaryFile = "db/server/ldv_server";
inline constexpr std::string_view kVmBaseImageFile = "vm/base_image.img";

/// Contents descriptor written to MANIFEST.json at package-creation time and
/// consumed by the Replayer and the package-inspection tooling (Table III).
struct PackageManifest {
  PackageMode mode = PackageMode::kServerIncluded;
  /// Tables whose relevant subset (server-included) or full contents
  /// (PTU/VMI) are in the package.
  struct TableEntry {
    std::string name;
    std::string create_sql;  // CREATE TABLE statement
    int64_t rows = 0;        // packaged tuple versions
  };
  std::vector<TableEntry> tables;
  /// Virtual paths of application files included under files/.
  std::vector<std::string> files;
  int64_t statements_recorded = 0;  // server-excluded replay log entries
  int64_t processes = 0;
  bool has_trace = false;
  bool has_server_binary = false;
  bool has_full_data = false;
  bool has_vm_image = false;

  std::string ToJson() const;
  static Result<PackageManifest> FromJson(std::string_view text);

  /// Reads `<dir>/MANIFEST.json`.
  static Result<PackageManifest> Load(const std::string& package_dir);
  /// Writes `<dir>/MANIFEST.json`.
  Status Save(const std::string& package_dir) const;
};

/// Size/contents breakdown of an on-disk package (Fig. 9 / Table III).
struct PackageInfo {
  PackageMode mode = PackageMode::kServerIncluded;
  int64_t total_bytes = 0;
  int64_t app_files_bytes = 0;
  int64_t server_binary_bytes = 0;
  int64_t tuple_data_bytes = 0;   // server-included CSVs
  int64_t full_data_bytes = 0;    // PTU/VMI data files
  int64_t replay_log_bytes = 0;   // server-excluded
  int64_t trace_bytes = 0;
  int64_t vm_image_bytes = 0;
  int64_t packaged_tuples = 0;
};

Result<PackageInfo> InspectPackage(const std::string& package_dir);

}  // namespace ldv

#endif  // LDV_LDV_MANIFEST_H_
