#ifndef LDV_LDV_VM_IMAGE_MODEL_H_
#define LDV_LDV_VM_IMAGE_MODEL_H_

#include <cstdint>

namespace ldv {

/// Analytical model of the virtual-machine-image baseline (paper §IX-F).
/// We cannot ship a Debian VMI, so sizes and timings are modeled — see
/// DESIGN.md substitution #5:
///   - image size = base OS image + full DB data files + application files;
///     the paper's bare-bone Debian Wheezy image accounts for 8.2 GB total
///     against a 1 GB database, i.e. a ~7.2 GB base; `scale` shrinks
///     everything proportionally to the benchmark's TPC-H scale factor.
///   - replay: a boot latency plus a multiplicative slowdown over native
///     execution ("slightly slower than a non-audited PostgreSQL
///     execution", §IX-F / Fig. 8b).
struct VmImageParams {
  /// Base OS image bytes at scale 1.0 (paper-derived default: 7.2 GB).
  int64_t base_image_bytes_at_scale_1 = 7200LL * 1000 * 1000;
  /// Boot latency in seconds at scale 1.0.
  double boot_seconds = 40.0;
  /// Multiplicative slowdown of query execution inside the VM.
  double runtime_slowdown = 1.15;
  /// Proportional scale (e.g. the TPC-H scale factor of the experiment).
  double scale = 1.0;
};

class VmImageModel {
 public:
  explicit VmImageModel(VmImageParams params = {}) : params_(params) {}

  /// Total VMI bytes for a deployment carrying `db_bytes` of database data
  /// files and `app_bytes` of application files.
  int64_t ImageSizeBytes(int64_t db_bytes, int64_t app_bytes) const {
    return ScaledBaseImageBytes() + db_bytes + app_bytes;
  }

  int64_t ScaledBaseImageBytes() const {
    return static_cast<int64_t>(
        static_cast<double>(params_.base_image_bytes_at_scale_1) *
        params_.scale);
  }

  /// Modeled wall time of running a step inside the VM given its native
  /// (non-virtualized) duration.
  double ReplaySeconds(double native_seconds) const {
    return native_seconds * params_.runtime_slowdown;
  }

  double BootSeconds() const { return params_.boot_seconds * params_.scale; }

  const VmImageParams& params() const { return params_; }

 private:
  VmImageParams params_;
};

}  // namespace ldv

#endif  // LDV_LDV_VM_IMAGE_MODEL_H_
