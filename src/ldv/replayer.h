#ifndef LDV_LDV_REPLAYER_H_
#define LDV_LDV_REPLAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "ldv/app.h"
#include "ldv/manifest.h"
#include "ldv/replay_db_client.h"
#include "net/db_client.h"
#include "os/sim_process.h"
#include "os/vfs.h"
#include "storage/database.h"

namespace ldv {

/// Options for re-executing a package (the `ldv-exec` command of §IX).
struct ReplayOptions {
  std::string package_dir;
  /// Scratch sandbox the application runs in; the package's files/ tree is
  /// unpacked here. Created if missing.
  std::string scratch_dir;
};

struct ReplayReport {
  PackageMode mode = PackageMode::kServerIncluded;
  /// Wall seconds spent initializing the environment before the app ran:
  /// restoring packaged tuples into a fresh DB (server-included, the big
  /// Initialization bar of Fig. 7b), loading the data files (PTU/VMI), or
  /// loading the replay log (server-excluded).
  double init_seconds = 0;
  int64_t restored_tuples = 0;
  int64_t statements_replayed = 0;
};

/// Re-executes an application from an LDV package (paper §VIII):
///   - file system access is redirected into the unpacked sandbox,
///   - server-included / PTU / VMI packages get a fresh embedded server
///     initialized from the packaged tuples or data files,
///   - server-excluded packages answer DB calls from the recorded log.
class Replayer final : public AppEnv {
 public:
  /// Loads the manifest, unpacks files, and initializes the DB side
  /// (timed; see ReplayReport::init_seconds).
  static Result<std::unique_ptr<Replayer>> Open(const ReplayOptions& options);

  /// Runs the application against the package environment.
  Result<ReplayReport> Run(const AppFn& app);

  // AppEnv:
  os::ProcessContext& root_process() override;
  Result<net::DbClient*> OpenDbConnection(os::ProcessContext& proc) override;

  /// The restored database (null for server-excluded packages).
  storage::Database* restored_db() { return db_.get(); }

  const PackageManifest& manifest() const { return manifest_; }
  const ReplayReport& report() const { return report_; }

 private:
  Replayer(ReplayOptions options, PackageManifest manifest);
  Status Initialize();
  Status RestoreIncludedTuples();

  ReplayOptions options_;
  PackageManifest manifest_;
  LogicalClock clock_;
  std::unique_ptr<os::Vfs> vfs_;
  std::unique_ptr<os::SimOs> sim_os_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<net::EngineHandle> engine_;
  std::unique_ptr<ReplayLog> replay_log_;
  std::vector<std::unique_ptr<net::DbClient>> clients_;
  ReplayReport report_;
};

}  // namespace ldv

#endif  // LDV_LDV_REPLAYER_H_
