#include "ldv/packager.h"

#include <set>

#include "util/fsutil.h"

namespace ldv {

Result<CdePackageReport> BuildCdePackage(const os::PtraceReport& trace,
                                         const std::string& package_dir) {
  CdePackageReport report;
  report.package_dir = package_dir;
  LDV_RETURN_IF_ERROR(MakeDirs(JoinPath(package_dir, "files")));

  std::set<std::string> to_copy;
  for (const std::string& path : trace.files_read) to_copy.insert(path);
  for (const std::string& path : trace.binaries_executed) to_copy.insert(path);

  for (const std::string& path : to_copy) {
    if (path.empty() || path[0] != '/') continue;  // relative/ephemeral
    if (!FileExists(path)) {
      report.missing_files.push_back(path);
      continue;
    }
    std::string target = JoinPath(package_dir, "files" + path);
    Status copied = CopyFile(path, target);
    if (!copied.ok()) {
      report.missing_files.push_back(path);
      continue;
    }
    ++report.files_copied;
    report.bytes_copied += FileSize(target).ValueOr(0);
  }
  return report;
}

}  // namespace ldv
