#include "ldv/auditing_db_client.h"

#include "ldv/auditor.h"
#include "net/protocol.h"
#include "obs/span.h"
#include "sql/parser.h"

namespace ldv {

std::vector<std::string> ReferencedTables(const sql::Statement& stmt) {
  std::vector<std::string> tables;
  auto add_select = [&tables](const sql::SelectStmt* select) {
    if (select == nullptr) return;
    for (const sql::TableRef& ref : select->from) tables.push_back(ref.table);
  };
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      add_select(stmt.select.get());
      break;
    case sql::StatementKind::kInsert:
      tables.push_back(stmt.insert->table);
      add_select(stmt.insert->select.get());
      break;
    case sql::StatementKind::kUpdate:
      tables.push_back(stmt.update->table);
      break;
    case sql::StatementKind::kDelete:
      tables.push_back(stmt.del->table);
      break;
    case sql::StatementKind::kCopy:
      tables.push_back(stmt.copy->table);
      break;
    default:
      break;
  }
  return tables;
}

Result<exec::ResultSet> AuditingDbClient::Execute(
    const net::DbRequest& request) {
  // Parse once to classify the statement and find the touched tables.
  LDV_ASSIGN_OR_RETURN(sql::Statement parsed, sql::Parse(request.sql));

  const PackageMode mode = auditor_->options().mode;
  const bool provenance_capture =
      mode == PackageMode::kServerIncluded &&
      (parsed.kind == sql::StatementKind::kSelect ||
       parsed.kind == sql::StatementKind::kInsert ||
       parsed.kind == sql::StatementKind::kUpdate ||
       parsed.kind == sql::StatementKind::kDelete);

  if (mode == PackageMode::kServerIncluded) {
    // First-touch registration: version tracking + schema capture (§VII-B).
    for (const std::string& table : ReferencedTables(parsed)) {
      LDV_RETURN_IF_ERROR(auditor_->EnsureTableRegistered(table));
    }
  }

  Auditor::DbStatementRecord record;
  record.process_id = process_id_;
  record.query_id = auditor_->NextQueryId();
  record.sql = request.sql;
  record.kind = parsed.kind;

  // One span per audited statement, covering the reenactment round trip,
  // the statement itself, and trace/package bookkeeping.
  obs::Span span("audit.statement", "audit");
  if (span.recording()) {
    span.AddArg("qid", std::to_string(record.query_id));
    span.AddArg("sql", request.sql.size() <= 120
                           ? request.sql
                           : request.sql.substr(0, 117) + "...");
  }

  const bool is_modification = parsed.kind == sql::StatementKind::kUpdate ||
                               parsed.kind == sql::StatementKind::kDelete;

  net::DbRequest tagged;
  // The PROVENANCE rewrite the prototype performs inside libpq. For
  // modifications the prototype instead issues a *separate* reenactment
  // query against the pre-state before executing the statement (§VII-B:
  // "we retrieve the provenance for the update before executing it") —
  // this extra round trip is the Update-step audit overhead of Fig. 7a.
  tagged.sql = provenance_capture && !is_modification && !parsed.provenance
                   ? "PROVENANCE " + request.sql
                   : request.sql;
  tagged.process_id = process_id_;
  tagged.query_id = record.query_id;

  record.t.begin = auditor_->clock_.Tick();
  exec::ResultSet reenactment;
  if (provenance_capture && is_modification) {
    const std::string& table = parsed.kind == sql::StatementKind::kUpdate
                                   ? parsed.update->table
                                   : parsed.del->table;
    const std::string& alias = parsed.kind == sql::StatementKind::kUpdate
                                   ? parsed.update->alias
                                   : parsed.del->alias;
    const sql::Expr* where = parsed.kind == sql::StatementKind::kUpdate
                                 ? parsed.update->where.get()
                                 : parsed.del->where.get();
    net::DbRequest reenact;
    reenact.sql = "PROVENANCE SELECT * FROM " + table;
    if (!alias.empty()) reenact.sql += " " + alias;
    if (where != nullptr) reenact.sql += " WHERE " + where->ToString();
    reenact.process_id = process_id_;
    reenact.query_id = record.query_id;
    LDV_ASSIGN_OR_RETURN(reenactment, backend_->Execute(reenact));
  }
  LDV_ASSIGN_OR_RETURN(exec::ResultSet result, backend_->Execute(tagged));
  record.t.end = auditor_->clock_.Tick();

  if (provenance_capture && is_modification) {
    // The reenactment query's provenance (the matched pre-state versions)
    // is the modification's provenance.
    result.prov_tuples = std::move(reenactment.prov_tuples);
    result.has_provenance = true;
  }
  record.result = &result;
  if (mode == PackageMode::kServerExcluded) {
    // Spool the exact request/response pair for replay (§VII-D). What we
    // replay is what the application saw: the provenance-free response.
    net::DbRequest original = request;
    original.process_id = process_id_;
    original.query_id = record.query_id;
    record.encoded_request = net::EncodeRequest(original);
    record.encoded_response = net::EncodeResponse(Status::Ok(), result);
  }
  LDV_RETURN_IF_ERROR(auditor_->OnDbStatement(record));

  // Strip audit artifacts before handing results to the application.
  result.lineage.clear();
  result.prov_tuples.clear();
  result.has_provenance = false;
  return result;
}

}  // namespace ldv
