#include "ldv/replay_db_client.h"

#include "net/protocol.h"
#include "util/fsutil.h"
#include "util/serde.h"

namespace ldv {

Result<std::unique_ptr<ReplayLog>> ReplayLog::Load(const std::string& path) {
  auto log = std::make_unique<ReplayLog>();
  LDV_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  BufferReader reader(bytes);
  while (!reader.AtEnd()) {
    LDV_ASSIGN_OR_RETURN(std::string request_bytes, reader.GetString());
    LDV_ASSIGN_OR_RETURN(std::string response_bytes, reader.GetString());
    LDV_ASSIGN_OR_RETURN(net::DbRequest request,
                         net::DecodeRequest(request_bytes));
    Entry entry;
    entry.sql = std::move(request.sql);
    entry.process_id = request.process_id;
    entry.response = std::move(response_bytes);
    log->entries_.push_back(std::move(entry));
  }
  return log;
}

Result<exec::ResultSet> ReplayLog::Next(const std::string& sql) {
  // Advance the cursor over already-consumed entries.
  while (cursor_ < entries_.size() && entries_[cursor_].used) ++cursor_;
  for (size_t i = cursor_; i < entries_.size(); ++i) {
    if (entries_[i].used || entries_[i].sql != sql) continue;
    entries_[i].used = true;
    ++replayed_;
    return net::DecodeResponse(entries_[i].response);
  }
  return Status::ReplayMismatch(
      "no recorded response for statement (divergent replay?): " + sql);
}

}  // namespace ldv
