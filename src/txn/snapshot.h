#ifndef LDV_TXN_SNAPSHOT_H_
#define LDV_TXN_SNAPSHOT_H_

#include <cstdint>
#include <map>

#include <mutex>

#include "storage/table.h"

namespace ldv::txn {

/// Hands out consistent read snapshots over the row-version archive the
/// P_Lin provenance model already maintains (DESIGN.md §12).
///
/// Epochs are database statement sequence numbers; the committed epoch is
/// the sequence of the last *committed* statement. A snapshot pins the
/// committed epoch at acquisition: row versions stamped with a later
/// sequence (in-flight writers, uncommitted transactions) are invisible to
/// it, and superseded versions it can still see are protected from archive
/// GC until it is released (OldestLiveEpoch is the GC watermark).
class SnapshotManager {
 public:
  SnapshotManager() = default;

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Pins and returns the current committed epoch. Pair with
  /// ReleaseSnapshot (SnapshotRef does both).
  int64_t AcquireSnapshot();
  void ReleaseSnapshot(int64_t epoch);

  /// Raises the committed epoch (monotone; lower values are ignored).
  /// Called by the engine after every commit point.
  void AdvanceCommitted(int64_t epoch);

  int64_t committed_epoch() const;
  /// The oldest epoch any live snapshot still reads — the archive GC
  /// watermark. Equals the committed epoch when no snapshot is live.
  int64_t OldestLiveEpoch() const;
  int64_t live_snapshots() const;

 private:
  mutable std::mutex mu_;
  int64_t committed_ = 0;
  /// live epoch -> number of snapshots pinning it.
  std::map<int64_t, int64_t> live_;
};

/// RAII snapshot pin. Movable; releasing twice is a no-op. Records the
/// snapshot's age into txn.snapshot_age_micros on release.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  explicit SnapshotRef(SnapshotManager* manager);
  ~SnapshotRef() { Release(); }

  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  SnapshotRef(SnapshotRef&& other) noexcept;
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;

  bool active() const { return manager_ != nullptr; }
  int64_t epoch() const { return epoch_; }

  void Release();

 private:
  SnapshotManager* manager_ = nullptr;
  int64_t epoch_ = 0;
  int64_t acquired_nanos_ = 0;
};

/// The visibility rule for the common case (no archive lookup needed): a
/// row version is visible to a snapshot iff it was created by a statement
/// at or before the snapshot epoch and is not a tombstone. When the live
/// version postdates the epoch, Table::VisibleVersion walks the archive for
/// the newest version the snapshot may see.
inline bool Visible(const storage::RowVersion& version, int64_t epoch) {
  return version.version <= epoch && !version.deleted;
}

}  // namespace ldv::txn

#endif  // LDV_TXN_SNAPSHOT_H_
