#ifndef LDV_TXN_LOCK_REGISTRY_H_
#define LDV_TXN_LOCK_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "txn/rwlock.h"

namespace ldv::txn {

/// The engine's lock hierarchy (DESIGN.md §12): one catalog lock guarding
/// the table set, plus one data lock per table (keyed by table id — ids are
/// never reused, so a lock outliving its dropped table is inert). The
/// acquisition order is always catalog first, then table locks in ascending
/// id order; every statement acquires its whole lock set up front, which
/// makes the hierarchy deadlock-free by construction.
class LockRegistry {
 public:
  LockRegistry() = default;

  LockRegistry(const LockRegistry&) = delete;
  LockRegistry& operator=(const LockRegistry&) = delete;

  SharedMutex* catalog() { return &catalog_; }
  /// The data lock of table `table_id`, created on first use.
  SharedMutex* TableLock(int32_t table_id);

 private:
  std::mutex mu_;
  SharedMutex catalog_;
  std::map<int32_t, std::unique_ptr<SharedMutex>> tables_;
};

/// RAII set of acquired locks, released in reverse acquisition order.
/// Move-only; a failed acquisition releases nothing further but keeps the
/// locks already held until destruction.
class LockSet {
 public:
  LockSet() = default;
  ~LockSet() { Release(); }

  LockSet(const LockSet&) = delete;
  LockSet& operator=(const LockSet&) = delete;
  LockSet(LockSet&& other) noexcept : held_(std::move(other.held_)) {
    other.held_.clear();
  }
  LockSet& operator=(LockSet&& other) noexcept {
    if (this != &other) {
      Release();
      held_ = std::move(other.held_);
      other.held_.clear();
    }
    return *this;
  }

  Status AcquireShared(SharedMutex* mutex,
                       const std::function<Status()>& poll = nullptr);
  Status AcquireExclusive(SharedMutex* mutex,
                          const std::function<Status()>& poll = nullptr);

  /// Releases everything held, newest first. Idempotent.
  void Release();

 private:
  std::vector<std::pair<SharedMutex*, bool>> held_;  // (lock, exclusive)
};

}  // namespace ldv::txn

#endif  // LDV_TXN_LOCK_REGISTRY_H_
