#include "txn/snapshot.h"

#include "common/clock.h"
#include "obs/metrics.h"

namespace ldv::txn {

namespace {

struct SnapshotMetrics {
  obs::Counter* acquired;
  obs::Gauge* live;
  obs::Histogram* age_micros;
};

const SnapshotMetrics& GetSnapshotMetrics() {
  static const SnapshotMetrics metrics{
      obs::MetricsRegistry::Global().counter("txn.snapshots_acquired"),
      obs::MetricsRegistry::Global().gauge("txn.snapshots_live"),
      obs::MetricsRegistry::Global().latency_histogram(
          "txn.snapshot_age_micros")};
  return metrics;
}

}  // namespace

int64_t SnapshotManager::AcquireSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  ++live_[committed_];
  const SnapshotMetrics& metrics = GetSnapshotMetrics();
  metrics.acquired->Add(1);
  int64_t live = 0;
  for (const auto& [epoch, count] : live_) live += count;
  metrics.live->Set(live);
  return committed_;
}

void SnapshotManager::ReleaseSnapshot(int64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(epoch);
  if (it == live_.end()) return;
  if (--it->second <= 0) live_.erase(it);
  int64_t live = 0;
  for (const auto& [e, count] : live_) live += count;
  GetSnapshotMetrics().live->Set(live);
}

void SnapshotManager::AdvanceCommitted(int64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch > committed_) committed_ = epoch;
}

int64_t SnapshotManager::committed_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

int64_t SnapshotManager::OldestLiveEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.empty()) return committed_;
  return std::min(committed_, live_.begin()->first);
}

int64_t SnapshotManager::live_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t live = 0;
  for (const auto& [epoch, count] : live_) live += count;
  return live;
}

SnapshotRef::SnapshotRef(SnapshotManager* manager)
    : manager_(manager),
      epoch_(manager->AcquireSnapshot()),
      acquired_nanos_(NowNanos()) {}

SnapshotRef::SnapshotRef(SnapshotRef&& other) noexcept
    : manager_(other.manager_),
      epoch_(other.epoch_),
      acquired_nanos_(other.acquired_nanos_) {
  other.manager_ = nullptr;
}

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    epoch_ = other.epoch_;
    acquired_nanos_ = other.acquired_nanos_;
    other.manager_ = nullptr;
  }
  return *this;
}

void SnapshotRef::Release() {
  if (manager_ == nullptr) return;
  manager_->ReleaseSnapshot(epoch_);
  GetSnapshotMetrics().age_micros->Observe(
      (NowNanos() - acquired_nanos_) / 1000);
  manager_ = nullptr;
}

}  // namespace ldv::txn
