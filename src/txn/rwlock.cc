#include "txn/rwlock.h"

#include <chrono>

#include "common/clock.h"
#include "obs/metrics.h"

namespace ldv::txn {

namespace {

constexpr auto kWaitSlice = std::chrono::milliseconds(50);

struct LockMetrics {
  obs::Histogram* wait_micros;
  obs::Counter* contentions;
};

const LockMetrics& GetLockMetrics() {
  static const LockMetrics metrics{
      obs::MetricsRegistry::Global().latency_histogram(
          "txn.lock_wait_micros"),
      obs::MetricsRegistry::Global().counter("txn.lock_contentions")};
  return metrics;
}

void RecordWait(int64_t start_nanos) {
  const LockMetrics& metrics = GetLockMetrics();
  metrics.contentions->Add(1);
  metrics.wait_micros->Observe((NowNanos() - start_nanos) / 1000);
}

}  // namespace

Status SharedMutex::LockShared(const std::function<Status()>& poll) {
  std::unique_lock<std::mutex> lock(mu_);
  if (write_depth_ > 0 && writer_ == std::this_thread::get_id()) {
    // Read-within-write: the owner already excludes everyone.
    ++writer_reads_;
    return Status::Ok();
  }
  auto admitted = [&] { return write_depth_ == 0 && writers_waiting_ == 0; };
  if (!admitted()) {
    const int64_t start = NowNanos();
    while (!admitted()) {
      if (poll != nullptr) {
        Status status = poll();
        if (!status.ok()) return status;
      }
      cv_.wait_for(lock, kWaitSlice);
    }
    RecordWait(start);
  }
  ++readers_;
  return Status::Ok();
}

void SharedMutex::UnlockShared() {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_reads_ > 0 && writer_ == std::this_thread::get_id()) {
    --writer_reads_;
    return;
  }
  if (--readers_ == 0) cv_.notify_all();
}

Status SharedMutex::LockExclusive(const std::function<Status()>& poll) {
  std::unique_lock<std::mutex> lock(mu_);
  if (write_depth_ > 0 && writer_ == std::this_thread::get_id()) {
    ++write_depth_;
    return Status::Ok();
  }
  auto admitted = [&] { return readers_ == 0 && write_depth_ == 0; };
  if (!admitted()) {
    ++writers_waiting_;
    const int64_t start = NowNanos();
    while (!admitted()) {
      if (poll != nullptr) {
        Status status = poll();
        if (!status.ok()) {
          if (--writers_waiting_ == 0) cv_.notify_all();
          return status;
        }
      }
      cv_.wait_for(lock, kWaitSlice);
    }
    --writers_waiting_;
    RecordWait(start);
  }
  writer_ = std::this_thread::get_id();
  write_depth_ = 1;
  return Status::Ok();
}

void SharedMutex::UnlockExclusive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--write_depth_ == 0) {
    writer_ = std::thread::id();
    cv_.notify_all();
  }
}

}  // namespace ldv::txn
