#ifndef LDV_TXN_RWLOCK_H_
#define LDV_TXN_RWLOCK_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"

namespace ldv::txn {

/// Writer-preferring reader-writer lock with recursive ownership, the
/// discipline of omniscidb's Catalog/RWLocks.h: the write owner may
/// re-acquire the lock (exclusively or shared) without deadlocking, so a
/// statement that already holds a table exclusively can run nested reads
/// against it. Plain readers are not re-entrant — the engine acquires every
/// lock a statement needs once, up front, in a deduplicated sorted order
/// (DESIGN.md §12), so a thread never re-requests a read lock it holds.
///
/// Writer preference: once a writer is waiting, new readers queue behind it,
/// so a stream of snapshot reads cannot starve DML indefinitely.
///
/// Acquisitions take an optional `poll` callback, invoked every wait slice
/// (~50ms). A non-OK status abandons the acquisition and is returned — this
/// is how the governance kill paths (cancel / deadline / disconnect) reach
/// statements blocked on a lock rather than only ones already executing.
///
/// Contended acquisitions feed the txn.lock_wait_micros histogram and the
/// txn.lock_contentions counter.
class SharedMutex {
 public:
  SharedMutex() = default;

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// Shared (read) acquisition. Re-entrant only for the write owner.
  Status LockShared(const std::function<Status()>& poll = nullptr);
  void UnlockShared();

  /// Exclusive (write) acquisition. Re-entrant for the owning thread.
  Status LockExclusive(const std::function<Status()>& poll = nullptr);
  void UnlockExclusive();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  int writers_waiting_ = 0;
  std::thread::id writer_;  // default id = no writer
  int write_depth_ = 0;
  /// Shared re-entries taken by the write owner (read-within-write).
  int writer_reads_ = 0;
};

}  // namespace ldv::txn

#endif  // LDV_TXN_RWLOCK_H_
