#include "txn/lock_registry.h"

namespace ldv::txn {

SharedMutex* LockRegistry::TableLock(int32_t table_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    it = tables_.emplace(table_id, std::make_unique<SharedMutex>()).first;
  }
  return it->second.get();
}

Status LockSet::AcquireShared(SharedMutex* mutex,
                              const std::function<Status()>& poll) {
  LDV_RETURN_IF_ERROR(mutex->LockShared(poll));
  held_.emplace_back(mutex, false);
  return Status::Ok();
}

Status LockSet::AcquireExclusive(SharedMutex* mutex,
                                 const std::function<Status()>& poll) {
  LDV_RETURN_IF_ERROR(mutex->LockExclusive(poll));
  held_.emplace_back(mutex, true);
  return Status::Ok();
}

void LockSet::Release() {
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    if (it->second) {
      it->first->UnlockExclusive();
    } else {
      it->first->UnlockShared();
    }
  }
  held_.clear();
}

}  // namespace ldv::txn
