#include "sql/ast.h"

#include "util/strings.h"

namespace ldv::sql {
namespace {

std::string_view BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kNotLike:
      return "NOT LIKE";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

/// Shortest decimal rendering of `v` that re-parses to exactly `v` and
/// always re-lexes as a *double* (a '.' or exponent is forced). ToText's
/// %.15g is lossy for one in ~10 doubles and renders 5.0 as "5", which
/// would come back as an integer — wrong type for WAL replay of
/// parameter-substituted DML.
std::string RenderDouble(double v) {
  for (const char* fmt : {"%.15g", "%.16g", "%.17g"}) {
    std::string text = StrFormat(fmt, v);
    Result<double> back = ParseDouble(text);
    if (back.ok() && *back == v) {
      if (text.find_first_of(".eE") == std::string::npos &&
          text.find_first_of("0123456789") != std::string::npos) {
        text += ".0";
      }
      return text;
    }
  }
  return StrFormat("%.17g", v);  // unreachable for finite doubles
}

}  // namespace

Expr::Expr() = default;
Expr::~Expr() = default;
Expr::Expr(Expr&&) noexcept = default;
Expr& Expr::operator=(Expr&&) noexcept = default;

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->name = name;
  out->binary_op = binary_op;
  out->unary_op = unary_op;
  out->negated = negated;
  out->param_index = param_index;
  out->param_type = param_type;
  out->children.reserve(children.size());
  for (const auto& child : children) out->children.push_back(child->Clone());
  if (subquery != nullptr) out->subquery = CloneSelect(*subquery);
  return out;
}

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& select) {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = select.distinct;
  for (const SelectItem& item : select.items) {
    SelectItem clone;
    clone.expr = item.expr->Clone();
    clone.alias = item.alias;
    out->items.push_back(std::move(clone));
  }
  for (const TableRef& ref : select.from) {
    TableRef clone;
    clone.table = ref.table;
    clone.alias = ref.alias;
    clone.join_type = ref.join_type;
    if (ref.join_condition != nullptr) {
      clone.join_condition = ref.join_condition->Clone();
    }
    out->from.push_back(std::move(clone));
  }
  if (select.where != nullptr) out->where = select.where->Clone();
  for (const auto& g : select.group_by) out->group_by.push_back(g->Clone());
  if (select.having != nullptr) out->having = select.having->Clone();
  for (const OrderItem& o : select.order_by) {
    OrderItem clone;
    clone.expr = o.expr->Clone();
    clone.ascending = o.ascending;
    out->order_by.push_back(std::move(clone));
  }
  out->limit = select.limit;
  return out;
}

std::string SelectToString(const SelectStmt& select) {
  std::string out = "SELECT ";
  if (select.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += select.items[i].expr->ToString();
    if (!select.items[i].alias.empty()) {
      out += " AS " + select.items[i].alias;
    }
  }
  for (size_t i = 0; i < select.from.size(); ++i) {
    const TableRef& ref = select.from[i];
    if (i == 0) {
      out += " FROM ";
    } else if (ref.join_condition != nullptr) {
      out += ref.join_type == JoinType::kLeft ? " LEFT JOIN " : " JOIN ";
    } else {
      out += ", ";
    }
    out += ref.table;
    if (!ref.alias.empty()) out += " " + ref.alias;
    if (i > 0 && ref.join_condition != nullptr) {
      out += " ON " + ref.join_condition->ToString();
    }
  }
  if (select.where != nullptr) out += " WHERE " + select.where->ToString();
  if (!select.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < select.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += select.group_by[i]->ToString();
    }
  }
  if (select.having != nullptr) out += " HAVING " + select.having->ToString();
  if (!select.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < select.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += select.order_by[i].expr->ToString();
      if (!select.order_by[i].ascending) out += " DESC";
    }
  }
  if (select.limit.has_value()) {
    out += " LIMIT " + std::to_string(*select.limit);
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == storage::ValueType::kString) {
        // Rendered expressions must re-parse (the auditing client builds
        // reenactment queries from them), so quotes are '' -escaped.
        std::string escaped;
        for (char c : literal.ToText()) {
          escaped.push_back(c);
          if (c == '\'') escaped.push_back('\'');
        }
        return "'" + escaped + "'";
      }
      if (literal.type() == storage::ValueType::kDouble) {
        return RenderDouble(literal.AsDouble());
      }
      return literal.is_null() ? "NULL" : literal.ToText();
    case ExprKind::kParameter:
      return "$" + std::to_string(param_index + 1);
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kStar:
      return table.empty() ? "*" : table + ".*";
    case ExprKind::kUnary:
      switch (unary_op) {
        case UnaryOp::kNot:
          return "NOT (" + children[0]->ToString() + ")";
        case UnaryOp::kNeg:
          return "-(" + children[0]->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + children[0]->ToString() + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + children[0]->ToString() + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             std::string(BinaryOpSymbol(binary_op)) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kBetween:
      return "(" + children[0]->ToString() + (negated ? " NOT" : "") +
             " BETWEEN " + children[1]->ToString() + " AND " +
             children[2]->ToString() + ")";
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToString() +
                        (negated ? " NOT IN (" : " IN (");
      if (subquery != nullptr) {
        out += SelectToString(*subquery);
      } else {
        for (size_t i = 1; i < children.size(); ++i) {
          if (i > 1) out += ", ";
          out += children[i]->ToString();
        }
      }
      return out + "))";
    }
    case ExprKind::kSubquery:
      return "(" + SelectToString(*subquery) + ")";
    case ExprKind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" +
             SelectToString(*subquery) + ")";
    case ExprKind::kFuncCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

std::unique_ptr<Expr> MakeLiteral(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

bool IsAggregateFunction(std::string_view name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max");
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFuncCall && IsAggregateFunction(expr.name)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

PrepareStmt::PrepareStmt() = default;
PrepareStmt::~PrepareStmt() = default;
PrepareStmt::PrepareStmt(PrepareStmt&&) noexcept = default;
PrepareStmt& PrepareStmt::operator=(PrepareStmt&&) noexcept = default;

Statement CloneStatement(const Statement& stmt) {
  Statement out;
  out.kind = stmt.kind;
  out.provenance = stmt.provenance;
  out.explain = stmt.explain;
  out.analyze = stmt.analyze;
  out.num_params = stmt.num_params;
  if (stmt.select != nullptr) out.select = CloneSelect(*stmt.select);
  if (stmt.insert != nullptr) {
    auto insert = std::make_unique<InsertStmt>();
    insert->table = stmt.insert->table;
    insert->columns = stmt.insert->columns;
    for (const auto& row : stmt.insert->rows) {
      std::vector<std::unique_ptr<Expr>> clone;
      clone.reserve(row.size());
      for (const auto& e : row) clone.push_back(e->Clone());
      insert->rows.push_back(std::move(clone));
    }
    if (stmt.insert->select != nullptr) {
      insert->select = CloneSelect(*stmt.insert->select);
    }
    out.insert = std::move(insert);
  }
  if (stmt.update != nullptr) {
    auto update = std::make_unique<UpdateStmt>();
    update->table = stmt.update->table;
    update->alias = stmt.update->alias;
    for (const auto& [col, e] : stmt.update->assignments) {
      update->assignments.emplace_back(col, e->Clone());
    }
    if (stmt.update->where != nullptr) {
      update->where = stmt.update->where->Clone();
    }
    out.update = std::move(update);
  }
  if (stmt.del != nullptr) {
    auto del = std::make_unique<DeleteStmt>();
    del->table = stmt.del->table;
    del->alias = stmt.del->alias;
    if (stmt.del->where != nullptr) del->where = stmt.del->where->Clone();
    out.del = std::move(del);
  }
  return out;
}

std::string InsertToString(const InsertStmt& insert) {
  std::string out = "INSERT INTO " + insert.table;
  if (!insert.columns.empty()) {
    out += " (";
    for (size_t i = 0; i < insert.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += insert.columns[i];
    }
    out += ")";
  }
  if (insert.select != nullptr) {
    return out + " " + SelectToString(*insert.select);
  }
  out += " VALUES ";
  for (size_t r = 0; r < insert.rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t i = 0; i < insert.rows[r].size(); ++i) {
      if (i > 0) out += ", ";
      out += insert.rows[r][i]->ToString();
    }
    out += ")";
  }
  return out;
}

std::string UpdateToString(const UpdateStmt& update) {
  std::string out = "UPDATE " + update.table;
  if (!update.alias.empty()) out += " " + update.alias;
  out += " SET ";
  for (size_t i = 0; i < update.assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += update.assignments[i].first + " = " +
           update.assignments[i].second->ToString();
  }
  if (update.where != nullptr) out += " WHERE " + update.where->ToString();
  return out;
}

std::string DeleteToString(const DeleteStmt& del) {
  std::string out = "DELETE FROM " + del.table;
  if (!del.alias.empty()) out += " " + del.alias;
  if (del.where != nullptr) out += " WHERE " + del.where->ToString();
  return out;
}

std::string StatementToString(const Statement& stmt) {
  std::string prefix;
  if (stmt.provenance) prefix = "PROVENANCE ";
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return prefix + SelectToString(*stmt.select);
    case StatementKind::kInsert:
      return prefix + InsertToString(*stmt.insert);
    case StatementKind::kUpdate:
      return prefix + UpdateToString(*stmt.update);
    case StatementKind::kDelete:
      return prefix + DeleteToString(*stmt.del);
    default:
      return prefix;  // only preparable kinds are rendered
  }
}

namespace {

Status SubstituteExpr(Expr* expr, const std::vector<storage::Value>& params) {
  if (expr->kind == ExprKind::kParameter) {
    if (expr->param_index < 0 ||
        expr->param_index >= static_cast<int>(params.size())) {
      return Status::InvalidArgument(
          "parameter $" + std::to_string(expr->param_index + 1) +
          " has no bound value (" + std::to_string(params.size()) +
          " supplied)");
    }
    expr->kind = ExprKind::kLiteral;
    expr->literal = params[expr->param_index];
    expr->param_index = -1;
    return Status::Ok();
  }
  for (auto& child : expr->children) {
    LDV_RETURN_IF_ERROR(SubstituteExpr(child.get(), params));
  }
  // Subqueries cannot contain placeholders (the parser rejects them), so
  // expr->subquery needs no walk.
  return Status::Ok();
}

template <typename Fn>
void VisitExprs(Expr* expr, const Fn& fn) {
  fn(expr);
  for (auto& child : expr->children) VisitExprs(child.get(), fn);
}

template <typename Fn>
void VisitSelectExprs(SelectStmt* select, const Fn& fn) {
  for (auto& item : select->items) VisitExprs(item.expr.get(), fn);
  for (auto& ref : select->from) {
    if (ref.join_condition != nullptr) {
      VisitExprs(ref.join_condition.get(), fn);
    }
  }
  if (select->where != nullptr) VisitExprs(select->where.get(), fn);
  for (auto& g : select->group_by) VisitExprs(g.get(), fn);
  if (select->having != nullptr) VisitExprs(select->having.get(), fn);
  for (auto& o : select->order_by) VisitExprs(o.expr.get(), fn);
}

template <typename Fn>
void VisitStatementExprs(Statement* stmt, const Fn& fn) {
  if (stmt->select != nullptr) VisitSelectExprs(stmt->select.get(), fn);
  if (stmt->insert != nullptr) {
    for (auto& row : stmt->insert->rows) {
      for (auto& e : row) VisitExprs(e.get(), fn);
    }
    if (stmt->insert->select != nullptr) {
      VisitSelectExprs(stmt->insert->select.get(), fn);
    }
  }
  if (stmt->update != nullptr) {
    for (auto& [col, e] : stmt->update->assignments) VisitExprs(e.get(), fn);
    if (stmt->update->where != nullptr) {
      VisitExprs(stmt->update->where.get(), fn);
    }
  }
  if (stmt->del != nullptr && stmt->del->where != nullptr) {
    VisitExprs(stmt->del->where.get(), fn);
  }
}

}  // namespace

Status SubstituteParameters(Statement* stmt,
                            const std::vector<storage::Value>& params) {
  Status status = Status::Ok();
  VisitStatementExprs(stmt, [&](Expr* e) {
    if (!status.ok()) return;
    if (e->kind == ExprKind::kParameter) {
      status = SubstituteExpr(e, params);
    }
  });
  LDV_RETURN_IF_ERROR(status);
  stmt->num_params = 0;
  return Status::Ok();
}

void AnnotateParameterTypes(Statement* stmt,
                            const std::vector<storage::ValueType>& types) {
  VisitStatementExprs(stmt, [&](Expr* e) {
    if (e->kind == ExprKind::kParameter && e->param_index >= 0 &&
        e->param_index < static_cast<int>(types.size())) {
      e->param_type = types[e->param_index];
    }
  });
}

}  // namespace ldv::sql
