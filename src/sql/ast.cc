#include "sql/ast.h"

#include "util/strings.h"

namespace ldv::sql {
namespace {

std::string_view BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kNotLike:
      return "NOT LIKE";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

}  // namespace

Expr::Expr() = default;
Expr::~Expr() = default;
Expr::Expr(Expr&&) noexcept = default;
Expr& Expr::operator=(Expr&&) noexcept = default;

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->name = name;
  out->binary_op = binary_op;
  out->unary_op = unary_op;
  out->negated = negated;
  out->children.reserve(children.size());
  for (const auto& child : children) out->children.push_back(child->Clone());
  if (subquery != nullptr) out->subquery = CloneSelect(*subquery);
  return out;
}

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& select) {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = select.distinct;
  for (const SelectItem& item : select.items) {
    SelectItem clone;
    clone.expr = item.expr->Clone();
    clone.alias = item.alias;
    out->items.push_back(std::move(clone));
  }
  for (const TableRef& ref : select.from) {
    TableRef clone;
    clone.table = ref.table;
    clone.alias = ref.alias;
    clone.join_type = ref.join_type;
    if (ref.join_condition != nullptr) {
      clone.join_condition = ref.join_condition->Clone();
    }
    out->from.push_back(std::move(clone));
  }
  if (select.where != nullptr) out->where = select.where->Clone();
  for (const auto& g : select.group_by) out->group_by.push_back(g->Clone());
  if (select.having != nullptr) out->having = select.having->Clone();
  for (const OrderItem& o : select.order_by) {
    OrderItem clone;
    clone.expr = o.expr->Clone();
    clone.ascending = o.ascending;
    out->order_by.push_back(std::move(clone));
  }
  out->limit = select.limit;
  return out;
}

std::string SelectToString(const SelectStmt& select) {
  std::string out = "SELECT ";
  if (select.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += select.items[i].expr->ToString();
    if (!select.items[i].alias.empty()) {
      out += " AS " + select.items[i].alias;
    }
  }
  for (size_t i = 0; i < select.from.size(); ++i) {
    const TableRef& ref = select.from[i];
    if (i == 0) {
      out += " FROM ";
    } else if (ref.join_condition != nullptr) {
      out += ref.join_type == JoinType::kLeft ? " LEFT JOIN " : " JOIN ";
    } else {
      out += ", ";
    }
    out += ref.table;
    if (!ref.alias.empty()) out += " " + ref.alias;
    if (i > 0 && ref.join_condition != nullptr) {
      out += " ON " + ref.join_condition->ToString();
    }
  }
  if (select.where != nullptr) out += " WHERE " + select.where->ToString();
  if (!select.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < select.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += select.group_by[i]->ToString();
    }
  }
  if (select.having != nullptr) out += " HAVING " + select.having->ToString();
  if (!select.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < select.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += select.order_by[i].expr->ToString();
      if (!select.order_by[i].ascending) out += " DESC";
    }
  }
  if (select.limit.has_value()) {
    out += " LIMIT " + std::to_string(*select.limit);
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == storage::ValueType::kString) {
        // Rendered expressions must re-parse (the auditing client builds
        // reenactment queries from them), so quotes are '' -escaped.
        std::string escaped;
        for (char c : literal.ToText()) {
          escaped.push_back(c);
          if (c == '\'') escaped.push_back('\'');
        }
        return "'" + escaped + "'";
      }
      return literal.is_null() ? "NULL" : literal.ToText();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kStar:
      return table.empty() ? "*" : table + ".*";
    case ExprKind::kUnary:
      switch (unary_op) {
        case UnaryOp::kNot:
          return "NOT (" + children[0]->ToString() + ")";
        case UnaryOp::kNeg:
          return "-(" + children[0]->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + children[0]->ToString() + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + children[0]->ToString() + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             std::string(BinaryOpSymbol(binary_op)) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kBetween:
      return "(" + children[0]->ToString() + (negated ? " NOT" : "") +
             " BETWEEN " + children[1]->ToString() + " AND " +
             children[2]->ToString() + ")";
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToString() +
                        (negated ? " NOT IN (" : " IN (");
      if (subquery != nullptr) {
        out += SelectToString(*subquery);
      } else {
        for (size_t i = 1; i < children.size(); ++i) {
          if (i > 1) out += ", ";
          out += children[i]->ToString();
        }
      }
      return out + "))";
    }
    case ExprKind::kSubquery:
      return "(" + SelectToString(*subquery) + ")";
    case ExprKind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" +
             SelectToString(*subquery) + ")";
    case ExprKind::kFuncCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

std::unique_ptr<Expr> MakeLiteral(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

bool IsAggregateFunction(std::string_view name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max");
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFuncCall && IsAggregateFunction(expr.name)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

}  // namespace ldv::sql
