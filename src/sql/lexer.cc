#include "sql/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace ldv::sql {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&](TokenType type, size_t offset, std::string text = {}) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated block comment");
      }
      i = end + 2;
      continue;
    }
    const size_t start = i;
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      ++i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      push(TokenType::kIdentifier, start, std::string(sql.substr(start, i - start)));
      continue;
    }
    // Quoted identifier.
    if (c == '"') {
      ++i;
      std::string text;
      while (i < n && sql[i] != '"') text.push_back(sql[i++]);
      if (i >= n) return Status::ParseError("unterminated quoted identifier");
      ++i;
      push(TokenType::kIdentifier, start, std::move(text));
      continue;
    }
    // String literal with '' escape.
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
          } else {
            break;
          }
        } else {
          text.push_back(sql[i++]);
        }
      }
      if (i >= n) return Status::ParseError("unterminated string literal");
      ++i;  // closing quote
      push(TokenType::kStringLiteral, start, std::move(text));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])) != 0)) {
      bool is_double = false;
      ++i;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
          ++i;
        } else if (d == '.') {
          is_double = true;
          ++i;
        } else if (d == 'e' || d == 'E') {
          is_double = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      std::string text(sql.substr(start, i - start));
      Token t;
      t.offset = start;
      t.text = text;
      if (is_double) {
        LDV_ASSIGN_OR_RETURN(t.double_value, ParseDouble(text));
        t.type = TokenType::kDoubleLiteral;
      } else {
        Result<int64_t> v = ParseInt64(text);
        if (v.ok()) {
          t.int_value = *v;
          t.type = TokenType::kIntLiteral;
        } else {
          // Out-of-range integer literal degrades to double.
          LDV_ASSIGN_OR_RETURN(t.double_value, ParseDouble(text));
          t.type = TokenType::kDoubleLiteral;
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case ',':
        push(TokenType::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, start);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, start);
        ++i;
        break;
      case '%':
        push(TokenType::kPercent, start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        break;
      case '|':
        if (i + 1 < n && sql[i + 1] == '|') {
          push(TokenType::kConcat, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '|' at offset " +
                                    std::to_string(start));
        }
        break;
      case '?':
        push(TokenType::kQuestion, start);
        ++i;
        break;
      case '$': {
        ++i;
        size_t digits = i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i])) != 0) {
          ++i;
        }
        if (i == digits) {
          return Status::ParseError("expected digits after '$' at offset " +
                                    std::to_string(start));
        }
        std::string text(sql.substr(digits, i - digits));
        Token t;
        t.offset = start;
        t.text = "$" + text;
        LDV_ASSIGN_OR_RETURN(t.int_value, ParseInt64(text));
        t.type = TokenType::kParam;
        tokens.push_back(std::move(t));
        break;
      }
      default:
        return Status::ParseError(StrFormat(
            "unexpected character '%c' at offset %zu", c, start));
    }
  }
  push(TokenType::kEnd, n);
  return tokens;
}

}  // namespace ldv::sql
