#ifndef LDV_SQL_AST_H_
#define LDV_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace ldv::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kStar,      // '*' or 'alias.*' inside COUNT(*) / select list
  kUnary,
  kBinary,
  kBetween,   // children: value, low, high
  kInList,    // children: value, item... — or value + `subquery`
  kFuncCall,  // children: args; name in `name`
  kSubquery,  // scalar subquery: `subquery` set, no children
  kExists,    // EXISTS (subquery): `subquery` set
  kParameter,  // ? / $N placeholder, bound at EXECUTE time
};

enum class BinaryOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLike,
  kNotLike,
  kConcat,
};

enum class UnaryOp : uint8_t {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

struct SelectStmt;

/// Expression tree node. A single struct with a kind tag keeps cloning and
/// serialization straightforward.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  storage::Value literal;  // kLiteral
  std::string table;       // kColumnRef/kStar qualifier (may be empty)
  std::string column;      // kColumnRef column name
  std::string name;        // kFuncCall function name (upper-cased)
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  bool negated = false;  // NOT BETWEEN / NOT IN / NOT EXISTS
  /// kParameter: 0-based position (`?` assigns the next free slot, `$N`
  /// maps to N-1), and the value type the binder should assume. The parser
  /// leaves param_type as kNull; the plan cache stamps it per execution's
  /// parameter-type signature so a cached plan binds exactly like the same
  /// statement with literals inlined.
  int param_index = -1;
  storage::ValueType param_type = storage::ValueType::kNull;
  std::vector<std::unique_ptr<Expr>> children;
  /// kSubquery / kExists / kInList-over-subquery (uncorrelated).
  std::unique_ptr<SelectStmt> subquery;

  Expr();
  ~Expr();
  Expr(Expr&&) noexcept;
  Expr& operator=(Expr&&) noexcept;

  std::unique_ptr<Expr> Clone() const;
  /// SQL-ish rendering, used in trace labels and error messages. Renders a
  /// form that re-parses to an equivalent expression.
  std::string ToString() const;
};

std::unique_ptr<Expr> MakeLiteral(storage::Value v);
std::unique_ptr<Expr> MakeColumnRef(std::string table, std::string column);
std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs);
std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> operand);

/// True if the function name is one of the supported aggregates
/// (COUNT/SUM/AVG/MIN/MAX).
bool IsAggregateFunction(std::string_view name);

/// True if any node in the tree is an aggregate call.
bool ContainsAggregate(const Expr& expr);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kAlterTableAddColumn,
  kCreateIndex,
  kCopy,
  kTransaction,  // BEGIN/COMMIT/ROLLBACK — accepted, no-ops
  kPrepare,      // PREPARE name AS <statement>
  kExecute,      // EXECUTE name (args...)
  kDeallocate,   // DEALLOCATE [PREPARE] name | ALL
};

struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  // empty when none
};

/// How a FROM entry joins the entries before it.
enum class JoinType : uint8_t { kInner, kLeft };

struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name
  JoinType join_type = JoinType::kInner;
  /// Explicit ON condition ([INNER|LEFT] JOIN ... ON ...); null for
  /// comma-list entries.
  std::unique_ptr<Expr> join_condition;

  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;          // may be null
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;         // may be null
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = all, schema order
  /// Literal rows (VALUES ...); empty when `select` is set.
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
  std::unique_ptr<SelectStmt> select;  // INSERT ... SELECT
};

struct UpdateStmt {
  std::string table;
  std::string alias;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;  // may be null
};

struct DeleteStmt {
  std::string table;
  std::string alias;
  std::unique_ptr<Expr> where;  // may be null
};

struct CreateTableStmt {
  std::string table;
  bool if_not_exists = false;
  std::vector<storage::Column> columns;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct AlterTableAddColumnStmt {
  std::string table;
  storage::Column column;
};

/// CREATE INDEX <name> ON <table> (<column>) — a hash index for equality
/// probes (point lookups and reenactment WHERE clauses).
struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
  bool if_not_exists = false;
};

/// COPY <table> FROM '<path>' (CSV) — the bulk-load utility the paper assumes
/// applications may use.
struct CopyStmt {
  std::string table;
  std::string path;
  bool from = true;  // COPY ... FROM; false = COPY ... TO
};

struct TransactionStmt {
  enum class Kind { kBegin, kCommit, kRollback } kind = Kind::kBegin;
};

struct Statement;

/// PREPARE <name> AS <statement>. The body is any preparable statement
/// (SELECT/INSERT/UPDATE/DELETE) and may contain `?` / `$N` placeholders.
struct PrepareStmt {
  std::string name;
  std::unique_ptr<Statement> body;

  PrepareStmt();
  ~PrepareStmt();
  PrepareStmt(PrepareStmt&&) noexcept;
  PrepareStmt& operator=(PrepareStmt&&) noexcept;
};

/// EXECUTE <name> [(arg, ...)]. Arguments are constant expressions
/// evaluated at execute time and bound to the body's placeholders.
struct ExecuteStmt {
  std::string name;
  std::vector<std::unique_ptr<Expr>> args;
};

/// DEALLOCATE [PREPARE] <name> | ALL.
struct DeallocateStmt {
  std::string name;  // empty when `all`
  bool all = false;
};

/// A parsed statement. Exactly one member (per `kind`) is populated.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  /// Perm-style PROVENANCE prefix: the engine returns Lineage for the
  /// statement's results (paper §VII-B/C).
  bool provenance = false;
  /// EXPLAIN [ANALYZE] prefix: render the plan instead of the query result;
  /// ANALYZE also executes and reports per-operator rows/timings.
  bool explain = false;
  bool analyze = false;
  /// Number of placeholder slots this statement references (max over `?`
  /// positions and `$N` indices); 0 for ordinary statements.
  int num_params = 0;

  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<AlterTableAddColumnStmt> alter_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<CopyStmt> copy;
  std::unique_ptr<TransactionStmt> transaction;
  std::unique_ptr<PrepareStmt> prepare;
  std::unique_ptr<ExecuteStmt> execute;
  std::unique_ptr<DeallocateStmt> deallocate;
};

/// Deep copy / rendering of a SELECT (used by Expr::Clone / Expr::ToString
/// for subqueries).
std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& select);
std::string SelectToString(const SelectStmt& select);

/// Deep copy of a whole statement (plan-cache AST entries are shared and
/// cloned per use; only preparable kinds — SELECT/INSERT/UPDATE/DELETE —
/// plus the flags and num_params are copied).
Statement CloneStatement(const Statement& stmt);

/// SQL rendering of a statement that re-parses to an equivalent statement.
/// Supports SELECT/INSERT/UPDATE/DELETE (the WAL logs the rendered text of
/// parameter-substituted DML). Doubles render with enough digits to
/// round-trip exactly and always with a '.' or exponent so the re-parsed
/// literal stays a double.
std::string StatementToString(const Statement& stmt);
std::string InsertToString(const InsertStmt& insert);
std::string UpdateToString(const UpdateStmt& update);
std::string DeleteToString(const DeleteStmt& del);

/// Replaces every kParameter node in `stmt` (in place) with a kLiteral of
/// the corresponding value. Errors if a placeholder index is out of range.
Status SubstituteParameters(Statement* stmt,
                            const std::vector<storage::Value>& params);

/// Stamps Expr::param_type on every kParameter node from `types` (indexed
/// by param_index) so binding infers the same result types the same
/// statement with literals inlined would.
void AnnotateParameterTypes(Statement* stmt,
                            const std::vector<storage::ValueType>& types);

}  // namespace ldv::sql

#endif  // LDV_SQL_AST_H_
