#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"
#include "util/strings.h"

namespace ldv::sql {
namespace {

using storage::Column;
using storage::Value;
using storage::ValueType;

/// Recursive-descent parser over the token stream. Keywords are recognized
/// case-insensitively; identifiers that look like keywords are accepted as
/// names when unambiguous, matching common engine behavior closely enough
/// for the workloads in this repository.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    LDV_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    ConsumeIf(TokenType::kSemicolon);
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseScriptTokens() {
    std::vector<Statement> out;
    while (Peek().type != TokenType::kEnd) {
      if (ConsumeIf(TokenType::kSemicolon)) continue;
      LDV_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
      out.push_back(std::move(stmt));
      if (Peek().type != TokenType::kEnd) {
        LDV_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
      }
    }
    return out;
  }

 private:
  const Token& Peek(size_t lookahead = 0) const {
    size_t i = pos_ + lookahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool ConsumeIf(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (Peek().IsKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenType type) {
    if (Peek().type != type) {
      return Status::ParseError(
          StrFormat("expected %s but found %s ('%s') at offset %zu",
                    std::string(TokenTypeName(type)).c_str(),
                    std::string(TokenTypeName(Peek().type)).c_str(),
                    Peek().text.c_str(), Peek().offset));
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Status::ParseError(
          StrFormat("expected keyword %s at offset %zu ('%s')",
                    std::string(keyword).c_str(), Peek().offset,
                    Peek().text.c_str()));
    }
    return Status::Ok();
  }

  Status Err(std::string msg) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu ('%s')", msg.c_str(), Peek().offset,
                  Peek().text.c_str()));
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError(StrFormat("expected identifier at offset %zu",
                                          Peek().offset));
    }
    return Advance().text;
  }

  /// An identifier that must not be a reserved word (table/column names).
  Result<std::string> ExpectName() {
    if (Peek().type == TokenType::kIdentifier && IsReservedWord(Peek().text)) {
      return Status::ParseError(
          StrFormat("reserved word '%s' used as a name at offset %zu",
                    Peek().text.c_str(), Peek().offset));
    }
    return ExpectIdentifier();
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    LDV_ASSIGN_OR_RETURN(ref.table, ExpectName());
    if (ConsumeKeyword("as")) {
      LDV_ASSIGN_OR_RETURN(ref.alias, ExpectName());
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsClauseKeyword(Peek().text)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // --- statements -----------------------------------------------------

  Result<Statement> ParseStatementInner() {
    // Placeholder indices are per statement; save/restore around the body
    // so PREPARE's recursive parse gives the inner statement its own count.
    const int saved = num_params_;
    num_params_ = 0;
    Result<Statement> result = ParseStatementKind();
    if (result.ok()) result->num_params = num_params_;
    num_params_ = saved;
    return result;
  }

  Result<Statement> ParseStatementKind() {
    Statement stmt;
    if (ConsumeKeyword("explain")) {
      stmt.explain = true;
      if (ConsumeKeyword("analyze")) stmt.analyze = true;
    }
    if (ConsumeKeyword("provenance")) stmt.provenance = true;
    const Token& t = Peek();
    if (t.IsKeyword("select")) {
      stmt.kind = StatementKind::kSelect;
      LDV_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (t.IsKeyword("insert")) {
      stmt.kind = StatementKind::kInsert;
      LDV_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else if (t.IsKeyword("update")) {
      stmt.kind = StatementKind::kUpdate;
      LDV_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
    } else if (t.IsKeyword("delete")) {
      stmt.kind = StatementKind::kDelete;
      LDV_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
    } else if (t.IsKeyword("create")) {
      if (Peek(1).IsKeyword("index")) {
        stmt.kind = StatementKind::kCreateIndex;
        LDV_ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndex());
        return stmt;
      }
      stmt.kind = StatementKind::kCreateTable;
      LDV_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
    } else if (t.IsKeyword("drop")) {
      stmt.kind = StatementKind::kDropTable;
      LDV_ASSIGN_OR_RETURN(stmt.drop_table, ParseDropTable());
    } else if (t.IsKeyword("alter")) {
      stmt.kind = StatementKind::kAlterTableAddColumn;
      LDV_ASSIGN_OR_RETURN(stmt.alter_table, ParseAlterTable());
    } else if (t.IsKeyword("copy")) {
      stmt.kind = StatementKind::kCopy;
      LDV_ASSIGN_OR_RETURN(stmt.copy, ParseCopy());
    } else if (t.IsKeyword("prepare")) {
      if (stmt.explain || stmt.provenance) {
        return Err("PREPARE cannot be combined with EXPLAIN or PROVENANCE");
      }
      stmt.kind = StatementKind::kPrepare;
      LDV_ASSIGN_OR_RETURN(stmt.prepare, ParsePrepare());
    } else if (t.IsKeyword("execute")) {
      if (stmt.explain || stmt.provenance) {
        return Err("EXECUTE cannot be combined with EXPLAIN or PROVENANCE");
      }
      stmt.kind = StatementKind::kExecute;
      LDV_ASSIGN_OR_RETURN(stmt.execute, ParseExecute());
      if (num_params_ > 0) {
        return Err("EXECUTE arguments cannot contain placeholders");
      }
    } else if (t.IsKeyword("deallocate")) {
      stmt.kind = StatementKind::kDeallocate;
      LDV_ASSIGN_OR_RETURN(stmt.deallocate, ParseDeallocate());
    } else if (t.IsKeyword("begin") || t.IsKeyword("commit") ||
               t.IsKeyword("rollback")) {
      stmt.kind = StatementKind::kTransaction;
      auto txn = std::make_unique<TransactionStmt>();
      if (t.IsKeyword("begin")) txn->kind = TransactionStmt::Kind::kBegin;
      if (t.IsKeyword("commit")) txn->kind = TransactionStmt::Kind::kCommit;
      if (t.IsKeyword("rollback")) {
        txn->kind = TransactionStmt::Kind::kRollback;
      }
      Advance();
      ConsumeKeyword("transaction");
      ConsumeKeyword("work");
      stmt.transaction = std::move(txn);
    } else {
      return Err("expected a statement");
    }
    return stmt;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto select = std::make_unique<SelectStmt>();
    if (ConsumeKeyword("distinct")) select->distinct = true;
    // Select list.
    while (true) {
      SelectItem item;
      LDV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("as")) {
        LDV_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsClauseKeyword(Peek().text)) {
        item.alias = Advance().text;
      }
      select->items.push_back(std::move(item));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    // FROM.
    if (ConsumeKeyword("from")) {
      LDV_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
      select->from.push_back(std::move(first));
      while (true) {
        if (ConsumeIf(TokenType::kComma)) {
          LDV_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
          select->from.push_back(std::move(ref));
          continue;
        }
        // Explicit joins: [INNER|LEFT [OUTER]] JOIN t [alias] ON cond.
        if (Peek().IsKeyword("join") || Peek().IsKeyword("inner") ||
            Peek().IsKeyword("left")) {
          JoinType join_type = JoinType::kInner;
          if (ConsumeKeyword("left")) {
            ConsumeKeyword("outer");
            join_type = JoinType::kLeft;
          } else {
            ConsumeKeyword("inner");
          }
          LDV_RETURN_IF_ERROR(ExpectKeyword("join"));
          LDV_ASSIGN_OR_RETURN(TableRef joined, ParseTableRef());
          joined.join_type = join_type;
          LDV_RETURN_IF_ERROR(ExpectKeyword("on"));
          LDV_ASSIGN_OR_RETURN(joined.join_condition, ParseExpr());
          select->from.push_back(std::move(joined));
          continue;
        }
        break;
      }
    }
    // WHERE.
    if (ConsumeKeyword("where")) {
      LDV_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }
    // GROUP BY.
    if (ConsumeKeyword("group")) {
      LDV_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        select->group_by.push_back(std::move(e));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    }
    // HAVING.
    if (ConsumeKeyword("having")) {
      LDV_ASSIGN_OR_RETURN(select->having, ParseExpr());
    }
    // ORDER BY.
    if (ConsumeKeyword("order")) {
      LDV_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        LDV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("desc")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("asc");
        }
        select->order_by.push_back(std::move(item));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    }
    // LIMIT.
    if (ConsumeKeyword("limit")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Err("LIMIT expects an integer");
      }
      select->limit = Advance().int_value;
    }
    return select;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("insert"));
    LDV_RETURN_IF_ERROR(ExpectKeyword("into"));
    auto insert = std::make_unique<InsertStmt>();
    LDV_ASSIGN_OR_RETURN(insert->table, ExpectIdentifier());
    if (Peek().type == TokenType::kLParen) {
      Advance();
      while (true) {
        LDV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        insert->columns.push_back(std::move(col));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
      LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    if (ConsumeKeyword("values")) {
      while (true) {
        LDV_RETURN_IF_ERROR(Expect(TokenType::kLParen));
        std::vector<std::unique_ptr<Expr>> row;
        while (true) {
          LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
          row.push_back(std::move(e));
          if (!ConsumeIf(TokenType::kComma)) break;
        }
        LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        insert->rows.push_back(std::move(row));
        if (!ConsumeIf(TokenType::kComma)) break;
      }
    } else if (Peek().IsKeyword("select")) {
      LDV_ASSIGN_OR_RETURN(insert->select, ParseSelect());
    } else {
      return Err("INSERT expects VALUES or SELECT");
    }
    return insert;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("update"));
    auto update = std::make_unique<UpdateStmt>();
    LDV_ASSIGN_OR_RETURN(update->table, ExpectIdentifier());
    if (Peek().type == TokenType::kIdentifier && !Peek().IsKeyword("set")) {
      update->alias = Advance().text;
    }
    LDV_RETURN_IF_ERROR(ExpectKeyword("set"));
    while (true) {
      LDV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      LDV_RETURN_IF_ERROR(Expect(TokenType::kEq));
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      update->assignments.emplace_back(std::move(col), std::move(e));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    if (ConsumeKeyword("where")) {
      LDV_ASSIGN_OR_RETURN(update->where, ParseExpr());
    }
    return update;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("delete"));
    LDV_RETURN_IF_ERROR(ExpectKeyword("from"));
    auto del = std::make_unique<DeleteStmt>();
    LDV_ASSIGN_OR_RETURN(del->table, ExpectIdentifier());
    if (Peek().type == TokenType::kIdentifier && !Peek().IsKeyword("where")) {
      del->alias = Advance().text;
    }
    if (ConsumeKeyword("where")) {
      LDV_ASSIGN_OR_RETURN(del->where, ParseExpr());
    }
    return del;
  }

  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("create"));
    LDV_RETURN_IF_ERROR(ExpectKeyword("table"));
    auto create = std::make_unique<CreateTableStmt>();
    if (ConsumeKeyword("if")) {
      LDV_RETURN_IF_ERROR(ExpectKeyword("not"));
      LDV_RETURN_IF_ERROR(ExpectKeyword("exists"));
      create->if_not_exists = true;
    }
    LDV_ASSIGN_OR_RETURN(create->table, ExpectIdentifier());
    LDV_RETURN_IF_ERROR(Expect(TokenType::kLParen));
    while (true) {
      Column col;
      LDV_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      LDV_ASSIGN_OR_RETURN(std::string type_name, ParseTypeName());
      LDV_ASSIGN_OR_RETURN(col.type,
                           storage::ValueTypeFromSqlName(type_name));
      // Ignore column constraints we do not enforce.
      while (Peek().IsKeyword("primary") || Peek().IsKeyword("key") ||
             Peek().IsKeyword("not") || Peek().IsKeyword("null") ||
             Peek().IsKeyword("unique")) {
        Advance();
      }
      create->columns.push_back(std::move(col));
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    return create;
  }

  Result<std::string> ParseTypeName() {
    LDV_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    // "DOUBLE PRECISION".
    if (EqualsIgnoreCase(name, "double") && ConsumeKeyword("precision")) {
      name = "double precision";
    }
    // VARCHAR(n) / CHAR(n) / DECIMAL(p,s): length arguments are ignored.
    if (Peek().type == TokenType::kLParen) {
      Advance();
      while (Peek().type != TokenType::kRParen &&
             Peek().type != TokenType::kEnd) {
        Advance();
      }
      LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    return name;
  }

  Result<std::unique_ptr<CreateIndexStmt>> ParseCreateIndex() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("create"));
    LDV_RETURN_IF_ERROR(ExpectKeyword("index"));
    auto create = std::make_unique<CreateIndexStmt>();
    if (ConsumeKeyword("if")) {
      LDV_RETURN_IF_ERROR(ExpectKeyword("not"));
      LDV_RETURN_IF_ERROR(ExpectKeyword("exists"));
      create->if_not_exists = true;
    }
    LDV_ASSIGN_OR_RETURN(create->index_name, ExpectName());
    LDV_RETURN_IF_ERROR(ExpectKeyword("on"));
    LDV_ASSIGN_OR_RETURN(create->table, ExpectName());
    LDV_RETURN_IF_ERROR(Expect(TokenType::kLParen));
    LDV_ASSIGN_OR_RETURN(create->column, ExpectName());
    LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    return create;
  }

  Result<std::unique_ptr<DropTableStmt>> ParseDropTable() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("drop"));
    LDV_RETURN_IF_ERROR(ExpectKeyword("table"));
    auto drop = std::make_unique<DropTableStmt>();
    if (ConsumeKeyword("if")) {
      LDV_RETURN_IF_ERROR(ExpectKeyword("exists"));
      drop->if_exists = true;
    }
    LDV_ASSIGN_OR_RETURN(drop->table, ExpectIdentifier());
    return drop;
  }

  Result<std::unique_ptr<AlterTableAddColumnStmt>> ParseAlterTable() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("alter"));
    LDV_RETURN_IF_ERROR(ExpectKeyword("table"));
    auto alter = std::make_unique<AlterTableAddColumnStmt>();
    LDV_ASSIGN_OR_RETURN(alter->table, ExpectIdentifier());
    LDV_RETURN_IF_ERROR(ExpectKeyword("add"));
    ConsumeKeyword("column");
    LDV_ASSIGN_OR_RETURN(alter->column.name, ExpectIdentifier());
    LDV_ASSIGN_OR_RETURN(std::string type_name, ParseTypeName());
    LDV_ASSIGN_OR_RETURN(alter->column.type,
                         storage::ValueTypeFromSqlName(type_name));
    return alter;
  }

  Result<std::unique_ptr<PrepareStmt>> ParsePrepare() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("prepare"));
    auto prepare = std::make_unique<PrepareStmt>();
    LDV_ASSIGN_OR_RETURN(prepare->name, ExpectName());
    LDV_RETURN_IF_ERROR(ExpectKeyword("as"));
    LDV_ASSIGN_OR_RETURN(Statement body, ParseStatementInner());
    switch (body.kind) {
      case StatementKind::kSelect:
      case StatementKind::kInsert:
      case StatementKind::kUpdate:
      case StatementKind::kDelete:
        break;
      default:
        return Err("PREPARE body must be SELECT, INSERT, UPDATE, or DELETE");
    }
    prepare->body = std::make_unique<Statement>(std::move(body));
    return prepare;
  }

  Result<std::unique_ptr<ExecuteStmt>> ParseExecute() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("execute"));
    auto execute = std::make_unique<ExecuteStmt>();
    LDV_ASSIGN_OR_RETURN(execute->name, ExpectName());
    if (ConsumeIf(TokenType::kLParen)) {
      if (Peek().type != TokenType::kRParen) {
        while (true) {
          LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
          execute->args.push_back(std::move(arg));
          if (!ConsumeIf(TokenType::kComma)) break;
        }
      }
      LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    return execute;
  }

  Result<std::unique_ptr<DeallocateStmt>> ParseDeallocate() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("deallocate"));
    ConsumeKeyword("prepare");
    auto dealloc = std::make_unique<DeallocateStmt>();
    if (ConsumeKeyword("all")) {
      dealloc->all = true;
      return dealloc;
    }
    LDV_ASSIGN_OR_RETURN(dealloc->name, ExpectName());
    return dealloc;
  }

  Result<std::unique_ptr<CopyStmt>> ParseCopy() {
    LDV_RETURN_IF_ERROR(ExpectKeyword("copy"));
    auto copy = std::make_unique<CopyStmt>();
    LDV_ASSIGN_OR_RETURN(copy->table, ExpectIdentifier());
    if (ConsumeKeyword("from")) {
      copy->from = true;
    } else if (ConsumeKeyword("to")) {
      copy->from = false;
    } else {
      return Err("COPY expects FROM or TO");
    }
    if (Peek().type != TokenType::kStringLiteral) {
      return Err("COPY expects a quoted path");
    }
    copy->path = Advance().text;
    ConsumeKeyword("csv");
    return copy;
  }

  // --- expressions ----------------------------------------------------
  // Precedence: OR < AND < NOT < comparison/LIKE/BETWEEN/IN/IS <
  // additive/|| < multiplicative < unary < primary.

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (ConsumeKeyword("or")) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
    while (ConsumeKeyword("and")) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (ConsumeKeyword("not")) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
    // IS [NOT] NULL.
    if (ConsumeKeyword("is")) {
      bool negated = ConsumeKeyword("not");
      LDV_RETURN_IF_ERROR(ExpectKeyword("null"));
      return MakeUnary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                       std::move(lhs));
    }
    bool negated = false;
    if (Peek().IsKeyword("not") &&
        (Peek(1).IsKeyword("like") || Peek(1).IsKeyword("between") ||
         Peek(1).IsKeyword("in"))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeyword("like")) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
      return MakeBinary(negated ? BinaryOp::kNotLike : BinaryOp::kLike,
                        std::move(lhs), std::move(rhs));
    }
    if (ConsumeKeyword("between")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> low, ParseAdditive());
      LDV_RETURN_IF_ERROR(ExpectKeyword("and"));
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> high, ParseAdditive());
      e->children.push_back(std::move(low));
      e->children.push_back(std::move(high));
      return e;
    }
    if (ConsumeKeyword("in")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      LDV_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      if (Peek().IsKeyword("select")) {
        ++expr_subquery_depth_;
        LDV_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
        --expr_subquery_depth_;
      } else {
        while (true) {
          LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> item, ParseAdditive());
          e->children.push_back(std::move(item));
          if (!ConsumeIf(TokenType::kComma)) break;
        }
      }
      LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return e;
    }
    if (negated) return Err("dangling NOT");
    BinaryOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenType::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenType::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenType::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenType::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenType::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().type == TokenType::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().type == TokenType::kMinus) {
        op = BinaryOp::kSub;
      } else if (Peek().type == TokenType::kConcat) {
        op = BinaryOp::kConcat;
      } else {
        return lhs;
      }
      Advance();
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Peek().type == TokenType::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().type == TokenType::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Peek().type == TokenType::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (ConsumeIf(TokenType::kMinus)) {
      LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    if (ConsumeIf(TokenType::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral: {
        Advance();
        return MakeLiteral(Value::Int(t.int_value));
      }
      case TokenType::kDoubleLiteral: {
        Advance();
        return MakeLiteral(Value::Real(t.double_value));
      }
      case TokenType::kStringLiteral: {
        Advance();
        return MakeLiteral(Value::Str(t.text));
      }
      case TokenType::kLParen: {
        Advance();
        if (Peek().IsKeyword("select")) {
          // Scalar subquery.
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kSubquery;
          ++expr_subquery_depth_;
          LDV_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
          --expr_subquery_depth_;
          LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
          return e;
        }
        LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
        LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        return inner;
      }
      case TokenType::kStar: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kStar;
        return e;
      }
      case TokenType::kQuestion: {
        Advance();
        return MakeParameter(num_params_);
      }
      case TokenType::kParam: {
        if (t.int_value < 1) {
          return Err("parameter numbers start at $1");
        }
        Advance();
        return MakeParameter(static_cast<int>(t.int_value) - 1);
      }
      case TokenType::kIdentifier:
        break;
      default:
        return Err("expected an expression");
    }
    if (t.IsKeyword("null")) {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (t.IsKeyword("true")) {
      Advance();
      return MakeLiteral(Value::Int(1));
    }
    if (t.IsKeyword("false")) {
      Advance();
      return MakeLiteral(Value::Int(0));
    }
    if (t.IsKeyword("exists")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kExists;
      LDV_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      ++expr_subquery_depth_;
      LDV_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      --expr_subquery_depth_;
      LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return e;
    }
    if (IsReservedWord(t.text)) {
      return Err("reserved word '" + t.text + "' used as an expression");
    }
    std::string first = Advance().text;
    // Function call.
    if (Peek().type == TokenType::kLParen) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kFuncCall;
      e->name = ToUpper(first);
      if (Peek().type != TokenType::kRParen) {
        if (ConsumeKeyword("distinct")) e->negated = false;  // tolerated
        while (true) {
          LDV_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
          e->children.push_back(std::move(arg));
          if (!ConsumeIf(TokenType::kComma)) break;
        }
      }
      LDV_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return e;
    }
    // Qualified reference: table.column or table.*.
    if (ConsumeIf(TokenType::kDot)) {
      if (ConsumeIf(TokenType::kStar)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kStar;
        e->table = std::move(first);
        return e;
      }
      LDV_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      return MakeColumnRef(std::move(first), std::move(column));
    }
    return MakeColumnRef("", std::move(first));
  }

  Result<std::unique_ptr<Expr>> MakeParameter(int index) {
    if (expr_subquery_depth_ > 0) {
      return Err("parameter placeholders are not supported inside subqueries");
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kParameter;
    e->param_index = index;
    if (index + 1 > num_params_) num_params_ = index + 1;
    return e;
  }

  static bool IsReservedWord(std::string_view word) {
    static constexpr std::string_view kReserved[] = {
        "select", "from",   "where",  "group",  "by",       "having",
        "order",  "limit",  "insert", "into",   "update",   "delete",
        "set",    "values", "create", "drop",   "alter",    "table",
        "copy",   "join",   "inner",  "on",     "as",       "and",
        "or",     "not",    "between","like",   "in",       "is",
        "distinct", "union", "provenance", "begin", "commit", "rollback",
        "asc",    "desc",   "case",   "when",   "then",     "else",
        "end"};
    for (std::string_view k : kReserved) {
      if (EqualsIgnoreCase(word, k)) return true;
    }
    return false;
  }

  static bool IsClauseKeyword(std::string_view word) {
    static constexpr std::string_view kClauses[] = {
        "from",  "where",  "group", "having", "order",  "limit", "on",
        "join",  "inner",  "left",  "outer",  "as",     "and",   "or",
        "not",   "asc",    "desc",  "union",  "set",    "values",
        "select", "like",  "between", "in",   "is",     "by"};
    for (std::string_view k : kClauses) {
      if (EqualsIgnoreCase(word, k)) return true;
    }
    return false;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Placeholder slots seen in the statement currently being parsed.
  int num_params_ = 0;
  /// Depth of expression-level subqueries (scalar/EXISTS/IN); placeholders
  /// inside them are rejected.
  int expr_subquery_depth_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  LDV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  Result<Statement> result = parser.ParseStatement();
  if (!result.ok()) {
    return result.status().WithContext("parsing '" + std::string(sql) + "'");
  }
  return result;
}

Result<std::vector<Statement>> ParseScript(std::string_view sql) {
  LDV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseScriptTokens();
}

}  // namespace ldv::sql
