#ifndef LDV_SQL_LEXER_H_
#define LDV_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace ldv::sql {

/// Tokenizes one SQL text. Supports line comments (`-- ...`), block comments
/// (`/* ... */`), single-quoted strings with '' escapes, and double-quoted
/// identifiers.
Result<std::vector<Token>> Lex(std::string_view sql);

}  // namespace ldv::sql

#endif  // LDV_SQL_LEXER_H_
