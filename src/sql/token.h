#ifndef LDV_SQL_TOKEN_H_
#define LDV_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ldv::sql {

enum class TokenType : uint8_t {
  kEnd,
  kIdentifier,   // foo, "Foo"
  kIntLiteral,   // 42
  kDoubleLiteral,  // 4.2, 1e9
  kStringLiteral,  // 'abc'
  // Punctuation / operators.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,       // =
  kNe,       // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kConcat,   // ||
  kQuestion,  // ? positional parameter placeholder
  kParam,     // $N numbered parameter placeholder (int_value = N)
};

/// One lexed token. Keyword recognition happens in the parser via
/// case-insensitive identifier comparison, PostgreSQL-style.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier (original case) or literal spelling
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;    // byte offset in the statement, for error messages

  bool IsKeyword(std::string_view keyword) const;
};

std::string_view TokenTypeName(TokenType type);

}  // namespace ldv::sql

#endif  // LDV_SQL_TOKEN_H_
