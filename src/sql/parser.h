#ifndef LDV_SQL_PARSER_H_
#define LDV_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace ldv::sql {

/// Parses one SQL statement (an optional trailing ';' is allowed).
Result<Statement> Parse(std::string_view sql);

/// Parses a script of ';'-separated statements.
Result<std::vector<Statement>> ParseScript(std::string_view sql);

}  // namespace ldv::sql

#endif  // LDV_SQL_PARSER_H_
