#include "sql/token.h"

#include "util/strings.h"

namespace ldv::sql {

bool Token::IsKeyword(std::string_view keyword) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, keyword);
}

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "end of input";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "integer literal";
    case TokenType::kDoubleLiteral:
      return "numeric literal";
    case TokenType::kStringLiteral:
      return "string literal";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kPercent:
      return "'%'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kConcat:
      return "'||'";
    case TokenType::kQuestion:
      return "'?'";
    case TokenType::kParam:
      return "parameter placeholder";
  }
  return "?";
}

}  // namespace ldv::sql
