#ifndef LDV_NET_DB_SERVER_H_
#define LDV_NET_DB_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/db_client.h"
#include "obs/metrics.h"

namespace ldv::net {

/// Operational knobs of DbServer.
struct DbServerOptions {
  /// Connections served concurrently; further ones get a clean
  /// "server overloaded" protocol error response instead of a hang.
  int max_connections = 64;
  /// SO_RCVTIMEO/SO_SNDTIMEO applied to every connection fd, so a hung or
  /// vanished peer cannot pin a connection thread forever. 0 disables.
  int64_t io_timeout_micros = 30'000'000;
  /// Entries of the at-most-once response cache keyed by
  /// (process_id, query_id, sql). A retried request that already executed gets
  /// its recorded response instead of executing twice — this is what makes
  /// client retries of DML safe for audited workloads. 0 disables.
  size_t dedup_capacity = 4096;
  /// Idle lifetime of a recorded dedup response: an entry untouched (neither
  /// recorded nor replayed) for this long is evicted even when the cache is
  /// under capacity, so a long-lived server's cache shrinks back after a
  /// burst. 0 disables the TTL (capacity still bounds the cache).
  int64_t dedup_ttl_millis = 60'000;
  /// How often the disconnect watcher polls the fds of sessions executing a
  /// statement (--disconnect-poll-ms). With no statement in flight the
  /// watcher sleeps until one starts instead of polling.
  int64_t disconnect_poll_millis = 20;
  int listen_backlog = 16;
};

/// The DB server process analog: accepts connections on a Unix-domain
/// socket, decodes requests, executes them against the shared engine, and
/// streams back encoded responses. One thread per connection, reaped as
/// connections finish; the engine handle serializes execution.
///
/// Resilience behavior (see DESIGN.md "Failure model & recovery"):
///   - per-connection send/recv timeouts,
///   - max-connections cap with an explicit overload error response,
///   - (process_id, query_id) response dedup for exactly-once retries,
///   - graceful drain on Stop(): in-flight requests finish, subsequent
///     requests get a "server draining" error, then threads are joined.
class DbServer {
 public:
  DbServer(EngineHandle* engine, std::string socket_path,
           DbServerOptions options = {});
  ~DbServer();

  DbServer(const DbServer&) = delete;
  DbServer& operator=(const DbServer&) = delete;

  /// Binds, listens and spawns the accept loop.
  Status Start();

  /// Answers the replication verbs (kReplSubscribe / kReplFrames /
  /// kReplHeartbeat / kPromote). The server stays replication-agnostic:
  /// src/repl installs this at startup, before Start(); unset verbs get a
  /// "replication is not configured" error.
  using ReplHandler = std::function<Result<exec::ResultSet>(const DbRequest&)>;
  void set_repl_handler(ReplHandler handler) {
    repl_handler_ = std::move(handler);
  }

  /// Lets a subsystem merge extra keys into the kStats snapshot document
  /// (replication role, standby lag). Set before Start().
  void set_stats_augmenter(std::function<void(Json*)> augmenter) {
    stats_augmenter_ = std::move(augmenter);
  }

  /// Stops accepting, drains in-flight requests, joins all threads.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

  /// Connections currently being served.
  int64_t active_connections() const;
  /// Connections accepted since Start().
  int64_t total_connections() const { return total_connections_.load(); }
  /// Connections refused with the overload error since Start().
  int64_t rejected_connections() const {
    return rejected_connections_.load();
  }
  /// Requests answered from the dedup cache instead of re-executing.
  int64_t deduped_requests() const { return deduped_requests_.load(); }
  /// Completed dedup responses currently cached (TTL/LRU bounded).
  int64_t dedup_entries() const;
  /// Statements cancelled because their client disconnected mid-execution.
  int64_t disconnect_cancels() const { return disconnect_cancels_.load(); }

 private:
  struct Connection {
    std::thread thread;
    int fd = -1;
  };

  /// (process_id, query_id, sql): the ids alone are not unique — the
  /// auditing client tags a DML statement and its reenactment query with
  /// the same query id — so the statement text disambiguates. A retry
  /// resends identical text and still hits the cache.
  using DedupKey = std::tuple<int64_t, int64_t, std::string>;
  /// Dedup cache entry; `done` flips once the response is recorded, so a
  /// concurrent duplicate waits instead of double-executing. Completed
  /// entries sit in dedup_lru_ ordered by last touch (record or replay);
  /// in-progress markers are not evictable and carry no list position.
  struct DedupEntry {
    bool done = false;
    std::string response;
    int64_t touched_nanos = 0;
    std::list<DedupKey>::iterator lru_it;
  };

  void AcceptLoop();
  void ServeConnection(int64_t id, int fd);
  /// Polls the fds of connections that are executing a statement; a peer
  /// that hung up gets its in-flight statements cancelled through the
  /// QueryRegistry (abort-on-client-disconnect, DESIGN.md §11).
  void DisconnectWatchLoop();
  /// Joins threads of connections that finished serving.
  void ReapFinished();
  void ApplyIoTimeouts(int fd);
  /// Executes `request`, deduplicating on (process_id, query_id, sql) when
  /// the request carries ids; returns the encoded response frame.
  std::string ExecuteDeduped(const DbRequest& request, int64_t session_id);
  /// Drops completed dedup entries idle past the TTL. Caller holds
  /// dedup_mu_.
  void PurgeExpiredDedupLocked(int64_t now_nanos);
  /// Answers the non-query request kinds (Stats / TraceStart / TraceDump);
  /// returns the encoded response frame.
  std::string HandleControl(const DbRequest& request);

  EngineHandle* engine_;
  std::string socket_path_;
  DbServerOptions options_;
  ReplHandler repl_handler_;
  std::function<void(Json*)> stats_augmenter_;
  // Atomic: Stop() invalidates the fd while AcceptLoop blocks in accept().
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  std::thread disconnect_watch_thread_;

  /// session id -> connection fd, present only while that session executes
  /// a query — the watch set of DisconnectWatchLoop.
  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  std::map<int64_t, int> executing_;

  mutable std::mutex conn_mu_;
  std::map<int64_t, Connection> connections_;
  std::vector<int64_t> finished_;  // ids whose thread is ready to join
  /// Connection ids double as engine session ids, and the embedding
  /// process may drive EngineHandle::ExecuteSession with its own (small)
  /// ids concurrently. Socket sessions therefore live in a disjoint high
  /// range: a disconnect's AbortSession must never roll back an
  /// in-process caller's transaction that happens to share the id.
  int64_t next_connection_id_ = int64_t{1} << 32;

  mutable std::mutex dedup_mu_;
  std::condition_variable dedup_cv_;
  std::map<DedupKey, DedupEntry> dedup_;
  /// Completed entries, least recently touched first. Capacity evicts from
  /// the front; the TTL purge walks the front until it meets a fresh entry.
  std::list<DedupKey> dedup_lru_;

  std::atomic<int64_t> total_connections_{0};
  std::atomic<int64_t> rejected_connections_{0};
  std::atomic<int64_t> deduped_requests_{0};
  std::atomic<int64_t> disconnect_cancels_{0};

  // Pointers into MetricsRegistry::Global(), resolved once in the
  // constructor (registry lookups take a mutex; observations are relaxed
  // atomics).
  obs::Histogram* request_latency_ = nullptr;
  obs::Counter* requests_total_ = nullptr;
};

}  // namespace ldv::net

#endif  // LDV_NET_DB_SERVER_H_
