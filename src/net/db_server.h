#ifndef LDV_NET_DB_SERVER_H_
#define LDV_NET_DB_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/db_client.h"

namespace ldv::net {

/// The DB server process analog: accepts connections on a Unix-domain
/// socket, decodes requests, executes them against the shared engine, and
/// streams back encoded responses. One thread per connection; the engine
/// handle serializes execution.
class DbServer {
 public:
  DbServer(EngineHandle* engine, std::string socket_path);
  ~DbServer();

  DbServer(const DbServer&) = delete;
  DbServer& operator=(const DbServer&) = delete;

  /// Binds, listens and spawns the accept loop.
  Status Start();

  /// Stops accepting, closes the listener and joins all threads.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  EngineHandle* engine_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::mutex threads_mu_;
};

}  // namespace ldv::net

#endif  // LDV_NET_DB_SERVER_H_
