#ifndef LDV_NET_DB_CLIENT_H_
#define LDV_NET_DB_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "exec/executor.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "storage/txn.h"
#include "storage/wal.h"
#include "txn/lock_registry.h"
#include "txn/snapshot.h"

namespace ldv::net {

/// The client interface of the DBMS — the analog of libpq in the prototype.
/// LDV instruments this layer: the auditing client decorates any DbClient to
/// capture statements, provenance and results; the replay client substitutes
/// recorded answers (paper §VII-C, §VIII).
class DbClient {
 public:
  virtual ~DbClient() = default;

  /// Executes `request.sql`, returning results or the engine's error.
  virtual Result<exec::ResultSet> Execute(const DbRequest& request) = 0;

  /// Convenience wrapper: plain statement, identifiers defaulted.
  Result<exec::ResultSet> Query(const std::string& sql) {
    DbRequest request;
    request.sql = sql;
    return Execute(request);
  }
};

/// Durability wiring for an EngineHandle. Both members are optional: an
/// empty data_dir disables checkpointing, checkpoint_every == 0 disables
/// the automatic trigger (Checkpoint() still works).
struct EngineDurabilityOptions {
  /// Snapshot directory for checkpoints (usually the same dir recovery
  /// loaded from).
  std::string data_dir;
  /// Take a checkpoint after this many committed transactions.
  int64_t checkpoint_every = 0;
};

/// Thread-safe façade over a Database + Executor, shared by the in-process
/// client and the socket server (the engine is single-writer).
///
/// Concurrency (DESIGN.md §12): plain non-provenance SELECTs from sessions
/// without an open transaction run on a concurrent read path — catalog and
/// table locks shared, a consistent snapshot epoch from the SnapshotManager,
/// no engine mutex — so independent readers overlap with each other and
/// with writers on other tables. Everything else (DML, DDL, provenance
/// queries, transaction control) serializes under mu_ as before, taking
/// exclusive data locks so in-place mutations never race a reader.
///
/// Prepared statements: PREPARE/EXECUTE/DEALLOCATE (SQL or the kPrepare /
/// kExecute / kDeallocate protocol verbs) are intercepted here too. Handles
/// are per-session; the parsed bodies and the plans of cacheable SELECTs
/// are shared across sessions through the process-wide exec::PlanCache.
/// EXECUTE of anything the cache cannot serve bit-identically (DML,
/// provenance, subqueries, in-transaction reads, bare placeholders in ORDER
/// BY) inlines the bound values as literals and runs the statement through
/// the ordinary paths — the WAL logs the rendered text.
///
/// Transactions: BEGIN/COMMIT/ROLLBACK are intercepted here, above the
/// executor. One explicit transaction runs at a time, owned by a session
/// (a server connection, or kLocalSession for in-process clients); other
/// sessions' statements wait for it to finish. Undo is the version archive
/// (storage::TxnScope); a statement failing inside a transaction aborts the
/// whole transaction. DDL and COPY are rejected inside explicit
/// transactions.
///
/// Durability: with a WAL attached, every committed transaction (explicit
/// or the implicit transaction around a single mutating statement) is
/// appended as one begin/op.../commit group and fsynced before the client
/// sees success. The append happens inside the engine's critical section
/// (commit order == log order); the fsync happens outside it, so concurrent
/// committers share one fsync (group commit).
class EngineHandle {
 public:
  /// Session id used by in-process clients (LocalDbClient, tools, tests).
  static constexpr int64_t kLocalSession = 0;

  explicit EngineHandle(storage::Database* db);

  EngineHandle(const EngineHandle&) = delete;
  EngineHandle& operator=(const EngineHandle&) = delete;

  Result<exec::ResultSet> Execute(const DbRequest& request) {
    return ExecuteSession(request, kLocalSession);
  }

  /// Executes on behalf of one session; the session id scopes transaction
  /// ownership (the server passes its connection id).
  Result<exec::ResultSet> ExecuteSession(const DbRequest& request,
                                         int64_t session_id);

  /// Hands the engine its write-ahead log (opened by the caller after
  /// recovery) and the checkpoint policy.
  void AttachWal(std::unique_ptr<storage::Wal> wal,
                 EngineDurabilityOptions durability);

  /// Rolls back the session's open transaction, if any (connection teardown).
  void AbortSession(int64_t session_id);

  /// Makes everything appended so far durable (shutdown drain). No-op
  /// without a WAL.
  Status FlushWal();

  /// Applies one replicated commit group — the standby's apply path. Runs
  /// the group's statements through the same deterministic redo recovery
  /// uses (restore the statement sequence, execute, bump), under the engine
  /// mutex and exclusive data locks, then publishes the group as one
  /// committed epoch for snapshot readers. Does NOT append to the WAL: the
  /// replicator made the frames locally durable before calling this.
  Status ApplyReplicated(const std::vector<storage::WalOp>& ops);

  /// Read-only (hot standby) mode: mutating statements and transaction
  /// control are rejected with a "read-only standby" error
  /// (IsReadOnlyStandbyError). Replicated applies are exempt. Flipped off
  /// at promotion.
  void set_read_only(bool read_only) {
    read_only_.store(read_only, std::memory_order_release);
  }
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Semi-synchronous replication: invoked with the commit LSN after the
  /// local fsync and before the client sees success; commit acknowledgement
  /// waits until the barrier returns (the replication manager releases it
  /// when every live standby has acknowledged the LSN). Runs outside the
  /// engine mutex. Set at startup, before traffic.
  void set_commit_ack_barrier(std::function<Status(uint64_t lsn)> barrier) {
    commit_ack_barrier_ = std::move(barrier);
  }

  /// Lower bound for checkpoint segment retirement: segments holding
  /// records at or above the returned LSN survive (they are standbys'
  /// catch-up source). Set at startup, before traffic.
  void set_wal_retire_floor(std::function<uint64_t()> floor) {
    wal_retire_floor_ = std::move(floor);
  }

  /// Snapshot + segment rotation: WAL flush, SaveDatabase, fresh segment,
  /// retire segments the snapshot covers. Requires a WAL and a data_dir.
  Status Checkpoint();

  /// How long a statement waits for another session's transaction before
  /// giving up with an error.
  void set_txn_wait_millis(int64_t millis) { txn_wait_millis_ = millis; }

  /// Default per-statement deadline (--statement-timeout-ms); 0 disables.
  /// A request's own timeout_millis overrides it.
  void set_statement_timeout_millis(int64_t millis) {
    statement_timeout_millis_ = millis;
  }
  /// Per-query memory budget cap (--mem-limit-mb); 0 disables.
  void set_mem_limit_bytes(size_t bytes) { mem_limit_bytes_ = bytes; }

  storage::Database* db() { return executor_.db(); }
  storage::Wal* wal() { return wal_.get(); }

  /// The MVCC snapshot source (stats, tests, benchmarks).
  txn::SnapshotManager* snapshots() { return &snapshots_; }

 private:
  static constexpr int64_t kNoSession = -1;

  /// One prepared statement of a session: the (interned, shared) parsed
  /// body, its normalized plan-cache key, and the placeholder count.
  struct PreparedStatement {
    std::string name;
    std::shared_ptr<const sql::Statement> body;
    std::string cache_key;
    int num_params = 0;
  };
  /// Cached-plan execution context for one EXECUTE: the normalized key the
  /// shared plan lives under and the bound parameter values.
  struct PreparedRun {
    const std::string* cache_key = nullptr;
    const storage::Tuple* params = nullptr;
  };

  /// BEGIN/COMMIT/ROLLBACK. On COMMIT, `*sync_lsn` is set to the LSN the
  /// caller must Sync() after releasing mu_ (0 = nothing to sync).
  Result<exec::ResultSet> ExecTransactionLocked(
      int64_t session_id, const sql::TransactionStmt& stmt,
      uint64_t* sync_lsn);
  /// The concurrent read path: shared catalog/table locks, a snapshot
  /// epoch, no mu_. Runs the statement on the caller's thread; independent
  /// readers proceed in parallel. With `prepared` set, the statement runs
  /// through the shared plan cache instead of being planned per call.
  Result<exec::ResultSet> ExecConcurrentRead(const sql::Statement& stmt,
                                             const DbRequest& request,
                                             exec::QueryGovernor* governor,
                                             const PreparedRun* prepared);
  /// Everything ExecuteSession does after the statement text is resolved:
  /// governance, concurrent-read dispatch, the serialized path, the WAL.
  /// `effective_sql` is what governance listings, trace spans and the WAL
  /// see — for substituted prepared statements, the rendered text with the
  /// bound values inlined.
  Result<exec::ResultSet> ExecuteStatement(const sql::Statement& stmt,
                                           const DbRequest& request,
                                           const std::string& effective_sql,
                                           int64_t session_id,
                                           const PreparedRun* prepared);
  /// PREPARE: validates and registers `body` under `name` on the session.
  Result<exec::ResultSet> PrepareStatement(const std::string& name,
                                           sql::Statement body,
                                           int64_t session_id);
  /// EXECUTE: binds `params` to the named statement and runs it, through
  /// the shared plan cache when eligible, by literal substitution else.
  Result<exec::ResultSet> ExecutePrepared(const std::string& name,
                                          storage::Tuple params,
                                          const DbRequest& request,
                                          int64_t session_id);
  /// DEALLOCATE: drops one handle, or all of the session's when `all`.
  Result<exec::ResultSet> DeallocateStatement(const std::string& name,
                                              bool all, int64_t session_id);
  /// Takes every table's data lock exclusively, ascending by id (the
  /// acquisition order that makes the hierarchy deadlock-free). Used by
  /// transaction rollback, whose undo rewrites rows across tables.
  Status LockAllTablesExclusive(txn::LockSet* locks);
  /// Appends one commit group; returns its commit LSN.
  Result<uint64_t> AppendGroupLocked(const std::vector<storage::WalOp>& ops);
  Status CheckpointLocked();
  void MaybeCheckpointLocked();
  void EndTxnLocked();

  std::mutex mu_;
  std::condition_variable txn_cv_;
  exec::Executor executor_;

  /// Prepared-statement handles, per session then by lowercased name.
  /// Guarded by its own mutex: PREPARE/DEALLOCATE and handle lookups never
  /// contend with executing statements.
  std::mutex prepared_mu_;
  std::map<int64_t,
           std::map<std::string, std::shared_ptr<const PreparedStatement>>>
      prepared_;

  // MVCC state (DESIGN.md §12). The snapshot manager and lock registry are
  // internally synchronized; txn_snapshot_ (the open transaction's pinned
  // begin epoch) is guarded by mu_.
  txn::SnapshotManager snapshots_;
  txn::LockRegistry locks_;
  txn::SnapshotRef txn_snapshot_;

  // Explicit-transaction state, guarded by mu_. txn_owner_ is additionally
  // readable outside mu_ (atomic) so the concurrent-read dispatch check
  // never waits behind a long serialized statement.
  std::atomic<int64_t> txn_owner_{kNoSession};
  storage::TxnScope txn_;
  std::vector<storage::WalOp> txn_ops_;
  int64_t next_txn_id_ = 1;
  int64_t txn_wait_millis_ = 10'000;

  // Resource-governance defaults (DESIGN.md §11); set at startup, read-only
  // afterwards.
  int64_t statement_timeout_millis_ = 0;
  size_t mem_limit_bytes_ = 0;

  // Replication state (DESIGN.md §14). The barrier and floor hooks are set
  // at startup, before traffic; read_only_ flips at promotion.
  std::atomic<bool> read_only_{false};
  std::function<Status(uint64_t)> commit_ack_barrier_;
  std::function<uint64_t()> wal_retire_floor_;

  // Durability state, guarded by mu_ (Wal has its own lock; only the
  // pointer and the checkpoint counter live under mu_).
  std::unique_ptr<storage::Wal> wal_;
  EngineDurabilityOptions durability_;
  int64_t commits_since_checkpoint_ = 0;

  obs::Histogram* statement_latency_;
  obs::Counter* concurrent_reads_;
  obs::Counter* txns_committed_;
  obs::Counter* txns_rolled_back_;
  obs::Counter* checkpoints_;
};

/// In-process client: same wire contract as the socket client without the
/// socket (used by tests, replay of server-included packages, and
/// benchmarks that measure engine rather than transport costs).
class LocalDbClient final : public DbClient {
 public:
  explicit LocalDbClient(EngineHandle* engine) : engine_(engine) {}

  Result<exec::ResultSet> Execute(const DbRequest& request) override {
    return engine_->Execute(request);
  }

 private:
  EngineHandle* engine_;
};

/// Connects to a DbServer over a Unix-domain socket. Move-only; a moved-from
/// client holds no descriptor and reports itself closed on Execute.
class SocketDbClient final : public DbClient {
 public:
  ~SocketDbClient() override;

  SocketDbClient(const SocketDbClient&) = delete;
  SocketDbClient& operator=(const SocketDbClient&) = delete;
  SocketDbClient(SocketDbClient&& other) noexcept;
  SocketDbClient& operator=(SocketDbClient&& other) noexcept;

  /// Connects to the server listening at `socket_path`.
  static Result<std::unique_ptr<SocketDbClient>> Connect(
      const std::string& socket_path);

  Result<exec::ResultSet> Execute(const DbRequest& request) override;

  /// Closes the connection (idempotent); Execute afterwards returns IOError.
  void Close();

 private:
  explicit SocketDbClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Sends a Stats request through `client` and parses the returned metrics
/// snapshot (the server's `stats_json` column).
Result<Json> FetchServerStats(DbClient* client);

/// Clears the server's trace buffer and starts span recording there.
Status StartServerTrace(DbClient* client);

/// Fetches the server's buffered spans as a parsed Chrome trace_event
/// document; recording stops and the buffer clears server-side.
Result<Json> FetchServerTrace(DbClient* client);

/// Sends a kCancel request for (process_id, query_id) through `client`;
/// query_id == 0 targets every in-flight statement of the process. Returns
/// the number of statements the server signalled.
Result<int64_t> CancelServerQuery(DbClient* client, int64_t process_id,
                                  int64_t query_id);

/// Registers `sql` as prepared statement `name` via a kPrepare request.
Status PrepareStatement(DbClient* client, const std::string& name,
                        const std::string& sql);

/// Executes prepared statement `name` with `params` bound, via a kExecute
/// request; the ids participate in response dedup like queries.
Result<exec::ResultSet> ExecutePrepared(DbClient* client,
                                        const std::string& name,
                                        storage::Tuple params,
                                        int64_t process_id = 0,
                                        int64_t query_id = 0);

/// Drops prepared statement `name` via a kDeallocate request; an empty
/// name drops every handle of the session (DEALLOCATE ALL).
Status DeallocatePrepared(DbClient* client, const std::string& name);

/// True when `status` is a hot standby's rejection of a mutating statement.
/// RetryingDbClient uses this to fail over to the next endpoint instead of
/// surfacing the error.
bool IsReadOnlyStandbyError(const Status& status);

/// Sends a kPromote request through `client`: the standby drains its apply
/// queue and starts accepting writes. Returns the promoted server's applied
/// LSN. Idempotent on an already-primary server.
Result<uint64_t> PromoteServer(DbClient* client);

}  // namespace ldv::net

#endif  // LDV_NET_DB_CLIENT_H_
