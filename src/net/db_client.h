#ifndef LDV_NET_DB_CLIENT_H_
#define LDV_NET_DB_CLIENT_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "exec/executor.h"
#include "net/protocol.h"
#include "storage/database.h"

namespace ldv::net {

/// The client interface of the DBMS — the analog of libpq in the prototype.
/// LDV instruments this layer: the auditing client decorates any DbClient to
/// capture statements, provenance and results; the replay client substitutes
/// recorded answers (paper §VII-C, §VIII).
class DbClient {
 public:
  virtual ~DbClient() = default;

  /// Executes `request.sql`, returning results or the engine's error.
  virtual Result<exec::ResultSet> Execute(const DbRequest& request) = 0;

  /// Convenience wrapper: plain statement, identifiers defaulted.
  Result<exec::ResultSet> Query(const std::string& sql) {
    DbRequest request;
    request.sql = sql;
    return Execute(request);
  }
};

/// Thread-safe façade over a Database + Executor, shared by the in-process
/// client and the socket server (the engine is single-writer).
class EngineHandle {
 public:
  explicit EngineHandle(storage::Database* db) : executor_(db) {}

  EngineHandle(const EngineHandle&) = delete;
  EngineHandle& operator=(const EngineHandle&) = delete;

  Result<exec::ResultSet> Execute(const DbRequest& request);

  storage::Database* db() { return executor_.db(); }

 private:
  std::mutex mu_;
  exec::Executor executor_;
};

/// In-process client: same wire contract as the socket client without the
/// socket (used by tests, replay of server-included packages, and
/// benchmarks that measure engine rather than transport costs).
class LocalDbClient final : public DbClient {
 public:
  explicit LocalDbClient(EngineHandle* engine) : engine_(engine) {}

  Result<exec::ResultSet> Execute(const DbRequest& request) override {
    return engine_->Execute(request);
  }

 private:
  EngineHandle* engine_;
};

/// Connects to a DbServer over a Unix-domain socket. Move-only; a moved-from
/// client holds no descriptor and reports itself closed on Execute.
class SocketDbClient final : public DbClient {
 public:
  ~SocketDbClient() override;

  SocketDbClient(const SocketDbClient&) = delete;
  SocketDbClient& operator=(const SocketDbClient&) = delete;
  SocketDbClient(SocketDbClient&& other) noexcept;
  SocketDbClient& operator=(SocketDbClient&& other) noexcept;

  /// Connects to the server listening at `socket_path`.
  static Result<std::unique_ptr<SocketDbClient>> Connect(
      const std::string& socket_path);

  Result<exec::ResultSet> Execute(const DbRequest& request) override;

  /// Closes the connection (idempotent); Execute afterwards returns IOError.
  void Close();

 private:
  explicit SocketDbClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace ldv::net

#endif  // LDV_NET_DB_CLIENT_H_
