#ifndef LDV_NET_DB_CLIENT_H_
#define LDV_NET_DB_CLIENT_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "exec/executor.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "storage/database.h"

namespace ldv::net {

/// The client interface of the DBMS — the analog of libpq in the prototype.
/// LDV instruments this layer: the auditing client decorates any DbClient to
/// capture statements, provenance and results; the replay client substitutes
/// recorded answers (paper §VII-C, §VIII).
class DbClient {
 public:
  virtual ~DbClient() = default;

  /// Executes `request.sql`, returning results or the engine's error.
  virtual Result<exec::ResultSet> Execute(const DbRequest& request) = 0;

  /// Convenience wrapper: plain statement, identifiers defaulted.
  Result<exec::ResultSet> Query(const std::string& sql) {
    DbRequest request;
    request.sql = sql;
    return Execute(request);
  }
};

/// Thread-safe façade over a Database + Executor, shared by the in-process
/// client and the socket server (the engine is single-writer).
class EngineHandle {
 public:
  explicit EngineHandle(storage::Database* db)
      : executor_(db),
        statement_latency_(obs::MetricsRegistry::Global().latency_histogram(
            "engine.statement_micros")) {}

  EngineHandle(const EngineHandle&) = delete;
  EngineHandle& operator=(const EngineHandle&) = delete;

  Result<exec::ResultSet> Execute(const DbRequest& request);

  storage::Database* db() { return executor_.db(); }

 private:
  std::mutex mu_;
  exec::Executor executor_;
  obs::Histogram* statement_latency_;
};

/// In-process client: same wire contract as the socket client without the
/// socket (used by tests, replay of server-included packages, and
/// benchmarks that measure engine rather than transport costs).
class LocalDbClient final : public DbClient {
 public:
  explicit LocalDbClient(EngineHandle* engine) : engine_(engine) {}

  Result<exec::ResultSet> Execute(const DbRequest& request) override {
    return engine_->Execute(request);
  }

 private:
  EngineHandle* engine_;
};

/// Connects to a DbServer over a Unix-domain socket. Move-only; a moved-from
/// client holds no descriptor and reports itself closed on Execute.
class SocketDbClient final : public DbClient {
 public:
  ~SocketDbClient() override;

  SocketDbClient(const SocketDbClient&) = delete;
  SocketDbClient& operator=(const SocketDbClient&) = delete;
  SocketDbClient(SocketDbClient&& other) noexcept;
  SocketDbClient& operator=(SocketDbClient&& other) noexcept;

  /// Connects to the server listening at `socket_path`.
  static Result<std::unique_ptr<SocketDbClient>> Connect(
      const std::string& socket_path);

  Result<exec::ResultSet> Execute(const DbRequest& request) override;

  /// Closes the connection (idempotent); Execute afterwards returns IOError.
  void Close();

 private:
  explicit SocketDbClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Sends a Stats request through `client` and parses the returned metrics
/// snapshot (the server's `stats_json` column).
Result<Json> FetchServerStats(DbClient* client);

/// Clears the server's trace buffer and starts span recording there.
Status StartServerTrace(DbClient* client);

/// Fetches the server's buffered spans as a parsed Chrome trace_event
/// document; recording stops and the buffer clears server-side.
Result<Json> FetchServerTrace(DbClient* client);

}  // namespace ldv::net

#endif  // LDV_NET_DB_CLIENT_H_
