#ifndef LDV_NET_PROTOCOL_H_
#define LDV_NET_PROTOCOL_H_

#include <string>

#include "common/result.h"
#include "exec/executor.h"

namespace ldv::net {

/// What a request asks the server to do. Encoded as a trailing byte of the
/// request frame; decoders treat its absence as kQuery, so clients from
/// before the field existed (and recorded replay logs) stay decodable.
enum class RequestKind : uint8_t {
  kQuery = 0,
  /// Return a snapshot of the server's MetricsRegistry as one row with a
  /// single `stats_json` string column (request latency histogram, dedup /
  /// overload counters, fault-injection coverage).
  kStats = 1,
  /// Clear the server's trace buffer and start recording spans.
  kTraceStart = 2,
  /// Return buffered spans as one `trace_json` string column (Chrome
  /// trace_event JSON), then stop recording and clear the buffer.
  kTraceDump = 3,
  /// Cancel every in-flight statement matching (process_id, query_id);
  /// query_id == 0 matches the whole process. `sql` is ignored. Returns one
  /// `cancelled` int column with the number of statements signalled. The
  /// kill is cooperative — targets observe it at their next governor check
  /// and unwind with kCancelled (DESIGN.md §11).
  kCancel = 4,
  /// Register `sql` (which may contain ? / $N placeholders) as a prepared
  /// statement named `handle` on this session. Equivalent to sending
  /// `PREPARE <handle> AS <sql>` as a query.
  kPrepare = 5,
  /// Execute the session's prepared statement `handle` with `params` bound
  /// to its placeholders; `sql` is ignored. Like queries, executions are
  /// deduplicated on (process_id, query_id) — the handle and the encoded
  /// parameters are folded into the dedup key.
  kExecute = 6,
  /// Drop the prepared statement `handle`; an empty handle drops every
  /// prepared statement of the session (DEALLOCATE ALL).
  kDeallocate = 7,
  /// Replication: register (or re-register) a standby named `handle` whose
  /// applied LSN is `query_id`. Returns one row (primary_lsn, role). `sql`
  /// is ignored, as for every replication verb.
  kReplSubscribe = 8,
  /// Replication: long-poll for WAL record frames after LSN `query_id` on
  /// behalf of standby `handle`, waiting up to `timeout_millis` when caught
  /// up. Doubles as an acknowledgement of `query_id`. Returns one row
  /// (frames, last_lsn, primary_lsn); empty `frames` means "caught up".
  kReplFrames = 9,
  /// Replication: acknowledge that standby `handle` has durably applied up
  /// to LSN `query_id`, without fetching. Returns one row (primary_lsn,
  /// role). Sent right after an apply so semi-sync committers unblock
  /// without waiting for the next fetch round-trip.
  kReplHeartbeat = 10,
  /// Flip a read-only standby to primary after draining its apply queue.
  /// Idempotent on an already-primary server. Returns one row (role,
  /// applied_lsn).
  kPromote = 11,
};

/// One client->server request. The process and query identifiers are the
/// ones the (auditing) client library assigned (paper §VII-C); a plain
/// client sends zeros.
struct DbRequest {
  std::string sql;
  int64_t process_id = 0;
  int64_t query_id = 0;
  RequestKind kind = RequestKind::kQuery;
  /// Per-statement deadline in milliseconds; 0 means "use the server's
  /// --statement-timeout-ms default". Encoded as a trailing varint (after
  /// the kind byte), absent on old frames — which decode as 0.
  int64_t timeout_millis = 0;
  /// Prepared-statement name for kPrepare / kExecute / kDeallocate. Encoded
  /// as a trailing string, absent on old frames — which decode as empty.
  std::string handle;
  /// Parameter values bound by kExecute, in placeholder order. Encoded as a
  /// trailing count + serialized values, absent on old frames.
  storage::Tuple params;
};

/// Binary encoding of requests/responses (varint-based, little-endian).
std::string EncodeRequest(const DbRequest& request);
Result<DbRequest> DecodeRequest(std::string_view bytes);

/// A response is either an error status or a ResultSet.
std::string EncodeResponse(const Status& status,
                           const exec::ResultSet& result);
Result<exec::ResultSet> DecodeResponse(std::string_view bytes);

/// ResultSet payload encoding, reused by the server-excluded replay log.
void EncodeResultSet(const exec::ResultSet& result, BufferWriter* w);
Result<exec::ResultSet> DecodeResultSet(BufferReader* r);

/// Hard cap on a single frame's payload. The 4-byte length prefix arrives
/// from the peer (or from a corrupted stream), so it must never be trusted
/// as an allocation size: a forged multi-GiB prefix is rejected up front.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// Frame I/O over a connected stream socket: 4-byte little-endian length
/// prefix followed by the payload. Fault points `net.send` / `net.recv`
/// fire before the first syscall, so an injected failure never leaves a
/// half-written frame on the wire. Frames above kMaxFrameBytes are refused
/// on both sides (see IsOversizedFrameError).
Status SendFrame(int fd, std::string_view payload);
Result<std::string> RecvFrame(int fd);

/// True when `status` is RecvFrame's oversized-length-prefix rejection. The
/// server uses this to send a protocol error response before dropping the
/// connection (the stream cannot be resynchronized past an unread payload).
bool IsOversizedFrameError(const Status& status);

}  // namespace ldv::net

#endif  // LDV_NET_PROTOCOL_H_
