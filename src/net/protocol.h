#ifndef LDV_NET_PROTOCOL_H_
#define LDV_NET_PROTOCOL_H_

#include <string>

#include "common/result.h"
#include "exec/executor.h"

namespace ldv::net {

/// One client->server request. The process and query identifiers are the
/// ones the (auditing) client library assigned (paper §VII-C); a plain
/// client sends zeros.
struct DbRequest {
  std::string sql;
  int64_t process_id = 0;
  int64_t query_id = 0;
};

/// Binary encoding of requests/responses (varint-based, little-endian).
std::string EncodeRequest(const DbRequest& request);
Result<DbRequest> DecodeRequest(std::string_view bytes);

/// A response is either an error status or a ResultSet.
std::string EncodeResponse(const Status& status,
                           const exec::ResultSet& result);
Result<exec::ResultSet> DecodeResponse(std::string_view bytes);

/// ResultSet payload encoding, reused by the server-excluded replay log.
void EncodeResultSet(const exec::ResultSet& result, BufferWriter* w);
Result<exec::ResultSet> DecodeResultSet(BufferReader* r);

/// Frame I/O over a connected stream socket: 4-byte little-endian length
/// prefix followed by the payload.
Status SendFrame(int fd, std::string_view payload);
Result<std::string> RecvFrame(int fd);

}  // namespace ldv::net

#endif  // LDV_NET_PROTOCOL_H_
