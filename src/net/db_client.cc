#include "net/db_client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/logging.h"
#include "exec/expression.h"
#include "exec/plan_cache.h"
#include "obs/span.h"
#include "sql/parser.h"
#include "storage/persistence.h"
#include "util/strings.h"

namespace ldv::net {

namespace {

/// Statements whose execution changes database state (and therefore must
/// reach the WAL). EXPLAIN renders the plan without executing, so it never
/// mutates; EXPLAIN ANALYZE executes and does.
bool StatementMutates(const sql::Statement& stmt) {
  if (stmt.explain && !stmt.analyze) return false;
  switch (stmt.kind) {
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kDropTable:
    case sql::StatementKind::kAlterTableAddColumn:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kCopy:
      return true;
    case sql::StatementKind::kSelect:
    case sql::StatementKind::kTransaction:
      return false;
    case sql::StatementKind::kPrepare:
    case sql::StatementKind::kExecute:
    case sql::StatementKind::kDeallocate:
      // Never executed directly: the session layer intercepts these and
      // runs the underlying statement (which makes its own WAL decision).
      return false;
  }
  return false;
}

/// DDL and COPY change the table set or bulk-load outside the version
/// archive; the undo scope cannot restore either, so they are barred from
/// explicit transactions.
bool IsDdlOrCopy(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kDropTable:
    case sql::StatementKind::kAlterTableAddColumn:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kCopy:
      return true;
    default:
      return false;
  }
}

/// DDL proper (table-set or schema changes): serialized against every
/// reader via the exclusive catalog lock. COPY is excluded — it mutates one
/// table's rows, so it takes that table's data lock like DML.
bool IsDdl(const sql::Statement& stmt) {
  return IsDdlOrCopy(stmt) && stmt.kind != sql::StatementKind::kCopy;
}

/// The table a mutating non-DDL statement writes; nullptr for statements
/// without a single target.
const std::string* MutationTarget(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kInsert:
      return &stmt.insert->table;
    case sql::StatementKind::kUpdate:
      return &stmt.update->table;
    case sql::StatementKind::kDelete:
      return &stmt.del->table;
    case sql::StatementKind::kCopy:
      return &stmt.copy->table;
    default:
      return nullptr;
  }
}

void CollectSelectTables(const sql::SelectStmt& select,
                         std::vector<std::string>* out);

void CollectExprTables(const sql::Expr& expr, std::vector<std::string>* out) {
  for (const auto& child : expr.children) {
    if (child != nullptr) CollectExprTables(*child, out);
  }
  if (expr.subquery != nullptr) CollectSelectTables(*expr.subquery, out);
}

/// Every table name a SELECT may read: FROM entries plus the tables of any
/// subquery anywhere in the tree. Names that resolve to nothing are the
/// planner's problem; the read path just skips them.
void CollectSelectTables(const sql::SelectStmt& select,
                         std::vector<std::string>* out) {
  for (const auto& ref : select.from) {
    out->push_back(ref.table);
    if (ref.join_condition != nullptr) {
      CollectExprTables(*ref.join_condition, out);
    }
  }
  for (const auto& item : select.items) {
    if (item.expr != nullptr) CollectExprTables(*item.expr, out);
  }
  if (select.where != nullptr) CollectExprTables(*select.where, out);
  for (const auto& expr : select.group_by) {
    if (expr != nullptr) CollectExprTables(*expr, out);
  }
  if (select.having != nullptr) CollectExprTables(*select.having, out);
  for (const auto& item : select.order_by) {
    if (item.expr != nullptr) CollectExprTables(*item.expr, out);
  }
}

}  // namespace

EngineHandle::EngineHandle(storage::Database* db)
    : executor_(db),
      statement_latency_(obs::MetricsRegistry::Global().latency_histogram(
          "engine.statement_micros")),
      concurrent_reads_(
          obs::MetricsRegistry::Global().counter("engine.concurrent_reads")),
      txns_committed_(
          obs::MetricsRegistry::Global().counter("engine.txns_committed")),
      txns_rolled_back_(
          obs::MetricsRegistry::Global().counter("engine.txns_rolled_back")),
      checkpoints_(
          obs::MetricsRegistry::Global().counter("engine.checkpoints")) {
  // Retain superseded versions for snapshot readers and start the committed
  // epoch at whatever state the database already holds (recovery, loads).
  db->SetMvccRetention(true);
  snapshots_.AdvanceCommitted(db->current_statement_seq());
}

void EngineHandle::AttachWal(std::unique_ptr<storage::Wal> wal,
                             EngineDurabilityOptions durability) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = std::move(wal);
  durability_ = std::move(durability);
  commits_since_checkpoint_ = 0;
  // Redo may have advanced the statement sequence past the epoch the
  // constructor saw.
  snapshots_.AdvanceCommitted(db()->current_statement_seq());
}

void EngineHandle::EndTxnLocked() {
  txn_owner_ = kNoSession;
  txn_ops_.clear();
  txn_snapshot_.Release();
  txn_cv_.notify_all();
}

Status EngineHandle::LockAllTablesExclusive(txn::LockSet* locks) {
  std::vector<int32_t> ids;
  for (storage::Table* table : db()->Tables()) ids.push_back(table->id());
  std::sort(ids.begin(), ids.end());
  for (int32_t id : ids) {
    LDV_RETURN_IF_ERROR(locks->AcquireExclusive(locks_.TableLock(id)));
  }
  return Status::Ok();
}

Result<uint64_t> EngineHandle::AppendGroupLocked(
    const std::vector<storage::WalOp>& ops) {
  LDV_ASSIGN_OR_RETURN(uint64_t lsn, wal_->AppendCommit(next_txn_id_++, ops));
  ++commits_since_checkpoint_;
  return lsn;
}

Result<exec::ResultSet> EngineHandle::ExecTransactionLocked(
    int64_t session_id, const sql::TransactionStmt& stmt, uint64_t* sync_lsn) {
  switch (stmt.kind) {
    case sql::TransactionStmt::Kind::kBegin: {
      if (txn_owner_ == session_id) {
        return Status::InvalidArgument(
            "BEGIN: a transaction is already open (nested transactions are "
            "not supported)");
      }
      LDV_RETURN_IF_ERROR(txn_.Begin(db()));
      txn_owner_ = session_id;
      txn_ops_.clear();
      // Pin the begin epoch: archive GC must not reclaim pre-images the
      // transaction's rollback (or readers concurrent with it) still needs.
      txn_snapshot_ = txn::SnapshotRef(&snapshots_);
      return exec::ResultSet{};
    }
    case sql::TransactionStmt::Kind::kCommit: {
      if (txn_owner_ != session_id) {
        return Status::InvalidArgument("COMMIT: no transaction is open");
      }
      if (wal_ != nullptr && !txn_ops_.empty()) {
        Result<uint64_t> lsn = AppendGroupLocked(txn_ops_);
        if (!lsn.ok()) {
          // The group never reached the log; abort so memory and log agree.
          // Undo rewrites rows in place, so readers drain first.
          txn::LockSet undo_locks;
          LDV_RETURN_IF_ERROR(LockAllTablesExclusive(&undo_locks));
          Status rolled = txn_.Rollback();
          EndTxnLocked();
          txns_rolled_back_->Add(1);
          if (!rolled.ok()) return rolled;
          return lsn.status().WithContext("COMMIT aborted: wal append failed");
        }
        *sync_lsn = *lsn;
      }
      txn_.Commit();
      EndTxnLocked();
      txns_committed_->Add(1);
      MaybeCheckpointLocked();
      return exec::ResultSet{};
    }
    case sql::TransactionStmt::Kind::kRollback: {
      if (txn_owner_ != session_id) {
        return Status::InvalidArgument("ROLLBACK: no transaction is open");
      }
      // Undo restores rows in place and truncates archives across every
      // table the transaction touched; in-flight snapshot readers must
      // drain first (acquisition blocks until they finish).
      txn::LockSet undo_locks;
      LDV_RETURN_IF_ERROR(LockAllTablesExclusive(&undo_locks));
      Status rolled = txn_.Rollback();
      EndTxnLocked();
      txns_rolled_back_->Add(1);
      if (!rolled.ok()) return rolled;
      return exec::ResultSet{};
    }
  }
  return Status::Internal("unhandled transaction statement");
}

Result<exec::ResultSet> EngineHandle::ExecuteSession(const DbRequest& request,
                                                     int64_t session_id) {
  LDV_FAULT_POINT("engine.execute");
  // Protocol verbs carry the statement pre-split: a handle plus body text
  // (kPrepare) or bound parameter values (kExecute).
  switch (request.kind) {
    case RequestKind::kPrepare: {
      LDV_ASSIGN_OR_RETURN(sql::Statement body, sql::Parse(request.sql));
      return PrepareStatement(request.handle, std::move(body), session_id);
    }
    case RequestKind::kExecute:
      return ExecutePrepared(request.handle, request.params, request,
                             session_id);
    case RequestKind::kDeallocate:
      return DeallocateStatement(request.handle,
                                 /*all=*/request.handle.empty(), session_id);
    default:
      break;
  }

  LDV_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(request.sql));

  // SQL-spelled PREPARE/EXECUTE/DEALLOCATE use the same machinery as the
  // protocol verbs; EXECUTE arguments are constant expressions evaluated
  // here (the parser rejects placeholders inside them).
  switch (stmt.kind) {
    case sql::StatementKind::kPrepare:
      return PrepareStatement(stmt.prepare->name,
                              std::move(*stmt.prepare->body), session_id);
    case sql::StatementKind::kExecute: {
      storage::Tuple params;
      params.reserve(stmt.execute->args.size());
      for (const auto& arg : stmt.execute->args) {
        LDV_ASSIGN_OR_RETURN(storage::Value v, exec::EvalConstExpr(*arg));
        params.push_back(std::move(v));
      }
      return ExecutePrepared(stmt.execute->name, std::move(params), request,
                             session_id);
    }
    case sql::StatementKind::kDeallocate:
      return DeallocateStatement(stmt.deallocate->name, stmt.deallocate->all,
                                 session_id);
    default:
      break;
  }

  return ExecuteStatement(stmt, request, request.sql, session_id,
                          /*prepared=*/nullptr);
}

Result<exec::ResultSet> EngineHandle::ExecuteStatement(
    const sql::Statement& stmt, const DbRequest& request,
    const std::string& effective_sql, int64_t session_id,
    const PreparedRun* prepared) {
  // Hot standby: only reads are served locally; writes must go to the
  // primary. Transaction control is rejected too — an explicit transaction
  // exists to stage mutations. The message prefix is the failover signal
  // (IsReadOnlyStandbyError).
  if (read_only_.load(std::memory_order_acquire) &&
      (StatementMutates(stmt) ||
       stmt.kind == sql::StatementKind::kTransaction)) {
    return Status::NotSupported(
        "read-only standby: writes must go to the primary (statement: " +
        (effective_sql.size() <= 80 ? effective_sql
                                    : effective_sql.substr(0, 77) + "...") +
        ")");
  }
  // One governor per statement (DESIGN.md §11): the cancellation token the
  // operators poll, the statement deadline, and the memory budget. It is
  // registered before the engine lock is taken, so a statement queued
  // behind another session's transaction is cancellable too.
  exec::QueryGovernor governor;
  const int64_t timeout_millis = request.timeout_millis > 0
                                     ? request.timeout_millis
                                     : statement_timeout_millis_;
  if (timeout_millis > 0) {
    governor.set_deadline_nanos(NowNanos() + timeout_millis * 1'000'000);
  }
  governor.set_mem_limit_bytes(mem_limit_bytes_);
  exec::InflightQuery info;
  info.process_id = request.process_id;
  info.query_id = request.query_id;
  info.session_id = session_id;
  info.sql = effective_sql;
  info.start_nanos = NowNanos();
  exec::QueryRegistry::Registration registration =
      exec::QueryRegistry::Global().Register(&governor, std::move(info));

  // Plain non-provenance SELECTs run on the concurrent read path: shared
  // data locks and a frozen snapshot epoch instead of the engine mutex, so
  // independent readers overlap. The owner of an open transaction must see
  // its own uncommitted writes, so its reads stay on the serialized path
  // (provenance queries do too — they stamp used_by markers into the rows
  // they read).
  if (stmt.kind == sql::StatementKind::kSelect && !stmt.provenance &&
      txn_owner_.load(std::memory_order_acquire) != session_id) {
    return ExecConcurrentRead(stmt, request, &governor, prepared);
  }

  uint64_t sync_lsn = 0;
  Result<exec::ResultSet> result = Status::Internal("unreachable");
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Sliced wait for the engine: a cancel/deadline must be able to kick a
    // statement out of the queue, so the wait polls the governor instead of
    // sleeping the whole txn_wait_millis_ budget in one block.
    const int64_t wait_deadline =
        NowNanos() + txn_wait_millis_ * 1'000'000;
    while (txn_owner_ != kNoSession && txn_owner_ != session_id) {
      LDV_RETURN_IF_ERROR(governor.Check());
      if (NowNanos() >= wait_deadline) {
        return Status::IOError(
            "engine busy: another session's transaction held the engine past "
            "the wait limit");
      }
      txn_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
    LDV_RETURN_IF_ERROR(governor.Check());
    obs::Span span("engine.statement", "engine");
    if (span.recording()) {
      span.AddArg("sql", effective_sql.size() <= 120
                             ? effective_sql
                             : effective_sql.substr(0, 117) + "...");
    }

    if (stmt.kind == sql::StatementKind::kTransaction) {
      result = ExecTransactionLocked(session_id, *stmt.transaction, &sync_lsn);
      if (txn_owner_ == kNoSession) {
        // COMMIT/ROLLBACK resolved the transaction: its outcome (or the
        // restored pre-state) is now the committed epoch readers pin.
        snapshots_.AdvanceCommitted(db()->current_statement_seq());
      }
    } else {
      const bool in_txn = txn_owner_ == session_id;
      const bool mutates = StatementMutates(stmt);
      if (in_txn && mutates && IsDdlOrCopy(stmt)) {
        return Status::InvalidArgument(
            "DDL and COPY are not allowed inside a transaction");
      }
      // Data locks (DESIGN.md §12): DML and COPY take the target table
      // exclusively so snapshot readers never observe a row vector
      // mid-mutation; DDL takes the catalog exclusively so readers never
      // observe the table set or a schema changing. SELECTs here (the
      // transaction owner's reads, provenance queries) take none — mu_
      // already excludes every other writer, and snapshot readers do not
      // touch the fields provenance stamps.
      txn::LockSet data_locks;
      storage::Table* locked_table = nullptr;
      Status acquired = Status::Ok();
      if (mutates) {
        auto poll = [&governor] { return governor.Check(); };
        if (IsDdl(stmt)) {
          acquired = data_locks.AcquireExclusive(locks_.catalog(), poll);
        } else if (const std::string* target = MutationTarget(stmt)) {
          locked_table = db()->FindTable(*target);
          if (locked_table != nullptr) {
            acquired = data_locks.AcquireExclusive(
                locks_.TableLock(locked_table->id()), poll);
          }
        }
      }

      // With a WAL attached, an autocommit mutation runs under its own undo
      // scope: if execution or the log append fails, the statement's partial
      // effects are rolled back and the client's error means "not applied".
      storage::TxnScope autocommit;
      const bool guarded = mutates && !in_txn && wal_ != nullptr;

      const int64_t seq_before = db()->current_statement_seq();
      if (!acquired.ok()) {
        result = acquired;  // cancelled while waiting for a data lock
      } else {
        if (guarded) LDV_RETURN_IF_ERROR(autocommit.Begin(db()));
        exec::ExecOptions options;
        options.process_id = request.process_id;
        options.query_id = request.query_id;
        options.governor = &governor;
        const int64_t start = NowNanos();
        result = executor_.ExecuteParsed(stmt, options);
        statement_latency_->Observe((NowNanos() - start) / 1000);
      }

      if (!result.ok() && span.recording() &&
          exec::IsGovernanceStatus(result.status().code())) {
        span.AddArg("governance",
                    std::string(StatusCodeName(result.status().code())));
      }
      if (!result.ok()) {
        if (guarded && acquired.ok()) {
          LDV_RETURN_IF_ERROR(autocommit.Rollback());
        }
        if (in_txn) {
          // Release this statement's data locks before taking every table
          // for the undo: holding one lock while waiting for the rest could
          // deadlock against a reader holding part of the set. The interim
          // state is invisible to readers anyway — every uncommitted write
          // postdates their snapshot epochs.
          data_locks.Release();
          txn::LockSet undo_locks;
          LDV_RETURN_IF_ERROR(LockAllTablesExclusive(&undo_locks));
          Status rolled = txn_.Rollback();
          EndTxnLocked();
          txns_rolled_back_->Add(1);
          if (!rolled.ok()) return rolled;
          return result.status().WithContext("transaction aborted");
        }
      } else if (mutates) {
        // Every logged statement occupies at least one sequence slot, so a
        // checkpoint boundary between statements is unambiguous on redo
        // (DDL allocates no version stamps on its own).
        if (db()->current_statement_seq() == seq_before) {
          db()->NextStatementSeq();
        }
        if (in_txn) {
          txn_ops_.push_back(storage::WalOp{seq_before, effective_sql});
        } else if (wal_ != nullptr) {
          Result<uint64_t> lsn = AppendGroupLocked(
              {storage::WalOp{seq_before, effective_sql}});
          if (!lsn.ok()) {
            LDV_RETURN_IF_ERROR(autocommit.Rollback());
            return lsn.status().WithContext(
                "statement rolled back: wal append failed");
          }
          sync_lsn = *lsn;
          autocommit.Commit();
          txns_committed_->Add(1);
          MaybeCheckpointLocked();
        }
      }
      if (txn_owner_ == kNoSession) {
        // Commit point: the statement's effects (or its rolled-back
        // pre-state) are now the committed epoch new readers pin, and
        // pre-images only older snapshots could see become reclaimable.
        // GC runs under the target's exclusive lock, already held.
        snapshots_.AdvanceCommitted(db()->current_statement_seq());
        if (result.ok() && locked_table != nullptr) {
          locked_table->GcArchive(snapshots_.OldestLiveEpoch());
        }
      }
    }
  }
  // Group commit: the fsync happens outside the engine lock, so concurrent
  // committers share one fsync. A sync failure is reported without undo —
  // the group is in the log (commit outcome unknown until the next sync or
  // recovery), the classic ack-in-doubt.
  if (result.ok() && sync_lsn != 0) {
    LDV_RETURN_IF_ERROR(wal_->Sync(sync_lsn));
    // Semi-sync replication: the commit is not acknowledged until every
    // live standby has it (also outside mu_, so the stream keeps serving
    // while committers wait).
    if (commit_ack_barrier_) {
      LDV_RETURN_IF_ERROR(commit_ack_barrier_(sync_lsn));
    }
  }
  return result;
}

Status EngineHandle::ApplyReplicated(const std::vector<storage::WalOp>& ops) {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<storage::Table*> touched;
  for (const storage::WalOp& op : ops) {
    LDV_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(op.sql));
    // Same exclusive data locks a primary writer takes: snapshot readers
    // never observe a row vector or the catalog mid-mutation.
    txn::LockSet data_locks;
    storage::Table* locked_table = nullptr;
    if (IsDdl(stmt)) {
      LDV_RETURN_IF_ERROR(data_locks.AcquireExclusive(locks_.catalog()));
    } else if (const std::string* target = MutationTarget(stmt)) {
      locked_table = db()->FindTable(*target);
      if (locked_table != nullptr) {
        LDV_RETURN_IF_ERROR(
            data_locks.AcquireExclusive(locks_.TableLock(locked_table->id())));
      }
    }
    // Deterministic redo, exactly as recovery replays the log: restore the
    // statement sequence the primary saw, execute, and guarantee the
    // statement occupies at least one sequence slot.
    db()->set_statement_seq(op.stmt_seq_before);
    exec::ExecOptions options;
    options.threads = 1;
    Result<exec::ResultSet> applied = executor_.Execute(op.sql, options);
    if (!applied.ok()) {
      return applied.status().WithContext("replicated apply failed (sql: " +
                                          op.sql + ")");
    }
    db()->set_statement_seq(
        std::max(db()->current_statement_seq(), op.stmt_seq_before + 1));
    if (locked_table != nullptr) touched.push_back(locked_table);
  }
  // Publish the whole group as one committed epoch, then reclaim pre-images
  // no live snapshot can see. GC retakes each table's lock: the per-op
  // locks were released above, and GcArchive requires exclusivity.
  snapshots_.AdvanceCommitted(db()->current_statement_seq());
  txns_committed_->Add(1);
  for (storage::Table* table : touched) {
    txn::LockSet gc_lock;
    LDV_RETURN_IF_ERROR(gc_lock.AcquireExclusive(locks_.TableLock(table->id())));
    table->GcArchive(snapshots_.OldestLiveEpoch());
  }
  return Status::Ok();
}

Result<exec::ResultSet> EngineHandle::PrepareStatement(const std::string& name,
                                                       sql::Statement body,
                                                       int64_t session_id) {
  if (name.empty()) {
    return Status::InvalidArgument("PREPARE: statement name is empty");
  }
  switch (body.kind) {
    case sql::StatementKind::kSelect:
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete:
      break;
    default:
      return Status::InvalidArgument(
          "PREPARE body must be SELECT, INSERT, UPDATE, or DELETE");
  }
  if (body.explain) {
    return Status::InvalidArgument("PREPARE body cannot be EXPLAIN");
  }
  auto prep = std::make_shared<PreparedStatement>();
  prep->name = ToLower(name);
  prep->num_params = body.num_params;
  prep->cache_key =
      exec::NormalizeStatementText(sql::StatementToString(body));
  prep->body =
      exec::PlanCache::Global().Intern(*db(), prep->cache_key,
                                       std::move(body));
  std::lock_guard<std::mutex> lock(prepared_mu_);
  auto& session = prepared_[session_id];
  if (session.find(prep->name) != session.end()) {
    return Status::AlreadyExists("prepared statement \"" + name +
                                 "\" already exists");
  }
  session[prep->name] = std::move(prep);
  return exec::ResultSet{};
}

Result<exec::ResultSet> EngineHandle::ExecutePrepared(const std::string& name,
                                                      storage::Tuple params,
                                                      const DbRequest& request,
                                                      int64_t session_id) {
  std::shared_ptr<const PreparedStatement> prep;
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    auto sit = prepared_.find(session_id);
    if (sit != prepared_.end()) {
      auto it = sit->second.find(ToLower(name));
      if (it != sit->second.end()) prep = it->second;
    }
  }
  if (prep == nullptr) {
    return Status::NotFound("prepared statement \"" + name +
                            "\" does not exist");
  }
  if (static_cast<int>(params.size()) != prep->num_params) {
    return Status::InvalidArgument(StrFormat(
        "EXECUTE %s: statement expects %d parameter(s), %zu given",
        name.c_str(), prep->num_params, params.size()));
  }

  const bool in_txn =
      txn_owner_.load(std::memory_order_acquire) == session_id;
  if (!in_txn && exec::PlanCacheEligible(*prep->body)) {
    PreparedRun run;
    run.cache_key = &prep->cache_key;
    run.params = &params;
    return ExecuteStatement(*prep->body, request, "EXECUTE " + prep->name,
                            session_id, &run);
  }

  // Substitution path: inline the bound values as literals and run the
  // statement exactly as if the client had sent it with literals spelled
  // out. Bit-identical by construction; the WAL and governance listings
  // see the rendered text.
  sql::Statement stmt = sql::CloneStatement(*prep->body);
  LDV_RETURN_IF_ERROR(sql::SubstituteParameters(&stmt, params));
  const std::string effective_sql = sql::StatementToString(stmt);
  return ExecuteStatement(stmt, request, effective_sql, session_id,
                          /*prepared=*/nullptr);
}

Result<exec::ResultSet> EngineHandle::DeallocateStatement(
    const std::string& name, bool all, int64_t session_id) {
  std::lock_guard<std::mutex> lock(prepared_mu_);
  auto sit = prepared_.find(session_id);
  if (all) {
    if (sit != prepared_.end()) prepared_.erase(sit);
    return exec::ResultSet{};
  }
  if (sit == prepared_.end() || sit->second.erase(ToLower(name)) == 0) {
    return Status::NotFound("prepared statement \"" + name +
                            "\" does not exist");
  }
  return exec::ResultSet{};
}

void EngineHandle::AbortSession(int64_t session_id) {
  {
    // Connection teardown drops the session's prepared statements with it.
    std::lock_guard<std::mutex> lock(prepared_mu_);
    prepared_.erase(session_id);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (txn_owner_ != session_id) return;
  // Same drill as ROLLBACK: readers drain before undo rewrites rows.
  txn::LockSet undo_locks;
  Status locked = LockAllTablesExclusive(&undo_locks);
  if (!locked.ok()) {
    LDV_LOG(Error) << "lock acquisition on session teardown failed: "
                   << locked.ToString();
  }
  Status rolled = txn_.Rollback();
  if (!rolled.ok()) {
    LDV_LOG(Error) << "rollback on session teardown failed: "
                   << rolled.ToString();
  }
  EndTxnLocked();
  txns_rolled_back_->Add(1);
  snapshots_.AdvanceCommitted(db()->current_statement_seq());
}

Result<exec::ResultSet> EngineHandle::ExecConcurrentRead(
    const sql::Statement& stmt, const DbRequest& request,
    exec::QueryGovernor* governor, const PreparedRun* prepared) {
  obs::Span span("engine.read", "engine");
  if (span.recording()) {
    span.AddArg("sql", request.sql.size() <= 120
                           ? request.sql
                           : request.sql.substr(0, 117) + "...");
  }
  auto poll = [governor] { return governor->Check(); };

  // Lock hierarchy (DESIGN.md §12): catalog shared first — the table set
  // and schemas cannot change underneath the statement — then the data
  // locks of every referenced table, shared, in ascending id order. The
  // whole set is acquired up front, which keeps the hierarchy
  // deadlock-free; waiters stay cancellable through the governor poll.
  txn::LockSet locks;
  LDV_RETURN_IF_ERROR(locks.AcquireShared(locks_.catalog(), poll));
  std::vector<std::string> names;
  CollectSelectTables(*stmt.select, &names);
  std::vector<int32_t> ids;
  for (const std::string& name : names) {
    const storage::Table* table = db()->FindTable(name);
    if (table != nullptr) ids.push_back(table->id());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (int32_t id : ids) {
    LDV_RETURN_IF_ERROR(locks.AcquireShared(locks_.TableLock(id), poll));
  }

  // The snapshot is taken after the locks are held: every commit point
  // before this instant is fully applied (writers hold their data locks to
  // completion), and the pin is as fresh as possible for the GC watermark.
  txn::SnapshotRef snapshot(&snapshots_);

  exec::ExecOptions options;
  options.process_id = request.process_id;
  options.query_id = request.query_id;
  options.governor = governor;
  options.snapshot_epoch = snapshot.epoch();
  const int64_t start = NowNanos();
  Result<exec::ResultSet> result = [&]() -> Result<exec::ResultSet> {
    if (prepared != nullptr) {
      // EXECUTE of a cache-eligible SELECT: fetch (or build) the shared
      // plan under the locks taken above — the schema cannot shift between
      // the staleness check and execution — and run it with the bound
      // parameters.
      std::vector<storage::ValueType> types;
      types.reserve(prepared->params->size());
      for (const storage::Value& v : *prepared->params) {
        types.push_back(v.type());
      }
      LDV_ASSIGN_OR_RETURN(
          auto plan, exec::PlanCache::Global().GetPlan(
                         db(), *prepared->cache_key, stmt, types));
      return executor_.ExecutePlanned(*plan->plan, *prepared->params,
                                      options);
    }
    return executor_.ExecuteParsed(stmt, options);
  }();
  statement_latency_->Observe((NowNanos() - start) / 1000);
  concurrent_reads_->Add(1);
  return result;
}

Status EngineHandle::FlushWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) return Status::Ok();
  return wal_->Flush();
}

Status EngineHandle::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status EngineHandle::CheckpointLocked() {
  if (wal_ == nullptr || durability_.data_dir.empty()) {
    return Status::InvalidArgument(
        "checkpointing needs an attached WAL and a data_dir");
  }
  obs::Span span("engine.checkpoint", "engine");
  // Order matters: the log must cover everything the snapshot will contain
  // before the snapshot becomes the recovery base, and segments may only be
  // retired once the snapshot covering them is durable (SaveDatabase's
  // catalog rename is its commit point).
  LDV_RETURN_IF_ERROR(wal_->Flush());
  LDV_RETURN_IF_ERROR(storage::SaveDatabase(*db(), durability_.data_dir));
  LDV_RETURN_IF_ERROR(wal_->StartNewSegment());
  LDV_RETURN_IF_ERROR(wal_->RetireOldSegments(
      wal_retire_floor_ ? wal_retire_floor_() : UINT64_MAX));
  commits_since_checkpoint_ = 0;
  checkpoints_->Add(1);
  return Status::Ok();
}

void EngineHandle::MaybeCheckpointLocked() {
  if (durability_.checkpoint_every <= 0 || durability_.data_dir.empty()) {
    return;
  }
  if (commits_since_checkpoint_ < durability_.checkpoint_every) return;
  Status status = CheckpointLocked();
  if (!status.ok()) {
    // A failed checkpoint must not fail the commit that triggered it; the
    // WAL still covers everything. Try again after the next batch.
    LDV_LOG(Warning) << "checkpoint failed: " << status.ToString();
    commits_since_checkpoint_ = 0;
  }
}

SocketDbClient::~SocketDbClient() { Close(); }

SocketDbClient::SocketDbClient(SocketDbClient&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

SocketDbClient& SocketDbClient::operator=(SocketDbClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void SocketDbClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<SocketDbClient>> SocketDbClient::Connect(
    const std::string& socket_path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IOError("connect " + socket_path + ": " + strerror(errno));
  }
  return std::unique_ptr<SocketDbClient>(new SocketDbClient(fd));
}

Result<exec::ResultSet> SocketDbClient::Execute(const DbRequest& request) {
  if (fd_ < 0) return Status::IOError("socket client is closed");
  LDV_RETURN_IF_ERROR(SendFrame(fd_, EncodeRequest(request)));
  LDV_ASSIGN_OR_RETURN(std::string payload, RecvFrame(fd_));
  return DecodeResponse(payload);
}

namespace {

/// Extracts the single string cell of a control-request response.
Result<std::string> SingleStringCell(const exec::ResultSet& result,
                                     const char* what) {
  if (result.rows.size() != 1 || result.rows[0].size() != 1 ||
      result.rows[0][0].type() != storage::ValueType::kString) {
    return Status::IOError(std::string("malformed ") + what + " response");
  }
  return result.rows[0][0].AsString();
}

Result<Json> ControlRequestJson(DbClient* client, RequestKind kind,
                                const char* what) {
  DbRequest request;
  request.kind = kind;
  LDV_ASSIGN_OR_RETURN(exec::ResultSet result, client->Execute(request));
  LDV_ASSIGN_OR_RETURN(std::string json, SingleStringCell(result, what));
  return Json::Parse(json);
}

}  // namespace

Result<Json> FetchServerStats(DbClient* client) {
  return ControlRequestJson(client, RequestKind::kStats, "stats");
}

Status StartServerTrace(DbClient* client) {
  DbRequest request;
  request.kind = RequestKind::kTraceStart;
  return client->Execute(request).status();
}

Result<Json> FetchServerTrace(DbClient* client) {
  return ControlRequestJson(client, RequestKind::kTraceDump, "trace");
}

Result<int64_t> CancelServerQuery(DbClient* client, int64_t process_id,
                                  int64_t query_id) {
  DbRequest request;
  request.kind = RequestKind::kCancel;
  request.process_id = process_id;
  request.query_id = query_id;
  LDV_ASSIGN_OR_RETURN(exec::ResultSet result, client->Execute(request));
  if (result.rows.size() != 1 || result.rows[0].size() != 1 ||
      result.rows[0][0].type() != storage::ValueType::kInt64) {
    return Status::IOError("malformed cancel response");
  }
  return result.rows[0][0].AsInt();
}

Status PrepareStatement(DbClient* client, const std::string& name,
                        const std::string& sql) {
  DbRequest request;
  request.kind = RequestKind::kPrepare;
  request.handle = name;
  request.sql = sql;
  return client->Execute(request).status();
}

Result<exec::ResultSet> ExecutePrepared(DbClient* client,
                                        const std::string& name,
                                        storage::Tuple params,
                                        int64_t process_id, int64_t query_id) {
  DbRequest request;
  request.kind = RequestKind::kExecute;
  request.handle = name;
  request.params = std::move(params);
  request.process_id = process_id;
  request.query_id = query_id;
  return client->Execute(request);
}

Status DeallocatePrepared(DbClient* client, const std::string& name) {
  DbRequest request;
  request.kind = RequestKind::kDeallocate;
  request.handle = name;
  return client->Execute(request).status();
}

bool IsReadOnlyStandbyError(const Status& status) {
  return status.code() == StatusCode::kNotSupported &&
         status.message().rfind("read-only standby", 0) == 0;
}

Result<uint64_t> PromoteServer(DbClient* client) {
  DbRequest request;
  request.kind = RequestKind::kPromote;
  LDV_ASSIGN_OR_RETURN(exec::ResultSet result, client->Execute(request));
  // Row shape: (role:string, applied_lsn:int).
  if (result.rows.size() != 1 || result.rows[0].size() != 2 ||
      result.rows[0][1].type() != storage::ValueType::kInt64) {
    return Status::IOError("malformed promote response");
  }
  return static_cast<uint64_t>(result.rows[0][1].AsInt());
}

}  // namespace ldv::net
