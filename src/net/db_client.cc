#include "net/db_client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/fault.h"
#include "obs/span.h"

namespace ldv::net {

Result<exec::ResultSet> EngineHandle::Execute(const DbRequest& request) {
  LDV_FAULT_POINT("engine.execute");
  std::lock_guard<std::mutex> lock(mu_);
  obs::Span span("engine.statement", "engine");
  if (span.recording()) {
    span.AddArg("sql", request.sql.size() <= 120
                           ? request.sql
                           : request.sql.substr(0, 117) + "...");
  }
  exec::ExecOptions options;
  options.process_id = request.process_id;
  options.query_id = request.query_id;
  const int64_t start = NowNanos();
  Result<exec::ResultSet> result = executor_.Execute(request.sql, options);
  statement_latency_->Observe((NowNanos() - start) / 1000);
  return result;
}

SocketDbClient::~SocketDbClient() { Close(); }

SocketDbClient::SocketDbClient(SocketDbClient&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

SocketDbClient& SocketDbClient::operator=(SocketDbClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void SocketDbClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<SocketDbClient>> SocketDbClient::Connect(
    const std::string& socket_path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IOError("connect " + socket_path + ": " + strerror(errno));
  }
  return std::unique_ptr<SocketDbClient>(new SocketDbClient(fd));
}

Result<exec::ResultSet> SocketDbClient::Execute(const DbRequest& request) {
  if (fd_ < 0) return Status::IOError("socket client is closed");
  LDV_RETURN_IF_ERROR(SendFrame(fd_, EncodeRequest(request)));
  LDV_ASSIGN_OR_RETURN(std::string payload, RecvFrame(fd_));
  return DecodeResponse(payload);
}

namespace {

/// Extracts the single string cell of a control-request response.
Result<std::string> SingleStringCell(const exec::ResultSet& result,
                                     const char* what) {
  if (result.rows.size() != 1 || result.rows[0].size() != 1 ||
      result.rows[0][0].type() != storage::ValueType::kString) {
    return Status::IOError(std::string("malformed ") + what + " response");
  }
  return result.rows[0][0].AsString();
}

Result<Json> ControlRequestJson(DbClient* client, RequestKind kind,
                                const char* what) {
  DbRequest request;
  request.kind = kind;
  LDV_ASSIGN_OR_RETURN(exec::ResultSet result, client->Execute(request));
  LDV_ASSIGN_OR_RETURN(std::string json, SingleStringCell(result, what));
  return Json::Parse(json);
}

}  // namespace

Result<Json> FetchServerStats(DbClient* client) {
  return ControlRequestJson(client, RequestKind::kStats, "stats");
}

Status StartServerTrace(DbClient* client) {
  DbRequest request;
  request.kind = RequestKind::kTraceStart;
  return client->Execute(request).status();
}

Result<Json> FetchServerTrace(DbClient* client) {
  return ControlRequestJson(client, RequestKind::kTraceDump, "trace");
}

}  // namespace ldv::net
