#include "net/db_client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/fault.h"

namespace ldv::net {

Result<exec::ResultSet> EngineHandle::Execute(const DbRequest& request) {
  LDV_FAULT_POINT("engine.execute");
  std::lock_guard<std::mutex> lock(mu_);
  exec::ExecOptions options;
  options.process_id = request.process_id;
  options.query_id = request.query_id;
  return executor_.Execute(request.sql, options);
}

SocketDbClient::~SocketDbClient() { Close(); }

SocketDbClient::SocketDbClient(SocketDbClient&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

SocketDbClient& SocketDbClient::operator=(SocketDbClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void SocketDbClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<SocketDbClient>> SocketDbClient::Connect(
    const std::string& socket_path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IOError("connect " + socket_path + ": " + strerror(errno));
  }
  return std::unique_ptr<SocketDbClient>(new SocketDbClient(fd));
}

Result<exec::ResultSet> SocketDbClient::Execute(const DbRequest& request) {
  if (fd_ < 0) return Status::IOError("socket client is closed");
  LDV_RETURN_IF_ERROR(SendFrame(fd_, EncodeRequest(request)));
  LDV_ASSIGN_OR_RETURN(std::string payload, RecvFrame(fd_));
  return DecodeResponse(payload);
}

}  // namespace ldv::net
