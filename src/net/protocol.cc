#include "net/protocol.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault.h"
#include "util/serde.h"

namespace ldv::net {

using exec::DmlRecord;
using exec::ProvTupleRecord;
using exec::ResultSet;
using storage::TupleVid;
using storage::Value;

namespace {

void EncodeVid(const TupleVid& vid, BufferWriter* w) {
  w->PutVarint(vid.table_id);
  w->PutVarint(vid.rowid);
  w->PutVarint(vid.version);
}

Result<TupleVid> DecodeVid(BufferReader* r) {
  TupleVid vid;
  LDV_ASSIGN_OR_RETURN(int64_t table_id, r->GetVarint());
  vid.table_id = static_cast<int32_t>(table_id);
  LDV_ASSIGN_OR_RETURN(vid.rowid, r->GetVarint());
  LDV_ASSIGN_OR_RETURN(vid.version, r->GetVarint());
  return vid;
}

void EncodeTuple(const storage::Tuple& tuple, BufferWriter* w) {
  w->PutVarint(static_cast<int64_t>(tuple.size()));
  for (const Value& v : tuple) v.Serialize(w);
}

/// Sanity bound for decoded element counts: every element costs at least
/// one byte, so a count above the remaining payload is corruption. Guards
/// the reserve() calls against fuzzed/corrupted length prefixes.
Status CheckCount(int64_t n, const BufferReader& r) {
  if (n < 0 || static_cast<uint64_t>(n) > r.remaining()) {
    return Status::IOError("corrupt count in encoded result set");
  }
  return Status::Ok();
}

Result<storage::Tuple> DecodeTuple(BufferReader* r) {
  LDV_ASSIGN_OR_RETURN(int64_t n, r->GetVarint());
  LDV_RETURN_IF_ERROR(CheckCount(n, *r));
  storage::Tuple tuple;
  tuple.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    LDV_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
    tuple.push_back(std::move(v));
  }
  return tuple;
}

}  // namespace

std::string EncodeRequest(const DbRequest& request) {
  BufferWriter w;
  w.PutString(request.sql);
  w.PutVarint(request.process_id);
  w.PutVarint(request.query_id);
  w.PutU8(static_cast<uint8_t>(request.kind));
  w.PutVarint(request.timeout_millis);
  w.PutString(request.handle);
  EncodeTuple(request.params, &w);
  return w.TakeData();
}

Result<DbRequest> DecodeRequest(std::string_view bytes) {
  BufferReader r(bytes);
  DbRequest request;
  LDV_ASSIGN_OR_RETURN(request.sql, r.GetString());
  LDV_ASSIGN_OR_RETURN(request.process_id, r.GetVarint());
  LDV_ASSIGN_OR_RETURN(request.query_id, r.GetVarint());
  // Frames written before the kind byte existed (old clients, recorded
  // replay logs) end here; they are plain queries.
  if (r.remaining() > 0) {
    LDV_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
    if (kind > static_cast<uint8_t>(RequestKind::kPromote)) {
      return Status::InvalidArgument("unknown request kind: " +
                                     std::to_string(kind));
    }
    request.kind = static_cast<RequestKind>(kind);
  }
  // Frames written before the deadline field existed end here; they carry
  // no per-request timeout (the server default applies).
  if (r.remaining() > 0) {
    LDV_ASSIGN_OR_RETURN(request.timeout_millis, r.GetVarint());
  }
  // Frames written before prepared statements existed end here; they carry
  // no handle and no parameters.
  if (r.remaining() > 0) {
    LDV_ASSIGN_OR_RETURN(request.handle, r.GetString());
  }
  if (r.remaining() > 0) {
    LDV_ASSIGN_OR_RETURN(request.params, DecodeTuple(&r));
  }
  return request;
}

void EncodeResultSet(const ResultSet& result, BufferWriter* w) {
  result.schema.Serialize(w);
  w->PutVarint(static_cast<int64_t>(result.rows.size()));
  for (const storage::Tuple& row : result.rows) EncodeTuple(row, w);
  w->PutVarint(result.affected);
  w->PutBool(result.has_provenance);
  w->PutVarint(static_cast<int64_t>(result.lineage.size()));
  for (const auto& set : result.lineage) {
    w->PutVarint(static_cast<int64_t>(set.size()));
    for (const TupleVid& vid : set) EncodeVid(vid, w);
  }
  w->PutVarint(static_cast<int64_t>(result.prov_tuples.size()));
  for (const ProvTupleRecord& t : result.prov_tuples) {
    EncodeVid(t.vid, w);
    w->PutString(t.table);
    EncodeTuple(t.values, w);
  }
  w->PutVarint(static_cast<int64_t>(result.dml.size()));
  for (const DmlRecord& d : result.dml) {
    w->PutU8(static_cast<uint8_t>(d.kind));
    w->PutString(d.table);
    EncodeVid(d.vid, w);
    w->PutBool(d.has_prior);
    if (d.has_prior) EncodeVid(d.prior, w);
  }
}

Result<ResultSet> DecodeResultSet(BufferReader* r) {
  ResultSet result;
  LDV_ASSIGN_OR_RETURN(result.schema, storage::Schema::Deserialize(r));
  LDV_ASSIGN_OR_RETURN(int64_t num_rows, r->GetVarint());
  LDV_RETURN_IF_ERROR(CheckCount(num_rows, *r));
  result.rows.reserve(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    LDV_ASSIGN_OR_RETURN(storage::Tuple row, DecodeTuple(r));
    result.rows.push_back(std::move(row));
  }
  LDV_ASSIGN_OR_RETURN(result.affected, r->GetVarint());
  LDV_ASSIGN_OR_RETURN(result.has_provenance, r->GetBool());
  LDV_ASSIGN_OR_RETURN(int64_t num_lineage, r->GetVarint());
  LDV_RETURN_IF_ERROR(CheckCount(num_lineage, *r));
  result.lineage.reserve(static_cast<size_t>(num_lineage));
  for (int64_t i = 0; i < num_lineage; ++i) {
    LDV_ASSIGN_OR_RETURN(int64_t n, r->GetVarint());
    LDV_RETURN_IF_ERROR(CheckCount(n, *r));
    exec::LineageSet set;
    set.reserve(static_cast<size_t>(n));
    for (int64_t k = 0; k < n; ++k) {
      LDV_ASSIGN_OR_RETURN(TupleVid vid, DecodeVid(r));
      set.push_back(vid);
    }
    result.lineage.push_back(std::move(set));
  }
  LDV_ASSIGN_OR_RETURN(int64_t num_prov, r->GetVarint());
  LDV_RETURN_IF_ERROR(CheckCount(num_prov, *r));
  result.prov_tuples.reserve(static_cast<size_t>(num_prov));
  for (int64_t i = 0; i < num_prov; ++i) {
    ProvTupleRecord rec;
    LDV_ASSIGN_OR_RETURN(rec.vid, DecodeVid(r));
    LDV_ASSIGN_OR_RETURN(rec.table, r->GetString());
    LDV_ASSIGN_OR_RETURN(rec.values, DecodeTuple(r));
    result.prov_tuples.push_back(std::move(rec));
  }
  LDV_ASSIGN_OR_RETURN(int64_t num_dml, r->GetVarint());
  LDV_RETURN_IF_ERROR(CheckCount(num_dml, *r));
  result.dml.reserve(static_cast<size_t>(num_dml));
  for (int64_t i = 0; i < num_dml; ++i) {
    DmlRecord rec;
    LDV_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
    rec.kind = static_cast<DmlRecord::Kind>(kind);
    LDV_ASSIGN_OR_RETURN(rec.table, r->GetString());
    LDV_ASSIGN_OR_RETURN(rec.vid, DecodeVid(r));
    LDV_ASSIGN_OR_RETURN(rec.has_prior, r->GetBool());
    if (rec.has_prior) {
      LDV_ASSIGN_OR_RETURN(rec.prior, DecodeVid(r));
    }
    result.dml.push_back(std::move(rec));
  }
  return result;
}

std::string EncodeResponse(const Status& status, const ResultSet& result) {
  BufferWriter w;
  w.PutBool(status.ok());
  if (!status.ok()) {
    w.PutU8(static_cast<uint8_t>(status.code()));
    w.PutString(status.message());
  } else {
    EncodeResultSet(result, &w);
  }
  return w.TakeData();
}

Result<ResultSet> DecodeResponse(std::string_view bytes) {
  BufferReader r(bytes);
  LDV_ASSIGN_OR_RETURN(bool ok, r.GetBool());
  if (!ok) {
    LDV_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
    LDV_ASSIGN_OR_RETURN(std::string message, r.GetString());
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  return DecodeResultSet(&r);
}

Status SendFrame(int fd, std::string_view payload) {
  LDV_FAULT_POINT("net.send");
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload too large: " + std::to_string(payload.size()) +
        " bytes (max " + std::to_string(kMaxFrameBytes) + ")");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  char header[4];
  for (int i = 0; i < 4; ++i) header[i] = static_cast<char>(len >> (8 * i));
  std::string buf(header, 4);
  buf.append(payload);
  size_t sent = 0;
  while (sent < buf.size()) {
    ssize_t n = ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {
constexpr char kOversizedFrameMsg[] = "oversized frame";
}  // namespace

bool IsOversizedFrameError(const Status& status) {
  return status.code() == StatusCode::kIOError &&
         status.message().rfind(kOversizedFrameMsg, 0) == 0;
}

Result<std::string> RecvFrame(int fd) {
  LDV_FAULT_POINT("net.recv");
  auto read_exact = [fd](char* out, size_t n) -> Status {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::recv(fd, out + got, n - got, 0);
      if (r == 0) return Status::IOError("connection closed");
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("recv: ") + strerror(errno));
      }
      got += static_cast<size_t>(r);
    }
    return Status::Ok();
  };
  char header[4];
  LDV_RETURN_IF_ERROR(read_exact(header, 4));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<unsigned char>(header[i]))
           << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    // The prefix is attacker/corruption-controlled: refuse before the
    // std::string allocation, not after a multi-GiB new[] attempt.
    return Status::IOError(std::string(kOversizedFrameMsg) + ": " +
                           std::to_string(len) + " byte length prefix (max " +
                           std::to_string(kMaxFrameBytes) + ")");
  }
  std::string payload(len, '\0');
  if (len > 0) LDV_RETURN_IF_ERROR(read_exact(payload.data(), len));
  return payload;
}

}  // namespace ldv::net
