#ifndef LDV_NET_RETRYING_DB_CLIENT_H_
#define LDV_NET_RETRYING_DB_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/db_client.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace ldv::net {

/// Retry/backoff policy for RetryingDbClient. Defaults are tuned for a
/// local Unix-domain socket: short initial backoff, capped exponential
/// growth, generous attempt budget (transient fault storms in the
/// fault-injection harness can fail many consecutive attempts).
struct RetryPolicy {
  /// Total tries per request (first attempt included).
  int max_attempts = 64;
  int64_t initial_backoff_micros = 200;
  int64_t max_backoff_micros = 20'000;
  double backoff_multiplier = 2.0;
  /// Backoff is scaled by a uniform factor in [1 - jitter, 1 + jitter].
  double jitter = 0.5;
  /// Wall-clock budget per request; attempts stop once it is exhausted.
  int64_t request_deadline_micros = 30'000'000;
  /// Seed of the jitter stream (deterministic per client).
  uint64_t seed = 0x1D5EED;
};

/// Decorator adding fault tolerance to any DbClient (paper §VII-C layer):
/// transport-level failures (IOError: connection reset, injected socket
/// faults, server overload/drain rejections) are retried with capped
/// exponential backoff and jitter until the per-request deadline; engine
/// errors (parse errors, missing tables, constraint violations) pass
/// through untouched. After a transport failure the underlying client is
/// discarded and re-created through the factory — for SocketDbClient this
/// is a transparent reconnect, so a server restart between requests is
/// invisible to the application.
///
/// Exactly-once caveat: a retried request may have already executed if the
/// failure hit after delivery (e.g. the response frame was lost). DbServer
/// deduplicates on (process_id, query_id, sql), so audited workloads — which
/// tag every statement with ids — keep exactly-once semantics across
/// retries; untagged requests (both ids zero) are at-least-once.
///
/// Not thread-safe (same contract as the clients it wraps).
class RetryingDbClient final : public DbClient {
 public:
  using Factory = std::function<Result<std::unique_ptr<DbClient>>()>;

  /// Wraps `initial` (may be null: the first request connects via factory).
  RetryingDbClient(std::unique_ptr<DbClient> initial, Factory factory,
                   RetryPolicy policy = {});

  /// Convenience: a retrying client over a SocketDbClient to `socket_path`.
  static std::unique_ptr<RetryingDbClient> ForSocket(std::string socket_path,
                                                     RetryPolicy policy = {});

  /// Failover client over an ordered endpoint list (DESIGN.md §14): connects
  /// to the first endpoint, and rotates to the next when the current one is
  /// unreachable (connect failure, transport error) or answers writes with
  /// the read-only-standby rejection — so a client configured with
  /// [primary, standby] follows a promotion without reconfiguration.
  static std::unique_ptr<RetryingDbClient> ForEndpoints(
      std::vector<std::string> socket_paths, RetryPolicy policy = {});

  Result<exec::ResultSet> Execute(const DbRequest& request) override;

  /// Attempts actually issued to the wrapped client (>= requests served).
  int64_t attempts() const { return attempts_; }
  /// Times the wrapped client was (re)created through the factory.
  int64_t reconnects() const { return reconnects_; }
  /// Times the client rotated to the next endpoint (ForEndpoints only).
  int64_t failovers() const { return failovers_; }

  /// The retry classification: true only for transport errors (kIOError).
  /// Governance verdicts (kCancelled / kDeadlineExceeded /
  /// kResourceExhausted) are explicitly non-retryable — the statement was
  /// killed on purpose, and a transparent retry would resurrect it.
  static bool IsRetryable(const Status& status);

 private:

  std::unique_ptr<DbClient> client_;
  Factory factory_;
  RetryPolicy policy_;
  Rng rng_;
  /// ForEndpoints: advances to the next endpoint (shared with the factory,
  /// which connects to the current one). Null for single-endpoint clients.
  std::function<void()> rotate_endpoint_;
  int64_t attempts_ = 0;
  int64_t reconnects_ = 0;
  int64_t failovers_ = 0;
  // Process-wide mirrors of the per-client counters, so metrics dumps see
  // retry/reconnect activity without plumbing through every client owner.
  obs::Counter* attempts_metric_ = nullptr;
  obs::Counter* reconnects_metric_ = nullptr;
};

}  // namespace ldv::net

#endif  // LDV_NET_RETRYING_DB_CLIENT_H_
