#include "net/retrying_db_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace ldv::net {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

RetryingDbClient::RetryingDbClient(std::unique_ptr<DbClient> initial,
                                   Factory factory, RetryPolicy policy)
    : client_(std::move(initial)),
      factory_(std::move(factory)),
      policy_(policy),
      rng_(policy.seed),
      attempts_metric_(
          obs::MetricsRegistry::Global().counter("client.retry_attempts")),
      reconnects_metric_(
          obs::MetricsRegistry::Global().counter("client.reconnects")) {}

std::unique_ptr<RetryingDbClient> RetryingDbClient::ForSocket(
    std::string socket_path, RetryPolicy policy) {
  Factory factory = [socket_path]() -> Result<std::unique_ptr<DbClient>> {
    LDV_ASSIGN_OR_RETURN(std::unique_ptr<SocketDbClient> client,
                         SocketDbClient::Connect(socket_path));
    return std::unique_ptr<DbClient>(std::move(client));
  };
  return std::make_unique<RetryingDbClient>(nullptr, std::move(factory),
                                            policy);
}

std::unique_ptr<RetryingDbClient> RetryingDbClient::ForEndpoints(
    std::vector<std::string> socket_paths, RetryPolicy policy) {
  // The endpoint cursor is shared between the factory (connect to the
  // current endpoint; advance on connect failure so the next attempt tries
  // the next one) and the Execute loop (advance on a read-only rejection).
  struct Cursor {
    std::vector<std::string> paths;
    size_t current = 0;
  };
  auto cursor = std::make_shared<Cursor>();
  cursor->paths = std::move(socket_paths);
  Factory factory = [cursor]() -> Result<std::unique_ptr<DbClient>> {
    if (cursor->paths.empty()) {
      return Status::InvalidArgument("no endpoints configured");
    }
    const std::string& path = cursor->paths[cursor->current];
    auto connected = SocketDbClient::Connect(path);
    if (!connected.ok()) {
      cursor->current = (cursor->current + 1) % cursor->paths.size();
      return connected.status();
    }
    return std::unique_ptr<DbClient>(std::move(*connected));
  };
  auto client = std::make_unique<RetryingDbClient>(nullptr, std::move(factory),
                                                   policy);
  client->rotate_endpoint_ = [cursor] {
    if (!cursor->paths.empty()) {
      cursor->current = (cursor->current + 1) % cursor->paths.size();
    }
  };
  return client;
}

bool RetryingDbClient::IsRetryable(const Status& status) {
  switch (status.code()) {
    // IOError is the transport taxonomy: socket failures, injected faults,
    // decode failures from torn streams, server overload/drain rejections.
    case StatusCode::kIOError:
      return true;
    // The governance verdicts are explicitly NOT retryable: the governor
    // killed the statement on purpose, and a transparent retry would
    // resurrect exactly the work that was just cancelled, re-arm an
    // already-expired deadline, or re-run an over-budget query into the
    // same wall (DESIGN.md §11).
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return false;
    // Every other code is a definitive engine answer.
    default:
      return false;
  }
}

Result<exec::ResultSet> RetryingDbClient::Execute(const DbRequest& request) {
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::microseconds(policy_.request_deadline_micros);
  Status last = Status::IOError("no attempt made");
  int64_t backoff_micros = policy_.initial_backoff_micros;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (client_ == nullptr) {
      if (factory_ == nullptr) {
        return Status::IOError("client lost and no reconnect factory");
      }
      auto fresh = factory_();
      ++reconnects_;
      reconnects_metric_->Add(1);
      if (fresh.ok()) {
        client_ = std::move(*fresh);
      } else {
        last = fresh.status();
      }
    }
    if (client_ != nullptr) {
      ++attempts_;
      attempts_metric_->Add(1);
      Result<exec::ResultSet> result = client_->Execute(request);
      if (result.ok()) return result;
      if (rotate_endpoint_ != nullptr &&
          IsReadOnlyStandbyError(result.status())) {
        // A standby answered: the write belongs on another endpoint. The
        // connection itself is healthy, but the next attempt must go
        // elsewhere — rotate and reconnect.
        ++failovers_;
        rotate_endpoint_();
        last = result.status();
        client_.reset();
      } else if (!IsRetryable(result.status())) {
        return result;
      } else {
        last = result.status();
        // A transport error leaves the connection in an unknown framing
        // state; drop it and reconnect on the next attempt.
        client_.reset();
      }
    }
    // Capped exponential backoff with jitter before the next attempt.
    double jitter_factor =
        1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    auto sleep_micros = static_cast<int64_t>(
        static_cast<double>(backoff_micros) * jitter_factor);
    sleep_micros = std::max<int64_t>(sleep_micros, 0);
    if (Clock::now() + std::chrono::microseconds(sleep_micros) >= deadline) {
      break;  // the deadline would expire before the next attempt
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
    backoff_micros = std::min<int64_t>(
        static_cast<int64_t>(static_cast<double>(backoff_micros) *
                             policy_.backoff_multiplier),
        policy_.max_backoff_micros);
  }
  return last.WithContext("request failed after retries");
}

}  // namespace ldv::net
