#include "net/db_server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "exec/governor.h"
#include "exec/plan_cache.h"
#include "obs/span.h"

namespace ldv::net {

DbServer::DbServer(EngineHandle* engine, std::string socket_path,
                   DbServerOptions options)
    : engine_(engine),
      socket_path_(std::move(socket_path)),
      options_(options),
      request_latency_(obs::MetricsRegistry::Global().latency_histogram(
          "server.request_latency_micros")),
      requests_total_(
          obs::MetricsRegistry::Global().counter("server.requests")) {}

DbServer::~DbServer() { Stop(); }

Status DbServer::Start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind " + socket_path_ + ": " + strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  draining_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  disconnect_watch_thread_ = std::thread([this] { DisconnectWatchLoop(); });
  return Status::Ok();
}

void DbServer::Stop() {
  bool was_running = running_.exchange(false);
  // Graceful drain: reject requests that arrive from here on; requests
  // already executing finish and their responses are still delivered.
  draining_.store(true);
  if (int fd = listen_fd_.exchange(-1); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (was_running && accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    exec_cv_.notify_all();
  }
  if (was_running && disconnect_watch_thread_.joinable()) {
    disconnect_watch_thread_.join();
  }
  {
    // Wake connection threads blocked in recv; the write side stays open so
    // an in-flight response can still be sent.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : connections_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RD);
    }
  }
  std::map<int64_t, Connection> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
    finished_.clear();
  }
  for (auto& [id, conn] : conns) {
    if (conn.thread.joinable()) conn.thread.join();
    if (conn.fd >= 0) ::close(conn.fd);
  }
  ::unlink(socket_path_.c_str());
}

int64_t DbServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return static_cast<int64_t>(connections_.size());
}

void DbServer::ApplyIoTimeouts(int fd) {
  if (options_.io_timeout_micros <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(options_.io_timeout_micros / 1'000'000);
  tv.tv_usec =
      static_cast<suseconds_t>(options_.io_timeout_micros % 1'000'000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void DbServer::ReapFinished() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      to_join.push_back(std::move(it->second.thread));
      connections_.erase(it);
    }
    finished_.clear();
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
}

void DbServer::AcceptLoop() {
  while (running_.load()) {
    ReapFinished();  // joins threads of connections that already hung up
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    ApplyIoTimeouts(fd);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (options_.max_connections > 0 &&
        static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Clean refusal: the client gets a decodable protocol error instead
      // of a hang or a silent close, and can back off and retry.
      ++rejected_connections_;
      (void)SendFrame(
          fd, EncodeResponse(
                  Status::IOError("server overloaded: too many connections"),
                  {}));
      ::close(fd);
      continue;
    }
    int64_t id = ++next_connection_id_;
    ++total_connections_;
    Connection& conn = connections_[id];
    conn.fd = fd;
    conn.thread = std::thread([this, id, fd] { ServeConnection(id, fd); });
  }
}

void DbServer::DisconnectWatchLoop() {
  const auto poll_interval =
      std::chrono::milliseconds(options_.disconnect_poll_millis > 0
                                    ? options_.disconnect_poll_millis
                                    : 20);
  std::unique_lock<std::mutex> lock(exec_mu_);
  while (running_.load()) {
    if (executing_.empty()) {
      // Nothing in flight: sleep until a statement starts (or Stop()),
      // instead of waking every poll interval on an idle server.
      exec_cv_.wait(lock,
                    [&] { return !running_.load() || !executing_.empty(); });
      continue;
    }
    exec_cv_.wait_for(lock, poll_interval);
    std::vector<std::pair<int64_t, int>> watch(executing_.begin(),
                                               executing_.end());
    lock.unlock();
    for (const auto& [session, fd] : watch) {
      pollfd p{};
      p.fd = fd;
#ifdef POLLRDHUP
      // Half-close (client shutdown of its write side) counts as gone too.
      p.events = POLLRDHUP;
#endif
      // POLLHUP/POLLERR are always reported regardless of `events`.
      if (::poll(&p, 1, 0) <= 0) continue;
      if ((p.revents & (POLLHUP | POLLERR
#ifdef POLLRDHUP
                        | POLLRDHUP
#endif
                        )) == 0) {
        continue;
      }
      const int64_t n = exec::QueryRegistry::Global().CancelSession(
          session, StatusCode::kCancelled, "client disconnected");
      if (n > 0) disconnect_cancels_.fetch_add(n);
    }
    lock.lock();
  }
}

void DbServer::PurgeExpiredDedupLocked(int64_t now_nanos) {
  if (options_.dedup_ttl_millis <= 0) return;
  const int64_t ttl_nanos = options_.dedup_ttl_millis * 1'000'000;
  // The LRU list is ordered by last touch, so expired entries form a prefix.
  while (!dedup_lru_.empty()) {
    auto it = dedup_.find(dedup_lru_.front());
    if (it != dedup_.end() && now_nanos - it->second.touched_nanos < ttl_nanos) {
      break;
    }
    if (it != dedup_.end()) dedup_.erase(it);
    dedup_lru_.pop_front();
  }
}

int64_t DbServer::dedup_entries() const {
  std::lock_guard<std::mutex> lock(dedup_mu_);
  return static_cast<int64_t>(dedup_lru_.size());
}

std::string DbServer::ExecuteDeduped(const DbRequest& request,
                                     int64_t session_id) {
  const bool use_dedup =
      options_.dedup_capacity > 0 &&
      (request.process_id != 0 || request.query_id != 0);
  // The dedup key must distinguish an EXECUTE from a plain query with the
  // same (pid, qid), and one parameter binding from another: fold the verb,
  // the handle, and the encoded parameter values into the sql slot.
  std::string dedup_sql = request.sql;
  if (request.kind != RequestKind::kQuery) {
    dedup_sql.push_back('\x1f');
    dedup_sql.push_back(static_cast<char>(request.kind));
    dedup_sql.append(request.handle);
    BufferWriter w;
    for (const storage::Value& v : request.params) v.Serialize(&w);
    dedup_sql.append(w.TakeData());
  }
  const DedupKey key{request.process_id, request.query_id,
                     std::move(dedup_sql)};
  if (use_dedup) {
    std::unique_lock<std::mutex> lock(dedup_mu_);
    PurgeExpiredDedupLocked(NowNanos());
    auto it = dedup_.find(key);
    if (it != dedup_.end()) {
      // A duplicate of a request that executed (or is executing) on another
      // connection — the client retried after losing the response. Wait for
      // the recorded response instead of executing twice.
      dedup_cv_.wait(lock, [&] {
        auto i = dedup_.find(key);
        return i == dedup_.end() || i->second.done;
      });
      auto done = dedup_.find(key);
      if (done != dedup_.end()) {
        ++deduped_requests_;
        // Replaying refreshes the entry: retries keep it alive past the
        // idle TTL and out of the capacity eviction's way.
        done->second.touched_nanos = NowNanos();
        dedup_lru_.splice(dedup_lru_.end(), dedup_lru_, done->second.lru_it);
        return done->second.response;
      }
      // Evicted while waiting: execute afresh below.
    }
    dedup_.emplace(key, DedupEntry{});  // in-progress marker
  }

  Result<exec::ResultSet> result = engine_->ExecuteSession(request, session_id);
  std::string response = result.ok()
                             ? EncodeResponse(Status::Ok(), *result)
                             : EncodeResponse(result.status(), {});

  if (use_dedup) {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    auto it = dedup_.find(key);
    if (it != dedup_.end()) {
      if (!result.ok() && exec::IsGovernanceStatus(result.status().code())) {
        // A governance kill must never poison the cache: a client resending
        // the same (pid, qid, sql) after a cancel/timeout means "run it
        // again", not "replay the kill". Drop the in-progress marker so the
        // retry executes afresh.
        dedup_.erase(it);
      } else {
        it->second.done = true;
        it->second.response = response;
        it->second.touched_nanos = NowNanos();
        it->second.lru_it = dedup_lru_.insert(dedup_lru_.end(), key);
        PurgeExpiredDedupLocked(it->second.touched_nanos);
        while (dedup_lru_.size() > options_.dedup_capacity) {
          dedup_.erase(dedup_lru_.front());
          dedup_lru_.pop_front();
        }
      }
    }
    dedup_cv_.notify_all();
  }
  return response;
}

std::string DbServer::HandleControl(const DbRequest& request) {
  exec::ResultSet rs;
  switch (request.kind) {
    case RequestKind::kStats: {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      // Connection counters live in cheap atomics; mirror them into the
      // registry only when a snapshot is requested.
      reg.gauge("server.active_connections")->Set(active_connections());
      reg.gauge("server.total_connections")->Set(total_connections());
      reg.gauge("server.rejected_connections")->Set(rejected_connections());
      reg.gauge("server.deduped_requests")->Set(deduped_requests());
      reg.gauge("server.dedup_entries")->Set(dedup_entries());
      reg.gauge("server.disconnect_cancels")->Set(disconnect_cancels());
      reg.gauge("plan_cache.entries")
          ->Set(static_cast<int64_t>(exec::PlanCache::Global().entries()));
      exec::QueryRegistry& registry = exec::QueryRegistry::Global();
      reg.gauge("exec.inflight")->Set(registry.inflight());
      obs::CaptureFaultInjectorMetrics(&reg);
      Json stats = reg.Snapshot().ToJson();
      // The in-flight listing rides along in the same stats_json document:
      // who is running what, and for how long (the CANCEL verb's targets).
      Json inflight = Json::MakeArray();
      const int64_t now = NowNanos();
      for (const exec::InflightQuery& q : registry.Snapshot()) {
        Json item = Json::MakeObject();
        item.Set("process_id", Json::MakeInt(q.process_id));
        item.Set("query_id", Json::MakeInt(q.query_id));
        item.Set("session_id", Json::MakeInt(q.session_id));
        item.Set("elapsed_micros", Json::MakeInt((now - q.start_nanos) / 1000));
        item.Set("sql", Json::MakeString(q.sql.size() <= 120
                                             ? q.sql
                                             : q.sql.substr(0, 117) + "..."));
        inflight.Append(std::move(item));
      }
      stats.Set("inflight_queries", std::move(inflight));
      if (stats_augmenter_) stats_augmenter_(&stats);
      rs.schema = storage::Schema(
          {storage::Column{"stats_json", storage::ValueType::kString}});
      rs.rows.push_back({storage::Value::Str(stats.Dump())});
      rs.affected = 1;
      break;
    }
    case RequestKind::kTraceStart:
      obs::TraceRecorder::Clear();
      obs::TraceRecorder::Enable();
      break;
    case RequestKind::kTraceDump:
      rs.schema = storage::Schema(
          {storage::Column{"trace_json", storage::ValueType::kString}});
      rs.rows.push_back({storage::Value::Str(
          obs::TraceRecorder::ExportChromeTrace().Dump())});
      rs.affected = 1;
      // Stop recording but keep the buffer: a dump whose response frame is
      // lost gets retried, and the retry must see the same events. The next
      // kTraceStart clears.
      obs::TraceRecorder::Disable();
      break;
    case RequestKind::kCancel: {
      const int64_t n = exec::QueryRegistry::Global().CancelQuery(
          request.process_id, request.query_id, StatusCode::kCancelled,
          "cancelled by CANCEL request");
      rs.schema = storage::Schema(
          {storage::Column{"cancelled", storage::ValueType::kInt64}});
      rs.rows.push_back({storage::Value::Int(n)});
      rs.affected = n;
      break;
    }
    case RequestKind::kReplSubscribe:
    case RequestKind::kReplFrames:
    case RequestKind::kReplHeartbeat:
    case RequestKind::kPromote: {
      if (!repl_handler_) {
        return EncodeResponse(
            Status::NotSupported("replication is not configured on this "
                                 "server"),
            {});
      }
      Result<exec::ResultSet> result = repl_handler_(request);
      if (!result.ok()) return EncodeResponse(result.status(), {});
      rs = std::move(*result);
      break;
    }
    case RequestKind::kQuery:
    case RequestKind::kPrepare:
    case RequestKind::kExecute:
    case RequestKind::kDeallocate:
      break;  // statement kinds, dispatched to ExecuteDeduped, never here
  }
  return EncodeResponse(Status::Ok(), rs);
}

namespace {

/// Request kinds that run a statement on the engine (and therefore go
/// through dedup, latency accounting, and the disconnect watcher) as
/// opposed to server-side control verbs.
bool IsStatementKind(RequestKind kind) {
  switch (kind) {
    case RequestKind::kQuery:
    case RequestKind::kPrepare:
    case RequestKind::kExecute:
    case RequestKind::kDeallocate:
      return true;
    default:
      return false;
  }
}

}  // namespace

void DbServer::ServeConnection(int64_t id, int fd) {
  while (true) {
    Result<std::string> frame = RecvFrame(fd);
    if (!frame.ok()) {
      if (IsOversizedFrameError(frame.status())) {
        // A forged/corrupt length prefix: answer with a protocol error so
        // the client sees a reason, then drop the connection (the stream
        // cannot be resynchronized past an unread payload).
        (void)SendFrame(fd, EncodeResponse(frame.status(), {}));
      }
      break;  // client disconnected, timed out, or sent garbage framing
    }
    std::string response;
    if (draining_.load()) {
      response = EncodeResponse(
          Status::IOError("server draining: request rejected"), {});
      (void)SendFrame(fd, response);
      break;
    }
    Result<DbRequest> request = DecodeRequest(*frame);
    if (!request.ok()) {
      response = EncodeResponse(request.status(), {});
    } else if (!IsStatementKind(request->kind)) {
      response = HandleControl(*request);
    } else {
      requests_total_->Add(1);
      const int64_t start = NowNanos();
      {
        // Expose this session to the disconnect watcher for the duration of
        // the statement: a client that hangs up mid-query gets its work
        // cancelled instead of burning worker slots to completion.
        std::lock_guard<std::mutex> lock(exec_mu_);
        executing_[id] = fd;
        exec_cv_.notify_all();  // wake the watcher from its idle sleep
      }
      response = ExecuteDeduped(*request, id);
      {
        std::lock_guard<std::mutex> lock(exec_mu_);
        executing_.erase(id);
      }
      request_latency_->Observe((NowNanos() - start) / 1000);
    }
    if (!SendFrame(fd, response).ok()) break;
  }
  // A connection that drops mid-transaction must not leave the engine
  // locked for everyone else: roll its transaction back.
  engine_->AbortSession(id);
  std::lock_guard<std::mutex> lock(conn_mu_);
  auto it = connections_.find(id);
  if (it != connections_.end() && it->second.fd >= 0) {
    ::close(it->second.fd);
    it->second.fd = -1;
  }
  // Stop() may have taken ownership of the map; a stale id in finished_ is
  // ignored by ReapFinished.
  finished_.push_back(id);
}

}  // namespace ldv::net
