#include "net/db_server.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"

namespace ldv::net {

DbServer::DbServer(EngineHandle* engine, std::string socket_path)
    : engine_(engine), socket_path_(std::move(socket_path)) {}

DbServer::~DbServer() { Stop(); }

Status DbServer::Start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  strcpy(addr.sun_path, socket_path_.c_str());
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind " + socket_path_ + ": " + strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void DbServer::Stop() {
  bool was_running = running_.exchange(false);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (was_running && accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(socket_path_.c_str());
}

void DbServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void DbServer::ServeConnection(int fd) {
  while (true) {
    Result<std::string> frame = RecvFrame(fd);
    if (!frame.ok()) break;  // client disconnected
    Result<DbRequest> request = DecodeRequest(*frame);
    std::string response;
    if (!request.ok()) {
      response = EncodeResponse(request.status(), {});
    } else {
      Result<exec::ResultSet> result = engine_->Execute(*request);
      response = result.ok() ? EncodeResponse(Status::Ok(), *result)
                             : EncodeResponse(result.status(), {});
    }
    if (!SendFrame(fd, response).ok()) break;
  }
  ::close(fd);
}

}  // namespace ldv::net
