#ifndef LDV_TPCH_GENERATOR_H_
#define LDV_TPCH_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/database.h"

namespace ldv::tpch {

/// Deterministic TPC-H data generator (dbgen analog) for the three tables
/// the paper's evaluation touches: customer, orders, lineitem (§IX-A).
///
/// Two domains are intentionally scale-invariant so the Table II
/// selectivities hold at any scale factor (DESIGN.md substitution #4):
///  - l_suppkey is uniform on [1, 1000]: `BETWEEN 1 AND p` selects p/1000.
///  - c_name embeds a 9-digit key mapped uniformly onto [1, 150000], so
///    `LIKE '%0..0%'` with 4..7 zeros keeps the paper's 66/6.6/0.66/0.06%.
struct GenOptions {
  /// TPC-H scale factor; 1.0 = 150k customers, 1.5M orders, ~6M lineitems.
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// Row counts implied by a scale factor.
struct TpchSizes {
  int64_t customers = 0;
  int64_t orders = 0;
  /// Expected value; actual lineitem count is per-order random in [1, 7].
  int64_t lineitems_expected = 0;
};

TpchSizes SizesFor(double scale_factor);

/// Creates empty customer/orders/lineitem tables (full TPC-H columns).
Status CreateTpchSchema(storage::Database* db);

/// Creates the schema and fills it with deterministic data.
Status Generate(storage::Database* db, const GenOptions& options);

/// Writes the generated tables as CSV files (`customer.csv`, ...) under
/// `dir` — the bulk-load path exercising COPY (§II assumes applications use
/// "standard bulk copy and DB dump utilities").
Status GenerateCsv(const std::string& dir, const GenOptions& options);

/// Number of distinct suppliers (the l_suppkey domain).
inline constexpr int64_t kSupplierDomain = 1000;
/// Domain of the 9-digit key embedded in c_name.
inline constexpr int64_t kNameKeyDomain = 150000;

}  // namespace ldv::tpch

#endif  // LDV_TPCH_GENERATOR_H_
