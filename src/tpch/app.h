#ifndef LDV_TPCH_APP_H_
#define LDV_TPCH_APP_H_

#include <cstdint>
#include <string>

#include "ldv/app.h"

namespace ldv::tpch {

/// Parameters of the paper's experiment application (§IX-A):
///   Insert: 1000 new rows into orders,
///   Select: 10 executions of one Table II query,
///   Update: 100 single-row updates of orders.
struct AppOptions {
  std::string query_sql;
  int num_inserts = 1000;
  int num_selects = 10;
  int num_updates = 100;
  /// New orderkeys start above this value (use the generated max orderkey).
  int64_t insert_orderkey_base = 0;
  /// Updated orderkeys are drawn from [1, update_orderkey_max].
  int64_t update_orderkey_max = 0;
  int64_t customer_max = 1;
  /// Seed for the statement parameters; audit and replay must use the same
  /// seed so the request streams match.
  uint64_t seed = 7;
  /// Write a result digest to /output/results.txt in the sandbox (adds the
  /// OS-side provenance the combined trace links to).
  bool write_result_file = true;
};

/// Per-step wall-clock timings, matching the bars of Fig. 7a/7b.
struct StepTimings {
  double inserts_seconds = 0;
  double first_select_seconds = 0;
  double other_selects_seconds = 0;  // total over the remaining 9
  double updates_seconds = 0;
  /// Fingerprint over all select results — identical across audit and
  /// replay iff re-execution is faithful.
  uint64_t result_fingerprint = 0;
  int64_t rows_returned = 0;
};

/// Builds the experiment application. `timings`, when non-null, receives the
/// per-step measurements of each run (audit or replay).
AppFn MakeExperimentApp(const AppOptions& options, StepTimings* timings);

}  // namespace ldv::tpch

#endif  // LDV_TPCH_APP_H_
