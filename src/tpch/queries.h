#ifndef LDV_TPCH_QUERIES_H_
#define LDV_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ldv::tpch {

/// One of the 18 experiment queries of Table II.
struct QuerySpec {
  std::string id;      // "Q1-1" ... "Q4-5"
  int family = 1;      // 1..4
  int variant = 1;     // 1-based index into the family's PARAM list
  std::string param;   // the PARAM substitution
  std::string sql;
  /// The paper's Sel. column, as a fraction (e.g. 0.01 for 1%). For Q2/Q3
  /// the variants are ordered most-selective first, matching the PARAM
  /// order printed in Table II.
  double selectivity = 0;
};

/// All 18 queries Q1-1..Q1-5, Q2-1..Q2-4, Q3-1..Q3-4, Q4-1..Q4-5 (Table II).
const std::vector<QuerySpec>& ExperimentQueries();

/// Lookup by id ("Q2-3"); NotFound if unknown.
Result<QuerySpec> FindQuery(const std::string& id);

}  // namespace ldv::tpch

#endif  // LDV_TPCH_QUERIES_H_
