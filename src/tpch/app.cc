#include "tpch/app.h"

#include "common/clock.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ldv::tpch {

namespace {

std::string InsertOrderSql(int64_t orderkey, int64_t custkey, int64_t price,
                           int index) {
  return StrFormat(
      "INSERT INTO orders VALUES (%lld, %lld, 'O', %lld.00, '1998-09-01', "
      "'3-MEDIUM', 'Clerk#%09d', 0, 'ldv refresh order %d')",
      static_cast<long long>(orderkey), static_cast<long long>(custkey),
      static_cast<long long>(price), index % 1000 + 1, index);
}

std::string UpdateOrderSql(int64_t orderkey, int index) {
  return StrFormat(
      "UPDATE orders SET o_comment = 'ldv refresh update %d' "
      "WHERE o_orderkey = %lld",
      index, static_cast<long long>(orderkey));
}

}  // namespace

AppFn MakeExperimentApp(const AppOptions& options, StepTimings* timings) {
  return [options, timings](AppEnv& env) -> Status {
    os::ProcessContext& proc = env.root_process();
    LDV_ASSIGN_OR_RETURN(net::DbClient * db, env.OpenDbConnection(proc));
    Rng rng(options.seed);
    StepTimings local;

    // --- Step 1: Insert (TPC-H refresh-style new orders). ---
    WallTimer timer;
    for (int i = 0; i < options.num_inserts; ++i) {
      int64_t orderkey = options.insert_orderkey_base + i + 1;
      int64_t custkey = rng.Uniform(1, options.customer_max);
      int64_t price = rng.Uniform(1000, 400000);
      LDV_RETURN_IF_ERROR(
          db->Query(InsertOrderSql(orderkey, custkey, price, i)).status());
    }
    local.inserts_seconds = timer.Seconds();

    // --- Step 2: Select (10 executions of the experiment query). ---
    uint64_t fingerprint = 1469598103934665603ULL;
    for (int i = 0; i < options.num_selects; ++i) {
      timer.Restart();
      LDV_ASSIGN_OR_RETURN(exec::ResultSet result,
                           db->Query(options.query_sql));
      double elapsed = timer.Seconds();
      if (i == 0) {
        local.first_select_seconds = elapsed;
      } else {
        local.other_selects_seconds += elapsed;
      }
      fingerprint ^= result.Fingerprint() + 0x9E3779B97F4A7C15ULL +
                     (fingerprint << 6) + (fingerprint >> 2);
      local.rows_returned += static_cast<int64_t>(result.rows.size());
    }
    local.result_fingerprint = fingerprint;

    // --- Step 3: Update (100 single-row order updates). ---
    timer.Restart();
    for (int i = 0; i < options.num_updates; ++i) {
      int64_t orderkey = rng.Uniform(1, options.update_orderkey_max);
      LDV_RETURN_IF_ERROR(db->Query(UpdateOrderSql(orderkey, i)).status());
    }
    local.updates_seconds = timer.Seconds();

    if (options.write_result_file) {
      std::string digest = StrFormat(
          "query_fingerprint=%llu\nrows_returned=%lld\n",
          static_cast<unsigned long long>(fingerprint),
          static_cast<long long>(local.rows_returned));
      LDV_RETURN_IF_ERROR(proc.WriteFile("/output/results.txt", digest));
    }
    if (timings != nullptr) *timings = local;
    return Status::Ok();
  };
}

}  // namespace ldv::tpch
