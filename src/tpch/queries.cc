#include "tpch/queries.h"

#include "util/strings.h"

namespace ldv::tpch {
namespace {

std::string Q1Sql(int param) {
  return StrFormat(
      "SELECT l_quantity, l_partkey, l_extendedprice, l_shipdate, "
      "l_receiptdate FROM lineitem WHERE l_suppkey BETWEEN 1 AND %d",
      param);
}

std::string Q2Sql(const std::string& param) {
  return "SELECT o_comment, l_comment FROM lineitem l, orders o, customer c "
         "WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey "
         "AND c.c_name LIKE '%" +
         param + "%'";
}

std::string Q3Sql(const std::string& param) {
  return "SELECT count(*) FROM lineitem l, orders o, customer c "
         "WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey "
         "AND c.c_name LIKE '%" +
         param + "%'";
}

std::string Q4Sql(int param) {
  return StrFormat(
      "SELECT o_orderkey, AVG(l_quantity) AS avgQ FROM lineitem l, orders o "
      "WHERE l.l_orderkey = o.o_orderkey AND l_suppkey BETWEEN 1 AND %d "
      "GROUP BY o_orderkey",
      param);
}

std::vector<QuerySpec> BuildQueries() {
  std::vector<QuerySpec> out;
  const int between_params[] = {10, 20, 50, 100, 250};
  const double between_sel[] = {0.01, 0.02, 0.05, 0.10, 0.25};
  const char* like_params[] = {"0000000", "000000", "00000", "0000"};
  const double like_sel[] = {0.0006, 0.0066, 0.066, 0.66};

  for (int i = 0; i < 5; ++i) {
    QuerySpec q;
    q.family = 1;
    q.variant = i + 1;
    q.id = StrFormat("Q1-%d", i + 1);
    q.param = std::to_string(between_params[i]);
    q.sql = Q1Sql(between_params[i]);
    q.selectivity = between_sel[i];
    out.push_back(std::move(q));
  }
  for (int i = 0; i < 4; ++i) {
    QuerySpec q;
    q.family = 2;
    q.variant = i + 1;
    q.id = StrFormat("Q2-%d", i + 1);
    q.param = like_params[i];
    q.sql = Q2Sql(like_params[i]);
    q.selectivity = like_sel[i];
    out.push_back(std::move(q));
  }
  for (int i = 0; i < 4; ++i) {
    QuerySpec q;
    q.family = 3;
    q.variant = i + 1;
    q.id = StrFormat("Q3-%d", i + 1);
    q.param = like_params[i];
    q.sql = Q3Sql(like_params[i]);
    q.selectivity = like_sel[i];
    out.push_back(std::move(q));
  }
  for (int i = 0; i < 5; ++i) {
    QuerySpec q;
    q.family = 4;
    q.variant = i + 1;
    q.id = StrFormat("Q4-%d", i + 1);
    q.param = std::to_string(between_params[i]);
    q.sql = Q4Sql(between_params[i]);
    q.selectivity = between_sel[i];
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace

const std::vector<QuerySpec>& ExperimentQueries() {
  static const std::vector<QuerySpec>& queries =
      *new std::vector<QuerySpec>(BuildQueries());
  return queries;
}

Result<QuerySpec> FindQuery(const std::string& id) {
  for (const QuerySpec& q : ExperimentQueries()) {
    if (q.id == id) return q;
  }
  return Status::NotFound("unknown experiment query: " + id);
}

}  // namespace ldv::tpch
