#include "tpch/generator.h"

#include <cmath>

#include "util/csv.h"
#include "util/fsutil.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ldv::tpch {

using storage::Column;
using storage::Database;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

namespace {

constexpr const char* kWords[] = {
    "carefully", "furiously", "quickly",  "blithely", "slyly",    "deposits",
    "packages",  "requests",  "accounts", "pinto",    "beans",    "foxes",
    "ideas",     "theodolites", "platelets", "instructions", "regular",
    "express",   "special",   "final",    "bold",     "unusual",  "even",
    "silent",    "pending",   "ironic",   "dogged",   "sleep",    "haggle",
    "nag",       "wake",      "cajole",   "integrate", "boost",   "detect"};
constexpr int kNumWords = static_cast<int>(sizeof(kWords) / sizeof(kWords[0]));

constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                      "TRUCK",   "MAIL", "FOB"};
constexpr const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                          "NONE", "TAKE BACK RETURN"};

std::string Comment(Rng* rng, int min_words, int max_words) {
  int n = static_cast<int>(rng->Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    out += kWords[rng->Uniform(0, kNumWords - 1)];
  }
  return out;
}

std::string RandomDate(Rng* rng) {
  // TPC-H date range [1992-01-01, 1998-08-02]; day-in-month capped at 28 to
  // avoid calendar logic (uniformity is what matters for range predicates).
  int year = static_cast<int>(rng->Uniform(1992, 1998));
  int month = static_cast<int>(rng->Uniform(1, 12));
  int day = static_cast<int>(rng->Uniform(1, 28));
  return StrFormat("%04d-%02d-%02d", year, month, day);
}

std::string Phone(Rng* rng) {
  return StrFormat("%02d-%03d-%03d-%04d",
                   static_cast<int>(rng->Uniform(10, 34)),
                   static_cast<int>(rng->Uniform(100, 999)),
                   static_cast<int>(rng->Uniform(100, 999)),
                   static_cast<int>(rng->Uniform(1000, 9999)));
}

/// The 9-digit key embedded in c_name: custkey mapped uniformly onto
/// [1, kNameKeyDomain] with a per-key random offset so the padded digits
/// carry no trailing-zero artifacts.
int64_t NameKey(int64_t custkey, int64_t num_customers, Rng* rng) {
  double stride =
      static_cast<double>(kNameKeyDomain) / static_cast<double>(num_customers);
  int64_t lo = static_cast<int64_t>(
      std::floor(static_cast<double>(custkey - 1) * stride));
  int64_t hi = static_cast<int64_t>(
      std::floor(static_cast<double>(custkey) * stride)) - 1;
  if (hi < lo) hi = lo;
  return 1 + rng->Uniform(lo, hi);
}

Status GenerateInto(const GenOptions& options, Database* db,
                    const std::string& csv_dir) {
  TpchSizes sizes = SizesFor(options.scale_factor);
  Rng rng(options.seed);

  CsvWriter customer_csv;
  CsvWriter orders_csv;
  CsvWriter lineitem_csv;
  const bool to_csv = !csv_dir.empty();

  Table* customer = nullptr;
  Table* orders = nullptr;
  Table* lineitem = nullptr;
  int64_t seq = 0;
  if (!to_csv) {
    customer = db->FindTable("customer");
    orders = db->FindTable("orders");
    lineitem = db->FindTable("lineitem");
    if (customer == nullptr || orders == nullptr || lineitem == nullptr) {
      return Status::Internal("TPC-H schema missing");
    }
    seq = db->NextStatementSeq();
  }

  auto emit = [&](Table* table, CsvWriter* csv,
                  storage::Tuple row) -> Status {
    if (to_csv) {
      std::vector<std::string> fields;
      fields.reserve(row.size());
      for (const Value& v : row) fields.push_back(v.ToText());
      csv->AppendRow(fields);
      return Status::Ok();
    }
    return table->Insert(std::move(row), seq).status();
  };

  // --- customer ---
  for (int64_t ck = 1; ck <= sizes.customers; ++ck) {
    storage::Tuple row;
    row.push_back(Value::Int(ck));
    row.push_back(Value::Str(
        "Customer#" + ZeroPad(NameKey(ck, sizes.customers, &rng), 9)));
    row.push_back(Value::Str(Comment(&rng, 2, 4)));
    row.push_back(Value::Int(rng.Uniform(0, 24)));  // c_nationkey
    row.push_back(Value::Str(Phone(&rng)));
    row.push_back(Value::Real(
        std::round(rng.NextDouble() * 999999.0 - 99999.0) / 100.0));
    row.push_back(Value::Str(kSegments[rng.Uniform(0, 4)]));
    row.push_back(Value::Str(Comment(&rng, 4, 8)));
    LDV_RETURN_IF_ERROR(emit(customer, &customer_csv, std::move(row)));
  }

  // --- orders + lineitem ---
  for (int64_t ok = 1; ok <= sizes.orders; ++ok) {
    storage::Tuple order;
    order.push_back(Value::Int(ok));
    order.push_back(Value::Int(rng.Uniform(1, sizes.customers)));
    order.push_back(Value::Str(rng.Bernoulli(0.5) ? "O" : "F"));
    double total = 0;
    std::string order_date = RandomDate(&rng);
    int num_lines = static_cast<int>(rng.Uniform(1, 7));
    // Lineitems are generated first to compute o_totalprice, buffered, and
    // emitted after their order row (dbgen emits per-table files; ordering
    // within our row stream is irrelevant).
    std::vector<storage::Tuple> lines;
    for (int ln = 1; ln <= num_lines; ++ln) {
      storage::Tuple item;
      double quantity = static_cast<double>(rng.Uniform(1, 50));
      double price = quantity * (90000.0 + static_cast<double>(
                                               rng.Uniform(1, 100000))) /
                     100.0;
      total += price;
      item.push_back(Value::Int(ok));                          // l_orderkey
      item.push_back(Value::Int(rng.Uniform(1, 200000)));      // l_partkey
      item.push_back(Value::Int(rng.Uniform(1, kSupplierDomain)));
      item.push_back(Value::Int(ln));                          // l_linenumber
      item.push_back(Value::Real(quantity));
      item.push_back(Value::Real(std::round(price * 100.0) / 100.0));
      item.push_back(Value::Real(
          static_cast<double>(rng.Uniform(0, 10)) / 100.0));   // l_discount
      item.push_back(Value::Real(
          static_cast<double>(rng.Uniform(0, 8)) / 100.0));    // l_tax
      item.push_back(Value::Str(rng.Bernoulli(0.25) ? "R" : "N"));
      item.push_back(Value::Str(rng.Bernoulli(0.5) ? "O" : "F"));
      item.push_back(Value::Str(RandomDate(&rng)));  // l_shipdate
      item.push_back(Value::Str(RandomDate(&rng)));  // l_commitdate
      item.push_back(Value::Str(RandomDate(&rng)));  // l_receiptdate
      item.push_back(Value::Str(kShipInstructs[rng.Uniform(0, 3)]));
      item.push_back(Value::Str(kShipModes[rng.Uniform(0, 6)]));
      item.push_back(Value::Str(Comment(&rng, 2, 5)));
      lines.push_back(std::move(item));
    }
    order.push_back(Value::Real(std::round(total * 100.0) / 100.0));
    order.push_back(Value::Str(order_date));
    order.push_back(Value::Str(kPriorities[rng.Uniform(0, 4)]));
    order.push_back(Value::Str(
        "Clerk#" + ZeroPad(rng.Uniform(1, 1000), 9)));
    order.push_back(Value::Int(0));  // o_shippriority
    order.push_back(Value::Str(Comment(&rng, 4, 10)));
    LDV_RETURN_IF_ERROR(emit(orders, &orders_csv, std::move(order)));
    for (storage::Tuple& item : lines) {
      LDV_RETURN_IF_ERROR(emit(lineitem, &lineitem_csv, std::move(item)));
    }
  }

  if (to_csv) {
    LDV_RETURN_IF_ERROR(WriteStringToFile(JoinPath(csv_dir, "customer.csv"),
                                          customer_csv.data()));
    LDV_RETURN_IF_ERROR(WriteStringToFile(JoinPath(csv_dir, "orders.csv"),
                                          orders_csv.data()));
    LDV_RETURN_IF_ERROR(WriteStringToFile(JoinPath(csv_dir, "lineitem.csv"),
                                          lineitem_csv.data()));
  }
  return Status::Ok();
}

}  // namespace

TpchSizes SizesFor(double scale_factor) {
  TpchSizes sizes;
  sizes.customers =
      std::max<int64_t>(1, static_cast<int64_t>(150000 * scale_factor));
  sizes.orders = sizes.customers * 10;
  sizes.lineitems_expected = sizes.orders * 4;
  return sizes;
}

Status CreateTpchSchema(storage::Database* db) {
  auto str = ValueType::kString;
  auto i64 = ValueType::kInt64;
  auto dbl = ValueType::kDouble;
  LDV_RETURN_IF_ERROR(
      db->CreateTable("customer", Schema({{"c_custkey", i64},
                                          {"c_name", str},
                                          {"c_address", str},
                                          {"c_nationkey", i64},
                                          {"c_phone", str},
                                          {"c_acctbal", dbl},
                                          {"c_mktsegment", str},
                                          {"c_comment", str}}))
          .status());
  LDV_RETURN_IF_ERROR(
      db->CreateTable("orders", Schema({{"o_orderkey", i64},
                                        {"o_custkey", i64},
                                        {"o_orderstatus", str},
                                        {"o_totalprice", dbl},
                                        {"o_orderdate", str},
                                        {"o_orderpriority", str},
                                        {"o_clerk", str},
                                        {"o_shippriority", i64},
                                        {"o_comment", str}}))
          .status());
  LDV_RETURN_IF_ERROR(
      db->CreateTable("lineitem", Schema({{"l_orderkey", i64},
                                          {"l_partkey", i64},
                                          {"l_suppkey", i64},
                                          {"l_linenumber", i64},
                                          {"l_quantity", dbl},
                                          {"l_extendedprice", dbl},
                                          {"l_discount", dbl},
                                          {"l_tax", dbl},
                                          {"l_returnflag", str},
                                          {"l_linestatus", str},
                                          {"l_shipdate", str},
                                          {"l_commitdate", str},
                                          {"l_receiptdate", str},
                                          {"l_shipinstruct", str},
                                          {"l_shipmode", str},
                                          {"l_comment", str}}))
          .status());
  return Status::Ok();
}

Status Generate(storage::Database* db, const GenOptions& options) {
  LDV_RETURN_IF_ERROR(CreateTpchSchema(db));
  return GenerateInto(options, db, "");
}

Status GenerateCsv(const std::string& dir, const GenOptions& options) {
  LDV_RETURN_IF_ERROR(MakeDirs(dir));
  return GenerateInto(options, nullptr, dir);
}

}  // namespace ldv::tpch
