#include "trace/model.h"

namespace ldv::trace {

bool IsActivity(NodeType type) {
  switch (type) {
    case NodeType::kProcess:
    case NodeType::kQuery:
    case NodeType::kInsert:
    case NodeType::kUpdate:
    case NodeType::kDelete:
      return true;
    case NodeType::kFile:
    case NodeType::kTuple:
      return false;
  }
  return false;
}

ModelSide SideOf(NodeType type) {
  switch (type) {
    case NodeType::kProcess:
    case NodeType::kFile:
      return ModelSide::kOs;
    default:
      return ModelSide::kDb;
  }
}

std::string_view NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kProcess:
      return "process";
    case NodeType::kFile:
      return "file";
    case NodeType::kQuery:
      return "query";
    case NodeType::kInsert:
      return "insert";
    case NodeType::kUpdate:
      return "update";
    case NodeType::kDelete:
      return "delete";
    case NodeType::kTuple:
      return "tuple";
  }
  return "?";
}

std::string_view EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kReadFrom:
      return "readFrom";
    case EdgeType::kHasWritten:
      return "hasWritten";
    case EdgeType::kExecuted:
      return "executed";
    case EdgeType::kHasRead:
      return "hasRead";
    case EdgeType::kHasReturned:
      return "hasReturned";
    case EdgeType::kRun:
      return "run";
    case EdgeType::kReadFromDb:
      return "readFromDb";
  }
  return "?";
}

namespace {

bool IsStatement(NodeType type) {
  return type == NodeType::kQuery || type == NodeType::kInsert ||
         type == NodeType::kUpdate || type == NodeType::kDelete;
}

}  // namespace

const EdgeTypeRule& RuleFor(EdgeType type) {
  static const EdgeTypeRule kReadFromRule{.from_file = true,
                                          .to_process = true};
  static const EdgeTypeRule kHasWrittenRule{.from_process = true,
                                            .to_file = true};
  static const EdgeTypeRule kExecutedRule{.from_process = true,
                                          .to_process = true};
  static const EdgeTypeRule kHasReadRule{.from_tuple = true,
                                         .to_statement = true};
  static const EdgeTypeRule kHasReturnedRule{.from_statement = true,
                                             .to_tuple = true};
  static const EdgeTypeRule kRunRule{.from_process = true,
                                     .to_statement = true};
  static const EdgeTypeRule kReadFromDbRule{.from_tuple = true,
                                            .to_process = true};
  switch (type) {
    case EdgeType::kReadFrom:
      return kReadFromRule;
    case EdgeType::kHasWritten:
      return kHasWrittenRule;
    case EdgeType::kExecuted:
      return kExecutedRule;
    case EdgeType::kHasRead:
      return kHasReadRule;
    case EdgeType::kHasReturned:
      return kHasReturnedRule;
    case EdgeType::kRun:
      return kRunRule;
    case EdgeType::kReadFromDb:
      return kReadFromDbRule;
  }
  return kReadFromRule;
}

bool EdgeAllowed(EdgeType type, NodeType from, NodeType to) {
  const EdgeTypeRule& rule = RuleFor(type);
  bool from_ok = (rule.from_process && from == NodeType::kProcess) ||
                 (rule.from_file && from == NodeType::kFile) ||
                 (rule.from_statement && IsStatement(from)) ||
                 (rule.from_tuple && from == NodeType::kTuple);
  bool to_ok = (rule.to_process && to == NodeType::kProcess) ||
               (rule.to_file && to == NodeType::kFile) ||
               (rule.to_statement && IsStatement(to)) ||
               (rule.to_tuple && to == NodeType::kTuple);
  return from_ok && to_ok;
}

}  // namespace ldv::trace
