#ifndef LDV_TRACE_GRAPH_H_
#define LDV_TRACE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "os/sim_process.h"
#include "trace/model.h"

namespace ldv::trace {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct TraceNode {
  NodeType type = NodeType::kProcess;
  /// Human-readable identity: file path, "pid:<n>", "q:<id> <sql>",
  /// "<table>:<rowid>.v<version>".
  std::string label;
};

struct TraceEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  EdgeType type = EdgeType::kReadFrom;
  os::Interval t;
};

/// A combined execution trace (paper Definition 6): a typed, temporally
/// annotated provenance graph plus the explicit P_Lin data-dependency pairs
/// D(G) (Definition 7). P_BB dependencies (Definition 8) are derivable from
/// the graph structure and are not stored.
class TraceGraph {
 public:
  TraceGraph() = default;

  /// Adds a node; (type, label) pairs are unique — adding an existing pair
  /// returns the existing id.
  NodeId GetOrAddNode(NodeType type, const std::string& label);

  /// Finds a node by (type, label); kInvalidNode when absent.
  NodeId FindNode(NodeType type, const std::string& label) const;

  /// Adds a typed edge; fails when the combined model's type rules
  /// (Definition 5) forbid it.
  Status AddEdge(NodeId from, NodeId to, EdgeType type, os::Interval t);

  /// Like AddEdge but merges with an existing (from, to, type) edge by
  /// extending its interval — the PTU convention of annotating a
  /// process-file edge with [first open, last close] (§VII-A).
  Status MergeEdge(NodeId from, NodeId to, EdgeType type, os::Interval t);

  /// Records a direct P_Lin data dependency: `out_tuple` depends on
  /// `in_tuple` (Definition 7).
  void AddTupleDependency(NodeId out_tuple, NodeId in_tuple);
  bool HasTupleDependency(NodeId out_tuple, NodeId in_tuple) const;
  const std::vector<NodeId>& TupleDependenciesOf(NodeId out_tuple) const;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const TraceNode& node(NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  const std::vector<TraceNode>& nodes() const { return nodes_; }
  const std::vector<TraceEdge>& edges() const { return edges_; }

  /// Indexes into edges() of edges entering / leaving `id`.
  const std::vector<int32_t>& InEdges(NodeId id) const {
    return in_edges_[static_cast<size_t>(id)];
  }
  const std::vector<int32_t>& OutEdges(NodeId id) const {
    return out_edges_[static_cast<size_t>(id)];
  }

  /// All node ids of a given type.
  std::vector<NodeId> NodesOfType(NodeType type) const;

  /// Graphviz rendering (used by examples and docs).
  std::string ToDot() const;

 private:
  std::vector<TraceNode> nodes_;
  std::vector<TraceEdge> edges_;
  std::vector<std::vector<int32_t>> in_edges_;
  std::vector<std::vector<int32_t>> out_edges_;
  std::unordered_map<std::string, NodeId> node_index_;  // "type/label" -> id
  std::unordered_map<NodeId, std::vector<NodeId>> tuple_deps_;
  // (from, to, type) -> edge index, for MergeEdge.
  std::unordered_map<std::string, int32_t> edge_index_;
};

}  // namespace ldv::trace

#endif  // LDV_TRACE_GRAPH_H_
