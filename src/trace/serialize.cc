#include "trace/serialize.h"

#include "util/serde.h"

namespace ldv::trace {

namespace {
constexpr uint32_t kTraceMagic = 0x4C445654;  // "LDVT"
}  // namespace

std::string SerializeTrace(const TraceGraph& graph) {
  BufferWriter w;
  w.PutU32(kTraceMagic);
  w.PutVarint(graph.num_nodes());
  for (const TraceNode& node : graph.nodes()) {
    w.PutU8(static_cast<uint8_t>(node.type));
    w.PutString(node.label);
  }
  w.PutVarint(graph.num_edges());
  for (const TraceEdge& edge : graph.edges()) {
    w.PutVarint(edge.from);
    w.PutVarint(edge.to);
    w.PutU8(static_cast<uint8_t>(edge.type));
    w.PutVarint(edge.t.begin);
    w.PutVarint(edge.t.end);
  }
  // Tuple dependency pairs.
  int64_t num_pairs = 0;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    num_pairs += static_cast<int64_t>(graph.TupleDependenciesOf(id).size());
  }
  w.PutVarint(num_pairs);
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    for (NodeId dep : graph.TupleDependenciesOf(id)) {
      w.PutVarint(id);
      w.PutVarint(dep);
    }
  }
  return w.TakeData();
}

Result<TraceGraph> DeserializeTrace(std::string_view bytes) {
  BufferReader r(bytes);
  LDV_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kTraceMagic) {
    return Status::IOError("not an LDV trace file");
  }
  TraceGraph graph;
  LDV_ASSIGN_OR_RETURN(int64_t num_nodes, r.GetVarint());
  for (int64_t i = 0; i < num_nodes; ++i) {
    LDV_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    LDV_ASSIGN_OR_RETURN(std::string label, r.GetString());
    NodeId id = graph.GetOrAddNode(static_cast<NodeType>(type), label);
    if (id != static_cast<NodeId>(i)) {
      return Status::IOError("duplicate node in serialized trace");
    }
  }
  LDV_ASSIGN_OR_RETURN(int64_t num_edges, r.GetVarint());
  for (int64_t i = 0; i < num_edges; ++i) {
    LDV_ASSIGN_OR_RETURN(int64_t from, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(int64_t to, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    os::Interval t;
    LDV_ASSIGN_OR_RETURN(t.begin, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(t.end, r.GetVarint());
    LDV_RETURN_IF_ERROR(graph.AddEdge(static_cast<NodeId>(from),
                                      static_cast<NodeId>(to),
                                      static_cast<EdgeType>(type), t));
  }
  LDV_ASSIGN_OR_RETURN(int64_t num_pairs, r.GetVarint());
  for (int64_t i = 0; i < num_pairs; ++i) {
    LDV_ASSIGN_OR_RETURN(int64_t out_tuple, r.GetVarint());
    LDV_ASSIGN_OR_RETURN(int64_t in_tuple, r.GetVarint());
    graph.AddTupleDependency(static_cast<NodeId>(out_tuple),
                             static_cast<NodeId>(in_tuple));
  }
  return graph;
}

}  // namespace ldv::trace
