#ifndef LDV_TRACE_MODEL_H_
#define LDV_TRACE_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ldv::trace {

/// Node types of the combined provenance model P_{D+O} (paper Definitions
/// 3-5). kProcess/kFile come from the blackbox OS model P_BB; the statement
/// kinds and kTuple come from the Lineage DB model P_Lin.
enum class NodeType : uint8_t {
  kProcess = 0,  // activity (OS)
  kFile = 1,     // entity (OS)
  kQuery = 2,    // activity (DB)
  kInsert = 3,   // activity (DB)
  kUpdate = 4,   // activity (DB)
  kDelete = 5,   // activity (DB)
  kTuple = 6,    // entity (DB)
};

/// Which provenance model a node belongs to (Definition 5 keeps them
/// disjoint; cross-model links use the dedicated edge types below).
enum class ModelSide : uint8_t { kOs = 0, kDb = 1 };

/// Edge types with the paper's direction convention: edges point in the
/// direction of data flow (Figure 2), e.g. readFrom(file, process) is drawn
/// file -> process.
enum class EdgeType : uint8_t {
  kReadFrom = 0,     // file -> process        (P_BB)
  kHasWritten = 1,   // process -> file        (P_BB)
  kExecuted = 2,     // parent -> child proc   (P_BB)
  kHasRead = 3,      // tuple -> statement     (P_Lin)
  kHasReturned = 4,  // statement -> tuple     (P_Lin)
  kRun = 5,          // process -> statement   (combined, Definition 5)
  kReadFromDb = 6,   // tuple -> process       (combined, Definition 5)
};

bool IsActivity(NodeType type);
inline bool IsEntity(NodeType type) { return !IsActivity(type); }
ModelSide SideOf(NodeType type);

std::string_view NodeTypeName(NodeType type);
std::string_view EdgeTypeName(EdgeType type);

/// Type constraint of one edge type: admissible endpoint node types
/// (Definition 1's L relation for the combined model).
struct EdgeTypeRule {
  bool from_process = false;
  bool from_file = false;
  bool from_statement = false;
  bool from_tuple = false;
  bool to_process = false;
  bool to_file = false;
  bool to_statement = false;
  bool to_tuple = false;
};

const EdgeTypeRule& RuleFor(EdgeType type);

/// True if an edge of `type` may connect `from` -> `to` in the combined
/// model.
bool EdgeAllowed(EdgeType type, NodeType from, NodeType to);

}  // namespace ldv::trace

#endif  // LDV_TRACE_MODEL_H_
