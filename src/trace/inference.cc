#include "trace/inference.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace ldv::trace {

namespace {

/// Direct same-model data dependency D(G) between two entities where
/// `later` was reached from `earlier` through an activity-only path
/// (Definition 7 / 8). For P_Lin the explicit lineage pairs decide; for
/// P_BB any process path implies dependency (the graph's type rules
/// guarantee an activity-only OS path is a process chain).
bool DirectEntityDependency(const TraceGraph& graph, NodeId later,
                            NodeId earlier) {
  NodeType later_type = graph.node(later).type;
  NodeType earlier_type = graph.node(earlier).type;
  if (SideOf(later_type) != SideOf(earlier_type)) {
    return true;  // cross-model: no D(G) side condition (Definition 9.1.ii)
  }
  if (later_type == NodeType::kTuple) {
    return graph.HasTupleDependency(later, earlier);
  }
  return true;  // P_BB: conservative all-outputs-depend-on-all-inputs
}

}  // namespace

std::vector<NodeId> DependencyAnalyzer::Search(NodeId start, int64_t t,
                                               bool start_is_entity) const {
  const TraceGraph& g = *graph_;
  std::vector<NodeId> result;
  // Best (largest) bound with which each entity was expanded.
  std::unordered_map<NodeId, int64_t> entity_bound;
  // Work list of (entity-or-start node, bound).
  std::vector<std::pair<NodeId, int64_t>> frontier;
  frontier.emplace_back(start, t);
  if (start_is_entity) entity_bound[start] = t;

  while (!frontier.empty()) {
    auto [anchor, anchor_bound] = frontier.back();
    frontier.pop_back();
    const bool anchor_is_entity = IsEntity(g.node(anchor).type);

    // Explore activity-only backward paths from the anchor.
    std::unordered_map<NodeId, int64_t> activity_bound;
    std::vector<std::pair<NodeId, int64_t>> stack;
    stack.emplace_back(anchor, anchor_bound);
    while (!stack.empty()) {
      auto [v, bound] = stack.back();
      stack.pop_back();
      for (int32_t edge_index : g.InEdges(v)) {
        const TraceEdge& edge = g.edges()[static_cast<size_t>(edge_index)];
        if (use_temporal_ && edge.t.begin > bound) continue;
        int64_t next_bound =
            use_temporal_ ? std::min(bound, edge.t.end) : kTimeMax;
        NodeId u = edge.from;
        if (IsActivity(g.node(u).type)) {
          auto it = activity_bound.find(u);
          if (it != activity_bound.end() && it->second >= next_bound) continue;
          activity_bound[u] = next_bound;
          stack.emplace_back(u, next_bound);
        } else {
          // Reached the previous entity on the path.
          if (anchor_is_entity &&
              !DirectEntityDependency(g, anchor, u)) {
            continue;
          }
          auto it = entity_bound.find(u);
          if (it != entity_bound.end() && it->second >= next_bound) continue;
          entity_bound[u] = next_bound;
          frontier.emplace_back(u, next_bound);
        }
      }
    }
  }

  for (const auto& [entity, bound] : entity_bound) {
    if (entity != start) result.push_back(entity);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<NodeId> DependencyAnalyzer::DependenciesOf(NodeId entity,
                                                       int64_t t) const {
  return Search(entity, t, /*start_is_entity=*/true);
}

bool DependencyAnalyzer::Depends(NodeId entity, NodeId candidate,
                                 int64_t t) const {
  std::vector<NodeId> deps = DependenciesOf(entity, t);
  return std::binary_search(deps.begin(), deps.end(), candidate);
}

std::vector<NodeId> DependencyAnalyzer::StateDependenciesOfActivity(
    NodeId activity, int64_t t) const {
  return Search(activity, t, /*start_is_entity=*/false);
}

std::vector<NodeId> DependencyAnalyzer::RelevantPackageTuples() const {
  const TraceGraph& g = *graph_;
  // Union of state dependencies over all activities.
  std::vector<bool> needed(static_cast<size_t>(g.num_nodes()), false);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!IsActivity(g.node(id).type)) continue;
    for (NodeId dep : StateDependenciesOfActivity(id)) {
      needed[static_cast<size_t>(dep)] = true;
    }
  }
  std::vector<NodeId> out;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!needed[static_cast<size_t>(id)]) continue;
    if (g.node(id).type != NodeType::kTuple) continue;
    // "Created by the application itself": any incoming edge (§VII-D).
    if (!g.InEdges(id).empty()) continue;
    out.push_back(id);
  }
  return out;
}

bool PathSatisfiesDefinition11(const TraceGraph& graph,
                               const std::vector<int32_t>& path_edges,
                               int64_t t) {
  if (path_edges.empty()) return false;
  // Check connectivity v1 -e1-> v2 -e2-> ... -e_{n-1}-> vn.
  for (size_t i = 1; i < path_edges.size(); ++i) {
    const TraceEdge& prev = graph.edges()[static_cast<size_t>(path_edges[i - 1])];
    const TraceEdge& cur = graph.edges()[static_cast<size_t>(path_edges[i])];
    if (prev.to != cur.from) return false;
  }
  // Condition 1: adjacent same-model entities on the path must be in D(G).
  std::vector<NodeId> nodes;
  nodes.push_back(graph.edges()[static_cast<size_t>(path_edges[0])].from);
  for (int32_t e : path_edges) {
    nodes.push_back(graph.edges()[static_cast<size_t>(e)].to);
  }
  NodeId prev_entity = kInvalidNode;
  for (NodeId v : nodes) {
    if (!IsEntity(graph.node(v).type)) continue;
    if (prev_entity != kInvalidNode) {
      NodeType a = graph.node(prev_entity).type;
      NodeType b = graph.node(v).type;
      if (SideOf(a) == SideOf(b)) {
        if (b == NodeType::kTuple &&
            !graph.HasTupleDependency(v, prev_entity)) {
          return false;
        }
        // P_BB adjacent files: dependency holds via the process chain.
      }
    }
    prev_entity = v;
  }
  // Conditions 2+3: greedy forward assignment of minimal feasible times.
  // T_i >= max(T_{i-1}, begin(edge_{i-1})), T_i <= end(edge_i) for i < n,
  // T_n <= t.
  int64_t current = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < path_edges.size(); ++i) {
    const TraceEdge& edge = graph.edges()[static_cast<size_t>(path_edges[i])];
    // Time at node v_{i+1} must be >= begin(edge_i); time at node v_i must
    // be <= end(edge_i).
    if (current > edge.t.end) return false;  // T_i <= end(edge_i) infeasible
    current = std::max(current, edge.t.begin);  // minimal T_{i+1}
  }
  return current <= t;
}

}  // namespace ldv::trace
