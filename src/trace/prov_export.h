#ifndef LDV_TRACE_PROV_EXPORT_H_
#define LDV_TRACE_PROV_EXPORT_H_

#include <string>

#include "trace/graph.h"

namespace ldv::trace {

/// Exports a combined execution trace as a W3C PROV-JSON document — the
/// paper's Definition 1 requires every provenance model used with LDV to be
/// representable in PROV (§IV-A), and this is that representation:
///
///   - processes and SQL statements become PROV *activities*
///     (prov:type ldv:process / ldv:query / ldv:insert / ...),
///   - files and tuples become PROV *entities*,
///   - readFrom/hasRead/readFromDb edges become `used`,
///   - hasWritten/hasReturned edges become `wasGeneratedBy` (inverted:
///     PROV points entity -> activity),
///   - executed/run edges become `wasStartedBy` / ldv:run,
///   - the D(G) tuple dependencies become `wasDerivedFrom`,
///   - edge time intervals become ldv:begin / ldv:end attributes.
///
/// The document parses with standard PROV-JSON tooling.
std::string ExportProvJson(const TraceGraph& graph);

}  // namespace ldv::trace

#endif  // LDV_TRACE_PROV_EXPORT_H_
