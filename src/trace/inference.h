#ifndef LDV_TRACE_INFERENCE_H_
#define LDV_TRACE_INFERENCE_H_

#include <limits>
#include <vector>

#include "trace/graph.h"

namespace ldv::trace {

inline constexpr int64_t kTimeMax = std::numeric_limits<int64_t>::max();

/// Temporally restricted dependency inference (paper §VI-C, Definition 11).
///
/// An entity e depends on an entity e' at time T iff there is a path
/// e' = v1, ..., vn = e in the trace such that
///   (1) adjacent entities from the same provenance model on the path are
///       connected by a direct data dependency D(G),
///   (2) there are times T1 <= ... <= Tn <= T with Ti <= end(edge_i), and
///   (3) begin(edge_{i-1}) <= Ti (each vi's state contains v_{i-1}).
///
/// The implementation searches backwards from e, propagating the largest
/// feasible time bound: traversing edge (u -> v) from v with bound b is
/// feasible iff begin(edge) <= b and yields bound min(b, end(edge)) at u.
/// For the D(G) side conditions, P_Lin dependencies are looked up in the
/// graph; P_BB dependencies hold by construction for any activity-only
/// process path between two files (Definition 8).
class DependencyAnalyzer {
 public:
  explicit DependencyAnalyzer(const TraceGraph* graph) : graph_(graph) {}

  /// All entities e' (files and tuples) that `entity` depends on at time T.
  /// Sorted by node id. `entity` itself is excluded.
  std::vector<NodeId> DependenciesOf(NodeId entity,
                                     int64_t t = kTimeMax) const;

  /// True iff `entity` depends on `candidate` at time T (Definition 11).
  bool Depends(NodeId entity, NodeId candidate, int64_t t = kTimeMax) const;

  /// All entities the *state* of activity `activity` (Definition 10,
  /// extended transitively) depends on at time T — the packaging criterion
  /// of §VII-D: a tuple is relevant iff some activity's state depends on it.
  std::vector<NodeId> StateDependenciesOfActivity(
      NodeId activity, int64_t t = kTimeMax) const;

  /// Tuples that must be included in a repeatability package: tuple entities
  /// with no incoming edge (not created by the application) whose state some
  /// activity in the trace depends on (§VII-D).
  std::vector<NodeId> RelevantPackageTuples() const;

  /// When disabled, temporal constraints are ignored (every edge is
  /// traversable with an unbounded time). Used by the ablation benchmark to
  /// quantify how much pruning the paper's temporal reasoning buys.
  void set_use_temporal_constraints(bool use) { use_temporal_ = use; }

 private:
  /// Core backward search from a start node (entity or activity).
  /// `start_is_entity` controls whether the first-entity D(G) side condition
  /// applies.
  std::vector<NodeId> Search(NodeId start, int64_t t,
                             bool start_is_entity) const;

  const TraceGraph* graph_;
  bool use_temporal_ = true;
};

/// Independent path-feasibility check used by the property tests: verifies
/// Definition 11's conditions for one explicit path (v1 ... vn, given as
/// edge indexes into graph.edges()) at time T. This is intentionally a
/// separate, direct transcription of the definition so the search-based
/// analyzer can be validated against it.
bool PathSatisfiesDefinition11(const TraceGraph& graph,
                               const std::vector<int32_t>& path_edges,
                               int64_t t);

}  // namespace ldv::trace

#endif  // LDV_TRACE_INFERENCE_H_
