#include "trace/graph.h"

#include <algorithm>

#include "util/strings.h"

namespace ldv::trace {
namespace {

std::string NodeKey(NodeType type, const std::string& label) {
  return std::to_string(static_cast<int>(type)) + "/" + label;
}

std::string EdgeKey(NodeId from, NodeId to, EdgeType type) {
  return std::to_string(from) + ">" + std::to_string(to) + "#" +
         std::to_string(static_cast<int>(type));
}

}  // namespace

NodeId TraceGraph::GetOrAddNode(NodeType type, const std::string& label) {
  std::string key = NodeKey(type, label);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({type, label});
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  node_index_.emplace(std::move(key), id);
  return id;
}

NodeId TraceGraph::FindNode(NodeType type, const std::string& label) const {
  auto it = node_index_.find(NodeKey(type, label));
  return it == node_index_.end() ? kInvalidNode : it->second;
}

Status TraceGraph::AddEdge(NodeId from, NodeId to, EdgeType type,
                           os::Interval t) {
  if (from < 0 || to < 0 || from >= num_nodes() || to >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  NodeType from_type = node(from).type;
  NodeType to_type = node(to).type;
  if (!EdgeAllowed(type, from_type, to_type)) {
    return Status::InvalidArgument(StrFormat(
        "edge type %s cannot connect %s -> %s",
        std::string(EdgeTypeName(type)).c_str(),
        std::string(NodeTypeName(from_type)).c_str(),
        std::string(NodeTypeName(to_type)).c_str()));
  }
  if (t.end < t.begin) {
    return Status::InvalidArgument("edge interval end < begin");
  }
  int32_t index = static_cast<int32_t>(edges_.size());
  edges_.push_back({from, to, type, t});
  out_edges_[static_cast<size_t>(from)].push_back(index);
  in_edges_[static_cast<size_t>(to)].push_back(index);
  edge_index_[EdgeKey(from, to, type)] = index;
  return Status::Ok();
}

Status TraceGraph::MergeEdge(NodeId from, NodeId to, EdgeType type,
                             os::Interval t) {
  auto it = edge_index_.find(EdgeKey(from, to, type));
  if (it != edge_index_.end()) {
    TraceEdge& edge = edges_[static_cast<size_t>(it->second)];
    edge.t.begin = std::min(edge.t.begin, t.begin);
    edge.t.end = std::max(edge.t.end, t.end);
    return Status::Ok();
  }
  return AddEdge(from, to, type, t);
}

void TraceGraph::AddTupleDependency(NodeId out_tuple, NodeId in_tuple) {
  std::vector<NodeId>& deps = tuple_deps_[out_tuple];
  if (std::find(deps.begin(), deps.end(), in_tuple) == deps.end()) {
    deps.push_back(in_tuple);
  }
}

bool TraceGraph::HasTupleDependency(NodeId out_tuple, NodeId in_tuple) const {
  auto it = tuple_deps_.find(out_tuple);
  if (it == tuple_deps_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), in_tuple) !=
         it->second.end();
}

const std::vector<NodeId>& TraceGraph::TupleDependenciesOf(
    NodeId out_tuple) const {
  static const std::vector<NodeId> kEmpty;
  auto it = tuple_deps_.find(out_tuple);
  return it == tuple_deps_.end() ? kEmpty : it->second;
}

std::vector<NodeId> TraceGraph::NodesOfType(NodeType type) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (node(id).type == type) out.push_back(id);
  }
  return out;
}

std::string TraceGraph::ToDot() const {
  std::string out = "digraph trace {\n  rankdir=LR;\n";
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const TraceNode& n = node(id);
    const char* shape = IsActivity(n.type) ? "box" : "ellipse";
    const char* color = SideOf(n.type) == ModelSide::kOs ? "lightblue"
                                                         : "lightyellow";
    out += StrFormat(
        "  n%d [label=\"%s\\n%s\", shape=%s, style=filled, fillcolor=%s];\n",
        id, std::string(NodeTypeName(n.type)).c_str(), n.label.c_str(), shape,
        color);
  }
  for (const TraceEdge& e : edges_) {
    out += StrFormat("  n%d -> n%d [label=\"%s [%lld,%lld]\"];\n", e.from,
                     e.to, std::string(EdgeTypeName(e.type)).c_str(),
                     static_cast<long long>(e.t.begin),
                     static_cast<long long>(e.t.end));
  }
  for (const auto& [out_tuple, deps] : tuple_deps_) {
    for (NodeId dep : deps) {
      out += StrFormat("  n%d -> n%d [style=dashed, label=\"dep\"];\n",
                       out_tuple, dep);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ldv::trace
