#ifndef LDV_TRACE_SERIALIZE_H_
#define LDV_TRACE_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "trace/graph.h"

namespace ldv::trace {

/// Binary serialization of a combined execution trace; stored inside every
/// LDV package (§VII-D includes "a serialization of the execution trace").
std::string SerializeTrace(const TraceGraph& graph);

Result<TraceGraph> DeserializeTrace(std::string_view bytes);

}  // namespace ldv::trace

#endif  // LDV_TRACE_SERIALIZE_H_
