// Reconstructs the paper's running examples as in-memory traces and answers
// dependency queries over them:
//   - Figure 2: the combined execution trace of Alice's two processes,
//   - Figure 4 / Example 7: P_BB dependencies with temporal pruning,
//   - Figure 6 (a,b,c): how temporal annotations change what C depends on.
// Prints the Figure 2 trace as Graphviz DOT on request.
//
//   $ ./provenance_queries [--dot]

#include <cstdio>
#include <cstring>

#include "trace/inference.h"

using ldv::os::Interval;
using ldv::trace::DependencyAnalyzer;
using ldv::trace::EdgeType;
using ldv::trace::NodeId;
using ldv::trace::NodeType;
using ldv::trace::TraceGraph;

namespace {

void Check(const char* what, bool got, bool expected) {
  std::printf("  %-58s %-5s %s\n", what, got ? "yes" : "no",
              got == expected ? "(as in the paper)" : "(MISMATCH!)");
}

TraceGraph Figure2() {
  TraceGraph g;
  NodeId file_a = g.GetOrAddNode(NodeType::kFile, "A");
  NodeId file_b = g.GetOrAddNode(NodeType::kFile, "B");
  NodeId file_c = g.GetOrAddNode(NodeType::kFile, "C");
  NodeId p1 = g.GetOrAddNode(NodeType::kProcess, "P1");
  NodeId p2 = g.GetOrAddNode(NodeType::kProcess, "P2");
  NodeId insert1 = g.GetOrAddNode(NodeType::kInsert, "Insert1");
  NodeId insert2 = g.GetOrAddNode(NodeType::kInsert, "Insert2");
  NodeId query = g.GetOrAddNode(NodeType::kQuery, "Query");
  NodeId t1 = g.GetOrAddNode(NodeType::kTuple, "t1");
  NodeId t2 = g.GetOrAddNode(NodeType::kTuple, "t2");
  NodeId t3 = g.GetOrAddNode(NodeType::kTuple, "t3");
  NodeId t4 = g.GetOrAddNode(NodeType::kTuple, "t4");
  NodeId t5 = g.GetOrAddNode(NodeType::kTuple, "t5");
  (void)t2;
  (void)g.AddEdge(file_a, p1, EdgeType::kReadFrom, {1, 6});
  (void)g.AddEdge(file_b, p1, EdgeType::kReadFrom, {7, 8});
  (void)g.AddEdge(p1, insert1, EdgeType::kRun, {5, 5});
  (void)g.AddEdge(p1, insert2, EdgeType::kRun, {8, 8});
  (void)g.AddEdge(insert1, t1, EdgeType::kHasReturned, {5, 5});
  (void)g.AddEdge(insert1, t2, EdgeType::kHasReturned, {5, 5});
  (void)g.AddEdge(insert2, t3, EdgeType::kHasReturned, {8, 8});
  (void)g.AddEdge(t1, query, EdgeType::kHasRead, {9, 9});
  (void)g.AddEdge(t3, query, EdgeType::kHasRead, {9, 9});
  (void)g.AddEdge(p2, query, EdgeType::kRun, {9, 9});
  (void)g.AddEdge(query, t4, EdgeType::kHasReturned, {9, 9});
  (void)g.AddEdge(query, t5, EdgeType::kHasReturned, {9, 9});
  (void)g.AddEdge(t4, p2, EdgeType::kReadFromDb, {9, 9});
  (void)g.AddEdge(t5, p2, EdgeType::kReadFromDb, {9, 9});
  (void)g.AddEdge(p2, file_c, EdgeType::kHasWritten, {7, 12});
  g.AddTupleDependency(t4, t1);
  g.AddTupleDependency(t4, t3);
  g.AddTupleDependency(t5, t1);
  g.AddTupleDependency(t5, t3);
  return g;
}

TraceGraph Chain(Interval a_p1, Interval p1_b, Interval b_p2, Interval p2_c) {
  TraceGraph g;
  NodeId a = g.GetOrAddNode(NodeType::kFile, "A");
  NodeId p1 = g.GetOrAddNode(NodeType::kProcess, "P1");
  NodeId b = g.GetOrAddNode(NodeType::kFile, "B");
  NodeId p2 = g.GetOrAddNode(NodeType::kProcess, "P2");
  NodeId c = g.GetOrAddNode(NodeType::kFile, "C");
  (void)g.AddEdge(a, p1, EdgeType::kReadFrom, a_p1);
  (void)g.AddEdge(p1, b, EdgeType::kHasWritten, p1_b);
  (void)g.AddEdge(b, p2, EdgeType::kReadFrom, b_p2);
  (void)g.AddEdge(p2, c, EdgeType::kHasWritten, p2_c);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  bool dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  TraceGraph fig2 = Figure2();
  if (dot) {
    std::fputs(fig2.ToDot().c_str(), stdout);
    return 0;
  }

  std::printf("Figure 2 — combined execution trace (%lld nodes, %lld edges)\n",
              static_cast<long long>(fig2.num_nodes()),
              static_cast<long long>(fig2.num_edges()));
  DependencyAnalyzer fig2_analyzer(&fig2);
  NodeId c = fig2.FindNode(NodeType::kFile, "C");
  NodeId a = fig2.FindNode(NodeType::kFile, "A");
  NodeId b = fig2.FindNode(NodeType::kFile, "B");
  NodeId t1 = fig2.FindNode(NodeType::kTuple, "t1");
  NodeId t2 = fig2.FindNode(NodeType::kTuple, "t2");
  NodeId t4 = fig2.FindNode(NodeType::kTuple, "t4");
  Check("file C depends on file A (via t1/t3 and the query)",
        fig2_analyzer.Depends(c, a), true);
  Check("file C depends on tuple t1", fig2_analyzer.Depends(c, t1), true);
  Check("file C depends on tuple t2 (never read by the query)",
        fig2_analyzer.Depends(c, t2), false);
  Check("t4 depends on t1 (Lineage)", fig2_analyzer.Depends(t4, t1), true);
  Check("t4 depends on file A (cross-model)", fig2_analyzer.Depends(t4, a),
        true);
  Check("t4 depends on file B (B read at [7,8], t1 inserted at 5)",
        fig2_analyzer.Depends(t4, b), true);

  std::printf(
      "\nFigure 6 — temporal pruning on the chain A->P1->B->P2->C\n");
  {
    TraceGraph g = Chain({2, 3}, {6, 7}, {1, 5}, {6, 6});
    DependencyAnalyzer analyzer(&g);
    Check("6a: C depends on A (P2 stopped reading B before P1 wrote it)",
          analyzer.Depends(g.FindNode(NodeType::kFile, "C"),
                           g.FindNode(NodeType::kFile, "A")),
          false);
    analyzer.set_use_temporal_constraints(false);
    Check("6a without temporal reasoning (spurious dependency)",
          analyzer.Depends(g.FindNode(NodeType::kFile, "C"),
                           g.FindNode(NodeType::kFile, "A")),
          true);
  }
  {
    TraceGraph g = Chain({1, 1}, {4, 7}, {2, 5}, {1, 6});
    DependencyAnalyzer analyzer(&g);
    Check("6b: C depends on A at time 4",
          analyzer.Depends(g.FindNode(NodeType::kFile, "C"),
                           g.FindNode(NodeType::kFile, "A"), 4),
          true);
    Check("6b: ... but not at time 3",
          analyzer.Depends(g.FindNode(NodeType::kFile, "C"),
                           g.FindNode(NodeType::kFile, "A"), 3),
          false);
  }

  std::printf("\nExample 7 — write-before-read has no dependency\n");
  {
    TraceGraph g;
    NodeId fa = g.GetOrAddNode(NodeType::kFile, "A");
    NodeId fb = g.GetOrAddNode(NodeType::kFile, "B");
    NodeId fc = g.GetOrAddNode(NodeType::kFile, "C");
    NodeId fd = g.GetOrAddNode(NodeType::kFile, "D");
    NodeId p1 = g.GetOrAddNode(NodeType::kProcess, "P1");
    (void)g.AddEdge(fa, p1, EdgeType::kReadFrom, {1, 5});
    (void)g.AddEdge(fb, p1, EdgeType::kReadFrom, {7, 8});
    (void)g.AddEdge(p1, fc, EdgeType::kHasWritten, {2, 3});
    (void)g.AddEdge(p1, fd, EdgeType::kHasWritten, {8, 8});
    DependencyAnalyzer analyzer(&g);
    Check("C (written [2,3]) depends on B (read [7,8])",
          analyzer.Depends(fc, fb), false);
    Check("D (written [8,8]) depends on B", analyzer.Depends(fd, fb), true);
    Check("C depends on A", analyzer.Depends(fc, fa), true);
  }

  std::printf("\n(run with --dot to emit the Figure 2 trace as Graphviz)\n");
  return 0;
}
