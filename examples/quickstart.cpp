// Quickstart: audit a tiny DB application, build a server-included package,
// and re-execute it from the package — the minimal LDV loop.
//
//   $ ./quickstart [workdir]

#include <cstdio>

#include "ldv/auditor.h"
#include "ldv/replayer.h"
#include "util/fsutil.h"
#include "util/strings.h"

using ldv::AppEnv;
using ldv::Status;

namespace {

/// The application: reads a threshold from a config file, asks the database
/// which measurements exceed it, and writes the answer to a report file.
Status App(AppEnv& env) {
  ldv::os::ProcessContext& proc = env.root_process();
  LDV_ASSIGN_OR_RETURN(std::string config, proc.ReadFile("/config.txt"));
  LDV_ASSIGN_OR_RETURN(int64_t threshold,
                       ldv::ParseInt64(ldv::Trim(config)));

  LDV_ASSIGN_OR_RETURN(ldv::net::DbClient * db, env.OpenDbConnection(proc));
  LDV_ASSIGN_OR_RETURN(
      ldv::exec::ResultSet result,
      db->Query("SELECT sensor, reading FROM measurements WHERE reading > " +
                std::to_string(threshold)));

  std::string report = "sensors over threshold:\n";
  for (const auto& row : result.rows) {
    report += "  " + row[0].AsString() + " = " + row[1].ToText() + "\n";
  }
  return proc.WriteFile("/report.txt", report);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "quickstart: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string work =
      argc > 1 ? argv[1] : ldv::MakeTempDir("ldv_quickstart_").ValueOr("/tmp");

  // 1. The "server" database Alice's application talks to.
  ldv::storage::Database db;
  ldv::net::EngineHandle engine(&db);
  ldv::net::LocalDbClient admin(&engine);
  for (const char* sql : {
           "CREATE TABLE measurements (sensor TEXT, reading INT)",
           "INSERT INTO measurements VALUES ('alpha', 10), ('beta', 90), "
           "('gamma', 55), ('delta', 7), ('epsilon', 99)",
       }) {
    if (auto r = admin.Query(sql); !r.ok()) return Fail(r.status());
  }

  // 2. Alice runs the application under ldv-audit.
  ldv::AuditOptions audit;
  audit.mode = ldv::PackageMode::kServerIncluded;
  audit.package_dir = work + "/package";
  audit.sandbox_root = work + "/alice";
  audit.server_binary_path = ldv::FindLdvServerBinary();
  if (auto s = ldv::WriteStringToFile(audit.sandbox_root + "/config.txt",
                                      "50\n");
      !s.ok()) {
    return Fail(s);
  }
  ldv::Auditor auditor(&db, audit);
  auto audited = auditor.Run(App);
  if (!audited.ok()) return Fail(audited.status());
  std::printf("audited %lld statements; packaged %lld tuples into %s\n",
              static_cast<long long>(audited->statements_audited),
              static_cast<long long>(audited->tuples_persisted),
              audited->package_dir.c_str());

  auto original = ldv::ReadFileToString(audit.sandbox_root + "/report.txt");
  if (!original.ok()) return Fail(original.status());

  // 3. Bob re-executes the package with ldv-exec — no access to Alice's DB.
  ldv::ReplayOptions replay;
  replay.package_dir = audit.package_dir;
  replay.scratch_dir = work + "/bob";
  auto replayer = ldv::Replayer::Open(replay);
  if (!replayer.ok()) return Fail(replayer.status());
  auto report = (*replayer)->Run(App);
  if (!report.ok()) return Fail(report.status());

  auto replayed = ldv::ReadFileToString(replay.scratch_dir + "/report.txt");
  if (!replayed.ok()) return Fail(replayed.status());

  std::printf("replay restored %lld tuples in %.4fs\n",
              static_cast<long long>(report->restored_tuples),
              report->init_seconds);
  std::printf("original report:\n%s", original->c_str());
  std::printf("replayed report:\n%s", replayed->c_str());
  if (*original != *replayed) {
    std::fprintf(stderr, "MISMATCH: replay diverged!\n");
    return 1;
  }
  std::printf("byte-identical: repeatability verified.\n");
  std::printf("workdir: %s\n", work.c_str());
  return 0;
}
