// Reproduces one cell of the paper's evaluation interactively: runs the
// §IX-A experiment application (1000 inserts / 10 selects / 100 updates)
// over TPC-H under all four sharing approaches and prints audit + replay
// timings and package sizes side by side.
//
//   $ ./tpch_repro [query-id] [scale-factor]     (default: Q1-1 0.005)

#include <cstdio>
#include <cstdlib>

#include "ldv/auditor.h"
#include "ldv/replayer.h"
#include "ldv/vm_image_model.h"
#include "tpch/app.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "util/fsutil.h"

namespace {

int Fail(const ldv::Status& status) {
  std::fprintf(stderr, "tpch_repro: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_id = argc > 1 ? argv[1] : "Q1-1";
  double sf = argc > 2 ? std::atof(argv[2]) : 0.005;
  auto query = ldv::tpch::FindQuery(query_id);
  if (!query.ok()) return Fail(query.status());
  auto work = ldv::MakeTempDir("ldv_tpch_repro_");
  if (!work.ok()) return Fail(work.status());

  ldv::tpch::TpchSizes sizes = ldv::tpch::SizesFor(sf);
  ldv::tpch::AppOptions app;
  app.query_sql = query->sql;
  app.insert_orderkey_base = sizes.orders;
  app.update_orderkey_max = sizes.orders;
  app.customer_max = sizes.customers;

  std::printf("query %s (sel %.2f%%), TPC-H sf=%.4f\n", query->id.c_str(),
              query->selectivity * 100, sf);
  std::printf(
      "%-17s %10s %10s %10s %10s | %10s %10s | %9s\n", "mode", "ins(s)",
      "sel1(s)", "selN(s)", "upd(s)", "init(s)", "replay(s)", "size(MB)");

  for (ldv::PackageMode mode :
       {ldv::PackageMode::kPtu, ldv::PackageMode::kServerIncluded,
        ldv::PackageMode::kServerExcluded, ldv::PackageMode::kVmImage}) {
    std::string name(ldv::PackageModeName(mode));
    ldv::storage::Database db;
    ldv::tpch::GenOptions gen;
    gen.scale_factor = sf;
    if (auto s = ldv::tpch::Generate(&db, gen); !s.ok()) return Fail(s);

    ldv::AuditOptions audit;
    audit.mode = mode;
    audit.package_dir = *work + "/pkg_" + name;
    audit.sandbox_root = *work + "/sandbox_" + name;
    audit.server_binary_path = ldv::FindLdvServerBinary();
    audit.record_tuple_nodes = false;  // benchmark-scale trace
    ldv::VmImageModel vm({.scale = sf});
    audit.vm_base_image_bytes = vm.ScaledBaseImageBytes();
    if (auto s = ldv::MakeDirs(audit.sandbox_root); !s.ok()) return Fail(s);

    ldv::tpch::StepTimings audit_times;
    ldv::Auditor auditor(&db, audit);
    auto audited =
        auditor.Run(ldv::tpch::MakeExperimentApp(app, &audit_times));
    if (!audited.ok()) return Fail(audited.status());

    ldv::ReplayOptions replay;
    replay.package_dir = audit.package_dir;
    replay.scratch_dir = *work + "/scratch_" + name;
    ldv::WallTimer replay_timer;
    auto replayer = ldv::Replayer::Open(replay);
    if (!replayer.ok()) return Fail(replayer.status());
    ldv::tpch::StepTimings replay_times;
    auto replayed =
        (*replayer)->Run(ldv::tpch::MakeExperimentApp(app, &replay_times));
    if (!replayed.ok()) return Fail(replayed.status());
    double replay_total = replay_timer.Seconds();
    if (mode == ldv::PackageMode::kVmImage) {
      replay_total = vm.BootSeconds() + vm.ReplaySeconds(replay_total);
    }
    if (replay_times.result_fingerprint != audit_times.result_fingerprint) {
      std::fprintf(stderr, "[%s] replay diverged!\n", name.c_str());
      return 1;
    }

    std::printf(
        "%-17s %10.4f %10.4f %10.4f %10.4f | %10.4f %10.4f | %9.2f\n",
        name.c_str(), audit_times.inserts_seconds,
        audit_times.first_select_seconds, audit_times.other_selects_seconds,
        audit_times.updates_seconds, replayed->init_seconds, replay_total,
        static_cast<double>(ldv::TreeSize(audit.package_dir)) / 1e6);
  }
  std::printf("workdir: %s\n", work->c_str());
  return 0;
}
