// The paper's motivating scenario (§I, Figure 1): Alice's halo finder.
//
// Process P1 reads simulation data from file f1 and INSERTs candidate halos
// into the (Sloan-like) survey database. Process P2 runs a query joining the
// candidates against the observations table and writes confirmed halos to
// file f2. Alice shares the run as LDV packages; Bob re-executes them.
//
// The example demonstrates the paper's two exclusion rules:
//   - observations never touched by any statement (the t2 of Figure 1) are
//     NOT packaged,
//   - candidate tuples created by the application (the t3) are NOT packaged
//     — re-execution recreates them —
// and answers dependency queries over the combined trace (Definition 11).

#include <cstdio>

#include "ldv/auditor.h"
#include "ldv/replayer.h"
#include "trace/inference.h"
#include "trace/serialize.h"
#include "util/fsutil.h"
#include "util/strings.h"

using ldv::AppEnv;
using ldv::Status;

namespace {

/// Alice's application: two processes, two files, one shared DB.
Status HaloFinder(AppEnv& env) {
  ldv::os::ProcessContext& shell = env.root_process();

  // --- P1: ingest simulation candidates. ---
  LDV_ASSIGN_OR_RETURN(ldv::os::ProcessContext * p1,
                       shell.Spawn("ingest-candidates"));
  LDV_ASSIGN_OR_RETURN(std::string simulation,
                       p1->ReadFile("/sky/simulation.csv"));
  LDV_ASSIGN_OR_RETURN(ldv::net::DbClient * db1, env.OpenDbConnection(*p1));
  for (const std::string& line : ldv::Split(simulation, '\n')) {
    if (ldv::Trim(line).empty()) continue;
    std::vector<std::string> fields = ldv::Split(line, ',');
    LDV_RETURN_IF_ERROR(
        db1->Query("INSERT INTO candidates VALUES (" + fields[0] + ", " +
                   fields[1] + ", " + fields[2] + ")")
            .status());
  }
  p1->Exit();

  // --- P2: confirm candidates against observations. ---
  LDV_ASSIGN_OR_RETURN(ldv::os::ProcessContext * p2,
                       shell.Spawn("confirm-halos"));
  LDV_ASSIGN_OR_RETURN(ldv::net::DbClient * db2, env.OpenDbConnection(*p2));
  LDV_ASSIGN_OR_RETURN(
      ldv::exec::ResultSet halos,
      db2->Query("SELECT c.region, c.mass, o.luminosity "
                 "FROM candidates c, observations o "
                 "WHERE c.region = o.region AND o.luminosity > 0.5 "
                 "ORDER BY c.region"));
  std::string out = "region,mass,luminosity\n";
  for (const auto& row : halos.rows) {
    out += row[0].ToText() + "," + row[1].ToText() + "," + row[2].ToText() +
           "\n";
  }
  LDV_RETURN_IF_ERROR(p2->WriteFile("/sky/halos.csv", out));
  p2->Exit();
  return Status::Ok();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "halo_finder: %s\n", status.ToString().c_str());
  return 1;
}

void BuildSurveyDb(ldv::storage::Database* db) {
  ldv::net::EngineHandle engine(db);
  ldv::net::LocalDbClient admin(&engine);
  (void)admin.Query(
      "CREATE TABLE candidates (region INT, mass DOUBLE, score DOUBLE)");
  (void)admin.Query(
      "CREATE TABLE observations (region INT, luminosity DOUBLE)");
  // 50 observed regions; the simulation only references 4 of them, so most
  // observation tuples must stay OUT of the package.
  std::string values;
  for (int region = 1; region <= 50; ++region) {
    if (region > 1) values += ", ";
    values += ldv::StrFormat("(%d, %.2f)", region,
                             (region % 10 == 0) ? 0.9 : 0.3 + region * 0.001);
  }
  (void)admin.Query("INSERT INTO observations VALUES " + values);
}

}  // namespace

int main(int argc, char** argv) {
  std::string work =
      argc > 1 ? argv[1] : ldv::MakeTempDir("ldv_halo_").ValueOr("/tmp");

  // Alice's simulation output references regions 10, 20, 30, 7.
  std::string sandbox = work + "/alice";
  if (auto s = ldv::WriteStringToFile(
          sandbox + "/sky/simulation.csv",
          "10,1.5e12,0.93\n20,8.1e11,0.77\n30,2.2e12,0.88\n7,5.0e11,0.41\n");
      !s.ok()) {
    return Fail(s);
  }

  for (ldv::PackageMode mode : {ldv::PackageMode::kServerIncluded,
                                ldv::PackageMode::kServerExcluded}) {
    std::string name(ldv::PackageModeName(mode));
    ldv::storage::Database db;
    BuildSurveyDb(&db);

    ldv::AuditOptions audit;
    audit.mode = mode;
    audit.package_dir = work + "/package_" + name;
    audit.sandbox_root = sandbox;
    audit.server_binary_path = ldv::FindLdvServerBinary();
    ldv::Auditor auditor(&db, audit);
    auto report = auditor.Run(HaloFinder);
    if (!report.ok()) return Fail(report.status());

    auto info = ldv::InspectPackage(audit.package_dir);
    if (!info.ok()) return Fail(info.status());
    std::printf(
        "[%s] audited %lld statements, %lld processes -> %.3f MB package "
        "(%lld packaged tuples)\n",
        name.c_str(), static_cast<long long>(report->statements_audited),
        static_cast<long long>(report->processes),
        static_cast<double>(info->total_bytes) / 1e6,
        static_cast<long long>(info->packaged_tuples));

    if (mode == ldv::PackageMode::kServerIncluded) {
      // Exclusion rules: only the 3 observation tuples with luminosity>0.5
      // in referenced regions are packaged; candidates are app-created.
      std::printf(
          "  exclusion check: observations packaged = %lld (of 50); "
          "candidates packaged = %s\n",
          static_cast<long long>(info->packaged_tuples),
          ldv::FileExists(audit.package_dir + "/db/data/candidates.csv")
              ? "YES (bug!)"
              : "none (recreated at replay)");

      // Dependency queries over the combined trace.
      auto bytes =
          ldv::ReadFileToString(audit.package_dir + "/trace.ldv");
      if (!bytes.ok()) return Fail(bytes.status());
      auto graph = ldv::trace::DeserializeTrace(*bytes);
      if (!graph.ok()) return Fail(graph.status());
      ldv::trace::DependencyAnalyzer analyzer(&*graph);
      ldv::trace::NodeId halos_file =
          graph->FindNode(ldv::trace::NodeType::kFile, "/sky/halos.csv");
      ldv::trace::NodeId sim_file =
          graph->FindNode(ldv::trace::NodeType::kFile, "/sky/simulation.csv");
      std::printf(
          "  trace: %lld nodes / %lld edges; halos.csv depends on "
          "simulation.csv: %s; dependencies of halos.csv: %zu entities\n",
          static_cast<long long>(graph->num_nodes()),
          static_cast<long long>(graph->num_edges()),
          analyzer.Depends(halos_file, sim_file) ? "yes" : "NO (bug!)",
          analyzer.DependenciesOf(halos_file).size());
    }

    // Bob replays.
    ldv::ReplayOptions replay;
    replay.package_dir = audit.package_dir;
    replay.scratch_dir = work + "/bob_" + name;
    auto replayer = ldv::Replayer::Open(replay);
    if (!replayer.ok()) return Fail(replayer.status());
    auto replay_report = (*replayer)->Run(HaloFinder);
    if (!replay_report.ok()) return Fail(replay_report.status());

    auto original = ldv::ReadFileToString(sandbox + "/sky/halos.csv");
    auto replayed =
        ldv::ReadFileToString(replay.scratch_dir + "/sky/halos.csv");
    if (!original.ok() || !replayed.ok() || *original != *replayed) {
      std::fprintf(stderr, "[%s] replay diverged!\n", name.c_str());
      return 1;
    }
    std::printf("  replay: byte-identical halos.csv (init %.4fs)\n",
                replay_report->init_seconds);
  }
  std::printf("workdir: %s\n", work.c_str());
  return 0;
}
