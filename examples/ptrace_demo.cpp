// Demonstrates the genuine PTU/CDE capture mechanism: traces a real command
// with ptrace(2), prints its file-access provenance, and builds a CDE-style
// package of everything it read (paper §VII-A / §VII-D, OS side only).
//
//   $ ./ptrace_demo [command args...]      (default: sh -c 'cat ...')

#include <cstdio>
#include <string>
#include <vector>

#include "ldv/packager.h"
#include "os/ptrace_tracer.h"
#include "util/fsutil.h"

int main(int argc, char** argv) {
  auto work = ldv::MakeTempDir("ldv_ptrace_demo_");
  if (!work.ok()) {
    std::fprintf(stderr, "%s\n", work.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> command;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) command.push_back(argv[i]);
  } else {
    // Default demo: a pipeline that reads one file and writes another.
    std::string input = *work + "/input.txt";
    if (auto s = ldv::WriteStringToFile(input, "hello from the tracee\n");
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    command = {"/bin/sh", "-c",
               "cat " + input + " > " + *work + "/copied.txt"};
  }

  ldv::os::PtraceTracer tracer;
  auto report = tracer.Run(command);
  if (!report.ok()) {
    std::fprintf(stderr,
                 "ptrace_demo: %s\n(this environment may forbid ptrace)\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("traced %zu syscall events, exit code %d\n",
              report->events.size(), report->exit_code);
  std::printf("files read (%zu):\n", report->files_read.size());
  for (const std::string& path : report->files_read) {
    std::printf("  R %s\n", path.c_str());
  }
  std::printf("files written (%zu):\n", report->files_written.size());
  for (const std::string& path : report->files_written) {
    std::printf("  W %s\n", path.c_str());
  }
  std::printf("binaries executed (%zu):\n", report->binaries_executed.size());
  for (const std::string& path : report->binaries_executed) {
    std::printf("  X %s\n", path.c_str());
  }

  auto package = ldv::BuildCdePackage(*report, *work + "/cde_package");
  if (!package.ok()) {
    std::fprintf(stderr, "%s\n", package.status().ToString().c_str());
    return 1;
  }
  std::printf("CDE-style package: %lld files, %.3f MB -> %s\n",
              static_cast<long long>(package->files_copied),
              static_cast<double>(package->bytes_copied) / 1e6,
              package->package_dir.c_str());
  return 0;
}
