// crash_torture: kill-at-faultpoint durability torture for the WAL +
// recovery path.
//
// Each iteration forks a writer child that runs a random DML workload
// through the engine (explicit transactions, rollbacks, concurrent writer
// threads, periodic checkpoints) with one fault point armed in crash mode
// (`wal.append`, `wal.tear`, `wal.fsync`, `fs.write`, `fs.rename`), so the
// child _exit(2)s at exactly the chosen call — mid-commit, mid-group-write,
// or mid-checkpoint. The parent then recovers the database from snapshot +
// WAL and checks:
//
//   1. Committed-prefix invariant. Before issuing each commit unit the
//      child appends a durable intent line; after the engine acknowledges
//      it appends an ack line. Every writer thread owns one table, so the
//      recovered content of thread t's table must equal its carried-forward
//      baseline plus a *prefix* of this iteration's intents, and every
//      acknowledged unit must be inside that prefix (an ack means durable).
//   2. Recovery idempotence. Recovering the same snapshot + log twice must
//      produce identical state (recovery never appends to the log, and
//      torn-tail truncation is durable the first time).
//
// A torn final WAL record must be truncated, never fatal; recovery failure
// or a lost acknowledged unit fails the run.
//
// --repl switches to the replication chaos campaign: the parent hosts a hot
// standby streaming from a forked primary (semi-sync commit acks), kills the
// primary at `wal.append` / `wal.fsync` / `net.send` mid-load, randomly
// severs the stream (`repl.stream`), promotes the standby, and verifies zero
// committed-data loss at failover plus bit-identical standby restart.
// Every fifth iteration forces catch-up from the WAL segment files (1-byte
// live ring + severed stream) and asserts it actually happened.
//
// Usage:
//   crash_torture [--repl] [--iters N] [--threads K] [--units M] [--seed S]
//                 [--workdir DIR] [--checkpoint-every C] [--keep]

#include <sys/types.h>
#include <sys/wait.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "exec/wal_redo.h"
#include "net/db_client.h"
#include "net/db_server.h"
#include "obs/metrics.h"
#include "repl/primary.h"
#include "repl/standby.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/fsutil.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using ldv::Result;
using ldv::Status;

// ---------------------------------------------------------------------------
// Workload model and oracle
// ---------------------------------------------------------------------------

// One DML against the thread's own table. Duplicate ids are allowed (no
// primary keys), so the oracle keeps a multiset of values per id: UPDATE
// rewrites every copy, DELETE removes every copy.
struct Op {
  enum class Kind { kInsert, kUpdate, kDelete } kind = Kind::kInsert;
  int64_t id = 0;
  int64_t v = 0;

  std::string Sql(const std::string& table) const {
    switch (kind) {
      case Kind::kInsert:
        return ldv::StrFormat("INSERT INTO %s VALUES (%lld, %lld)",
                              table.c_str(), static_cast<long long>(id),
                              static_cast<long long>(v));
      case Kind::kUpdate:
        return ldv::StrFormat("UPDATE %s SET v = %lld WHERE id = %lld",
                              table.c_str(), static_cast<long long>(v),
                              static_cast<long long>(id));
      case Kind::kDelete:
        return ldv::StrFormat("DELETE FROM %s WHERE id = %lld", table.c_str(),
                              static_cast<long long>(id));
    }
    return "";
  }

  std::string Encode() const {
    const char* k = kind == Kind::kInsert   ? "ins"
                    : kind == Kind::kUpdate ? "upd"
                                            : "del";
    return ldv::StrFormat("%s:%lld:%lld", k, static_cast<long long>(id),
                          static_cast<long long>(v));
  }
};

// One commit unit: a single autocommit statement or an explicit
// BEGIN..COMMIT group. Atomic either way — fully in the recovered state or
// fully absent.
struct Unit {
  std::vector<Op> ops;
};

// id -> values of the live copies.
using TableOracle = std::map<int64_t, std::vector<int64_t>>;

void ApplyToOracle(const Unit& unit, TableOracle* oracle) {
  for (const Op& op : unit.ops) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        (*oracle)[op.id].push_back(op.v);
        break;
      case Op::Kind::kUpdate: {
        auto it = oracle->find(op.id);
        if (it != oracle->end()) {
          for (int64_t& v : it->second) v = op.v;
        }
        break;
      }
      case Op::Kind::kDelete:
        oracle->erase(op.id);
        break;
    }
  }
}

// Canonical "id=v;" listing, sorted by (id, v) — comparable against a
// table scan.
std::string OracleToString(const TableOracle& oracle) {
  std::string out;
  for (const auto& [id, values] : oracle) {
    std::vector<int64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (int64_t v : sorted) {
      out += ldv::StrFormat("%lld=%lld;", static_cast<long long>(id),
                            static_cast<long long>(v));
    }
  }
  return out;
}

Op RandomOp(ldv::Rng* rng) {
  Op op;
  int64_t dice = rng->Uniform(0, 9);
  op.kind = dice < 5   ? Op::Kind::kInsert
            : dice < 8 ? Op::Kind::kUpdate
                       : Op::Kind::kDelete;
  op.id = rng->Uniform(0, 255);
  op.v = rng->Uniform(0, 999'999);
  return op;
}

std::string EncodeUnit(const Unit& unit) {
  std::string out;
  for (size_t i = 0; i < unit.ops.size(); ++i) {
    if (i > 0) out += ",";
    out += unit.ops[i].Encode();
  }
  return out;
}

bool DecodeUnit(const std::string& text, Unit* unit) {
  unit->ops.clear();
  for (const std::string& part : ldv::Split(text, ',')) {
    std::vector<std::string> fields = ldv::Split(part, ':');
    if (fields.size() != 3) return false;
    Op op;
    if (fields[0] == "ins") {
      op.kind = Op::Kind::kInsert;
    } else if (fields[0] == "upd") {
      op.kind = Op::Kind::kUpdate;
    } else if (fields[0] == "del") {
      op.kind = Op::Kind::kDelete;
    } else {
      return false;
    }
    op.id = std::atoll(fields[1].c_str());
    op.v = std::atoll(fields[2].c_str());
    unit->ops.push_back(op);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Durable intent log (the verifier's source of truth)
// ---------------------------------------------------------------------------

class IntentLog {
 public:
  bool OpenForAppend(const std::string& path) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    return fd_ >= 0;
  }

  // Intent lines must be durable *before* the unit is issued: a committed
  // unit whose intent line was lost would look like corruption to the
  // verifier.
  bool AppendDurable(const std::string& line) {
    return Append(line) && ::fsync(fd_) == 0;
  }

  // Ack lines tolerate loss (a lost ack only weakens the check).
  bool Append(const std::string& line) {
    std::string data = line + "\n";
    return ::write(fd_, data.data(), data.size()) ==
           static_cast<ssize_t>(data.size());
  }

  ~IntentLog() {
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Writer child
// ---------------------------------------------------------------------------

struct TortureConfig {
  int iters = 25;
  int threads = 4;
  int units = 40;  // commit units per thread per iteration
  uint64_t seed = 42;
  std::string workdir;
  int64_t checkpoint_every = 8;
  bool keep = false;
  bool repl = false;  // replication chaos campaign (kill + promote)
};

std::string TableName(int thread) { return "t" + std::to_string(thread); }

const char* const kCrashPoints[] = {
    "wal.append", "wal.tear", "wal.fsync", "fs.write", "fs.rename",
};

// Opens the recovered database for writing: recovery, a fresh WAL handle
// continuing the LSN sequence, engine with checkpointing armed.
Status OpenEngine(const std::string& data_dir, const std::string& wal_dir,
                  int64_t checkpoint_every, ldv::storage::Database* db,
                  std::unique_ptr<ldv::net::EngineHandle>* engine) {
  ldv::storage::RecoveryStats stats;
  LDV_RETURN_IF_ERROR(ldv::exec::RecoverWithWal(db, data_dir, wal_dir, &stats));
  LDV_ASSIGN_OR_RETURN(
      std::unique_ptr<ldv::storage::Wal> wal,
      ldv::storage::Wal::Open(wal_dir, ldv::storage::WalOptions{},
                              stats.next_lsn));
  *engine = std::make_unique<ldv::net::EngineHandle>(db);
  ldv::net::EngineDurabilityOptions durability;
  durability.data_dir = data_dir;
  durability.checkpoint_every = checkpoint_every;
  (*engine)->AttachWal(std::move(wal), durability);
  return Status::Ok();
}

// Creates every writer thread's table and makes them durable. Tables must
// exist before any fault is armed: their CREATE belongs to the baseline,
// not to an intent prefix.
Status CreateTables(const TortureConfig& config,
                    ldv::net::EngineHandle* engine) {
  for (int t = 0; t < config.threads; ++t) {
    ldv::net::DbRequest create;
    create.sql = "CREATE TABLE IF NOT EXISTS " + TableName(t) +
                 " (id INT, v INT)";
    Result<ldv::exec::ResultSet> created = engine->Execute(create);
    if (!created.ok()) return created.status();
  }
  return engine->FlushWal();
}

// The writer workload: one thread per table, intent-log discipline as
// documented at the top of the file. Shared by the plain and --repl
// children.
void RunWriterThreads(const TortureConfig& config,
                      ldv::net::EngineHandle* engine,
                      const std::string& intent_dir, uint64_t iter_seed) {
  std::vector<std::thread> writers;
  for (int t = 0; t < config.threads; ++t) {
    writers.emplace_back([&, t] {
      ldv::Rng rng(iter_seed * 0x9E3779B9ULL + static_cast<uint64_t>(t));
      IntentLog log;
      if (!log.OpenForAppend(
              ldv::JoinPath(intent_dir, "intent-" + std::to_string(t) +
                                            ".log"))) {
        return;
      }
      const std::string table = TableName(t);
      const int64_t session = t + 1;
      for (int u = 0; u < config.units; ++u) {
        // Occasionally open a transaction just to roll it back: aborted
        // work must never reach the log nor disturb redo determinism.
        if (rng.Bernoulli(0.1)) {
          ldv::net::DbRequest req;
          req.sql = "BEGIN";
          if (engine->ExecuteSession(req, session).ok()) {
            req.sql = RandomOp(&rng).Sql(table);
            (void)engine->ExecuteSession(req, session);
            req.sql = "ROLLBACK";
            (void)engine->ExecuteSession(req, session);
          }
        }

        Unit unit;
        const bool txn = rng.Bernoulli(0.3);
        const int64_t ops = txn ? rng.Uniform(2, 4) : 1;
        for (int64_t i = 0; i < ops; ++i) unit.ops.push_back(RandomOp(&rng));

        if (!log.AppendDurable("I " + EncodeUnit(unit))) return;
        // A failed unit ends this writer's stream: the verifier's oracle
        // needs the committed units to be a *prefix* of the intent log, so
        // pressing on past a failure (leaving a hole) would make a correct
        // recovery look corrupt. The failure itself is loud — an engine
        // that refuses writes mid-campaign is worth investigating.
        Status failed = Status::Ok();
        if (txn) {
          ldv::net::DbRequest req;
          req.sql = "BEGIN";
          failed = engine->ExecuteSession(req, session).status();
          for (const Op& op : unit.ops) {
            if (!failed.ok()) break;
            req.sql = op.Sql(table);
            failed = engine->ExecuteSession(req, session).status();
          }
          if (failed.ok()) {
            req.sql = "COMMIT";
            failed = engine->ExecuteSession(req, session).status();
          } else {
            req.sql = "ROLLBACK";
            (void)engine->ExecuteSession(req, session);
          }
        } else {
          ldv::net::DbRequest req;
          req.sql = unit.ops[0].Sql(table);
          failed = engine->ExecuteSession(req, session).status();
        }
        if (!failed.ok()) {
          std::fprintf(stderr,
                       "crash_torture: writer %s unit %d failed (stopping "
                       "this writer): %s\n",
                       table.c_str(), u, failed.ToString().c_str());
          return;
        }
        if (!log.Append("A")) return;
      }
    });
  }
  for (std::thread& w : writers) w.join();
}

// Runs in the forked child: recover, arm the crash fault, hammer the engine
// until the fault kills the process (or the workload completes and the
// child exits 0). Exit code 3 = setup failure (always fails the run).
int RunWriterChild(const TortureConfig& config, const std::string& data_dir,
                   const std::string& wal_dir, const std::string& intent_dir,
                   uint64_t iter_seed, const std::string& fault_spec) {
  ldv::storage::Database db;
  std::unique_ptr<ldv::net::EngineHandle> engine;
  Status opened = OpenEngine(data_dir, wal_dir, config.checkpoint_every, &db,
                             &engine);
  if (!opened.ok()) {
    std::fprintf(stderr, "child: open failed: %s\n",
                 opened.ToString().c_str());
    return 3;
  }

  Status created = CreateTables(config, engine.get());
  if (!created.ok()) {
    std::fprintf(stderr, "child: create failed: %s\n",
                 created.ToString().c_str());
    return 3;
  }

  if (!fault_spec.empty()) {
    ldv::FaultInjector& injector = ldv::FaultInjector::Instance();
    Status configured = injector.ConfigureFromSpec(fault_spec);
    if (!configured.ok()) {
      std::fprintf(stderr, "child: bad fault spec: %s\n",
                   configured.ToString().c_str());
      return 3;
    }
    injector.Enable(iter_seed);
  }

  RunWriterThreads(config, engine.get(), intent_dir, iter_seed);
  ldv::FaultInjector::Instance().Disable();
  return 0;
}

// The forked primary of a --repl iteration: a full replicating server
// (engine + ReplicationManager + DbServer) under semi-sync commit acks with
// eviction disabled, so a commit acknowledgement *proves* the standby holds
// the unit — the invariant the failover check rides on. No commit happens
// before the parent's standby subscribes: from the first unit on, the ack
// barrier vouches for it and the retire floor protects the segments it may
// still need.
int RunReplPrimaryChild(const TortureConfig& config,
                        const std::string& data_dir,
                        const std::string& wal_dir,
                        const std::string& intent_dir,
                        const std::string& socket_path,
                        const std::string& stats_path, uint64_t iter_seed,
                        const std::string& fault_spec,
                        size_t ring_capacity_bytes) {
  ldv::storage::Database db;
  std::unique_ptr<ldv::net::EngineHandle> engine;
  Status opened = OpenEngine(data_dir, wal_dir, config.checkpoint_every, &db,
                             &engine);
  if (!opened.ok()) {
    std::fprintf(stderr, "child: open failed: %s\n",
                 opened.ToString().c_str());
    return 3;
  }

  ldv::repl::ReplicationManager::Options manager_options;
  manager_options.ack_timeout_millis = 0;  // commits wait for the standby
  manager_options.ring_capacity_bytes = ring_capacity_bytes;
  ldv::repl::ReplicationManager manager(engine->wal(), manager_options);
  engine->set_commit_ack_barrier(
      [&manager](uint64_t lsn) { return manager.WaitDurable(lsn); });
  engine->set_wal_retire_floor([&manager] { return manager.RetireFloor(); });

  ldv::net::DbServer server(engine.get(), socket_path);
  server.set_repl_handler([&manager](const ldv::net::DbRequest& request) {
    return manager.HandleRequest(request);
  });
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "child: server start failed: %s\n",
                 started.ToString().c_str());
    return 3;
  }

  for (int waited = 0; manager.standby_count() < 1; waited += 10) {
    if (waited >= 30'000) {
      std::fprintf(stderr, "child: standby never subscribed\n");
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  Status created = CreateTables(config, engine.get());
  if (!created.ok()) {
    std::fprintf(stderr, "child: create failed: %s\n",
                 created.ToString().c_str());
    return 3;
  }

  if (!fault_spec.empty()) {
    ldv::FaultInjector& injector = ldv::FaultInjector::Instance();
    Status configured = injector.ConfigureFromSpec(fault_spec);
    if (!configured.ok()) {
      std::fprintf(stderr, "child: bad fault spec: %s\n",
                   configured.ToString().c_str());
      return 3;
    }
    injector.Enable(iter_seed);
  }

  RunWriterThreads(config, engine.get(), intent_dir, iter_seed);
  ldv::FaultInjector::Instance().Disable();

  if (!stats_path.empty()) {
    // Forced catch-up iterations run clean so this report survives: the
    // parent asserts the segment-file path actually served batches.
    const long long catchups = ldv::obs::MetricsRegistry::Global()
                                   .counter("repl.disk_catchup_batches")
                                   ->Value();
    FILE* stats = std::fopen(stats_path.c_str(), "w");
    if (stats != nullptr) {
      std::fprintf(stats, "%lld\n", catchups);
      std::fclose(stats);
    }
  }
  manager.Shutdown();
  server.Stop();
  return 0;
}

// ---------------------------------------------------------------------------
// Parent-side verification
// ---------------------------------------------------------------------------

struct ThreadIntents {
  std::vector<Unit> units;
  size_t acked = 0;  // acks are a prefix: the writer issues sequentially
};

bool LoadIntents(const std::string& path, ThreadIntents* out) {
  *out = ThreadIntents{};
  if (!ldv::FileExists(path)) return true;  // thread never got started
  Result<std::string> text = ldv::ReadFileToString(path);
  if (!text.ok()) return false;
  for (const std::string& line : ldv::Split(*text, '\n')) {
    if (line.empty()) continue;
    if (line == "A") {
      ++out->acked;
    } else if (line.rfind("I ", 0) == 0) {
      Unit unit;
      if (!DecodeUnit(line.substr(2), &unit)) return false;
      out->units.push_back(std::move(unit));
    } else {
      return false;
    }
  }
  return out->acked <= out->units.size();
}

// Scans one recovered table into the oracle's canonical string form.
Result<std::string> ScanTable(ldv::exec::Executor* executor,
                              const std::string& table) {
  Result<ldv::exec::ResultSet> rows = executor->Execute(
      "SELECT id, v FROM " + table + " ORDER BY id, v", {});
  if (!rows.ok()) return rows.status();
  std::string out;
  for (const auto& row : rows->rows) {
    out += ldv::StrFormat("%lld=%lld;",
                          static_cast<long long>(row[0].AsInt()),
                          static_cast<long long>(row[1].AsInt()));
  }
  return out;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "crash_torture: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

struct TortureTotals {
  int64_t crashes = 0;
  int64_t clean_exits = 0;
  int64_t torn_tails = 0;
  int64_t units_committed = 0;
  int64_t txns_replayed = 0;
  int64_t failovers = 0;
  int64_t disk_catchup_batches = 0;
  std::map<std::string, int64_t> crashes_by_point;
};

// ---------------------------------------------------------------------------
// Replication chaos (--repl)
// ---------------------------------------------------------------------------

// Kill points for the replicating primary: mid-WAL-append, mid-fsync, and
// mid-response-send (dying with a replication batch on the wire).
const char* const kReplCrashPoints[] = {"wal.append", "wal.fsync", "net.send"};

// The parent-side hot standby — the survivor of every kill. It lives in the
// parent process so a primary crash never takes it down.
struct StandbyNode {
  ldv::storage::Database db;
  std::unique_ptr<ldv::net::EngineHandle> engine;
  std::unique_ptr<ldv::repl::StandbyReplicator> replicator;
};

Status OpenStandby(const std::string& data_dir, const std::string& wal_dir,
                   const std::string& primary_socket, StandbyNode* node) {
  ldv::storage::RecoveryStats stats;
  LDV_RETURN_IF_ERROR(
      ldv::exec::RecoverWithWal(&node->db, data_dir, wal_dir, &stats));
  LDV_ASSIGN_OR_RETURN(
      std::unique_ptr<ldv::storage::Wal> wal,
      ldv::storage::Wal::Open(wal_dir, ldv::storage::WalOptions{},
                              stats.next_lsn));
  node->engine = std::make_unique<ldv::net::EngineHandle>(&node->db);
  ldv::net::EngineDurabilityOptions durability;
  durability.data_dir = data_dir;
  node->engine->AttachWal(std::move(wal), durability);
  ldv::repl::StandbyReplicator::Options options;
  options.standby_name = "torture-standby";
  options.retry_backoff_millis = 50;  // reconnect fast after a severance
  node->replicator = std::make_unique<ldv::repl::StandbyReplicator>(
      node->engine.get(), primary_socket, options);
  node->replicator->Start();
  return Status::Ok();
}

// Scans through the engine (the MVCC read path the standby serves clients
// from); "" when the table never reached this node.
Result<std::string> ScanStandby(StandbyNode* node, const std::string& table) {
  if (node->db.FindTable(table) == nullptr) return std::string();
  ldv::net::DbRequest request;
  request.sql = "SELECT id, v FROM " + table + " ORDER BY id, v";
  Result<ldv::exec::ResultSet> rows = node->engine->Execute(request);
  if (!rows.ok()) return rows.status();
  std::string out;
  for (const auto& row : rows->rows) {
    out += ldv::StrFormat("%lld=%lld;",
                          static_cast<long long>(row[0].AsInt()),
                          static_cast<long long>(row[1].AsInt()));
  }
  return out;
}

// The replication campaign. Each iteration: re-seed the standby from a base
// backup of the primary's verified durable state, start it streaming, fork
// a primary under load, kill it at a fault point (or let it finish), then
// promote the standby and verify:
//
//   1. Zero committed-data loss at failover: every acknowledged unit
//      (semi-sync — acknowledged implies standby-durable) is in the
//      promoted standby's tables.
//   2. The promoted state is an intent prefix on top of the baseline (the
//      stream never invents, drops, or reorders writes).
//   3. Standby restart determinism: recovering the standby's own data dir +
//      WAL from scratch reproduces the promoted tables exactly.
//   4. The primary's own recovery stays idempotent and retains at least
//      every acknowledged unit (same oracle as the plain campaign).
//
// Every fifth iteration runs clean with a 1-byte live ring and the stream
// severed at random (`repl.stream`), so every batch must come off the WAL
// segment files — the child's disk-catch-up counter proves the path ran.
int RunReplTorture(const TortureConfig& config) {
  const std::string primary_data =
      ldv::JoinPath(config.workdir, "primary-data");
  const std::string primary_wal = ldv::JoinPath(config.workdir, "primary-wal");
  const std::string standby_data =
      ldv::JoinPath(config.workdir, "standby-data");
  const std::string standby_wal = ldv::JoinPath(config.workdir, "standby-wal");
  const std::string intent_dir = ldv::JoinPath(config.workdir, "intents");
  const std::string socket_path = ldv::JoinPath(config.workdir, "primary.sock");
  const std::string stats_path = ldv::JoinPath(config.workdir, "child-stats");
  Status made = ldv::MakeDirs(intent_dir);
  if (!made.ok()) return Fail("mkdir", made);

  std::vector<TableOracle> baseline(static_cast<size_t>(config.threads));
  TortureTotals totals;

  for (int iter = 0; iter < config.iters; ++iter) {
    const uint64_t iter_seed =
        config.seed * 1000003ULL + static_cast<uint64_t>(iter);
    ldv::Rng plan_rng(iter_seed ^ 0xD1B54A32D192ED03ULL);

    // Every fifth iteration forces catch-up-from-segments; the rest mix
    // random kills, random severance, and occasionally a small ring.
    const bool catchup_iter = iter % 5 == 1;
    std::string fault_spec;
    std::string point;
    size_t ring_capacity = 4u << 20;
    bool sever = true;
    if (catchup_iter) {
      ring_capacity = 1;  // the ring retains nothing: live serving impossible
    } else {
      sever = plan_rng.Bernoulli(0.5);
      if (plan_rng.Bernoulli(0.3)) ring_capacity = 4096;
      if (!plan_rng.Bernoulli(0.15)) {
        point = kReplCrashPoints[plan_rng.Uniform(
            0, static_cast<int64_t>(std::size(kReplCrashPoints)) - 1)];
        const int64_t commits =
            static_cast<int64_t>(config.threads) * config.units;
        // net.send also fires on long-poll responses; give it headroom.
        const int64_t after = point == "net.send"
                                  ? plan_rng.Uniform(0, commits * 3)
                                  : plan_rng.Uniform(0, commits);
        fault_spec = ldv::StrFormat("%s=after:%lld,crash:1", point.c_str(),
                                    static_cast<long long>(after));
      }
    }

    for (int t = 0; t < config.threads; ++t) {
      (void)ldv::RemoveAll(
          ldv::JoinPath(intent_dir, "intent-" + std::to_string(t) + ".log"));
    }
    (void)ldv::RemoveAll(stats_path);

    // Base backup: each iteration's standby starts from a copy of the
    // primary's verified durable state — a promoted standby never rejoins
    // the stream.
    (void)ldv::RemoveAll(standby_data);
    (void)ldv::RemoveAll(standby_wal);
    if (ldv::DirExists(primary_data)) {
      Status copied = ldv::CopyTree(primary_data, standby_data);
      if (!copied.ok()) return Fail("base backup (data)", copied);
    }
    if (ldv::DirExists(primary_wal)) {
      Status copied = ldv::CopyTree(primary_wal, standby_wal);
      if (!copied.ok()) return Fail("base backup (wal)", copied);
    }

    StandbyNode standby;
    Status standby_up =
        OpenStandby(standby_data, standby_wal, socket_path, &standby);
    if (!standby_up.ok()) return Fail("standby open", standby_up);

    ldv::FaultInjector& injector = ldv::FaultInjector::Instance();
    if (sever) {
      // Parent-side: randomly cut the stream mid-load; the standby must
      // reconnect, resubscribe, and close the gap without losing an ack.
      injector.Reset();
      Status armed = injector.ConfigureFromSpec("repl.stream=p:0.2");
      if (!armed.ok()) return Fail("sever spec", armed);
      injector.Enable(iter_seed ^ 0x5DEECE66DULL);
    }

    pid_t pid = fork();
    if (pid < 0) return Fail("fork", Status::IOError(strerror(errno)));
    if (pid == 0) {
      _exit(RunReplPrimaryChild(config, primary_data, primary_wal, intent_dir,
                                socket_path, catchup_iter ? stats_path : "",
                                iter_seed, fault_spec, ring_capacity));
    }
    // Bounded wait: a deadlocked stream must fail the run, not hang it.
    int wstatus = 0;
    bool exited = false;
    for (int waited = 0; waited < 180'000; waited += 10) {
      pid_t done = waitpid(pid, &wstatus, WNOHANG);
      if (done < 0) return Fail("waitpid", Status::IOError(strerror(errno)));
      if (done == pid) {
        exited = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    injector.Reset();
    if (!exited) {
      (void)kill(pid, SIGKILL);
      (void)waitpid(pid, &wstatus, 0);
      std::fprintf(stderr,
                   "crash_torture: iter %d (%s): child hung (deadlocked "
                   "replication?)\n",
                   iter, fault_spec.c_str());
      return 1;
    }
    const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 3) {
      std::fprintf(stderr, "crash_torture: iter %d: child setup failed\n",
                   iter);
      return 1;
    }
    if (clean) {
      ++totals.clean_exits;
    } else {
      ++totals.crashes;
      ++totals.crashes_by_point[point.empty() ? "(exit)" : point];
    }

    // Failover. A fatal stream error (LSN gap, failed apply) means
    // replication corrupted itself — never acceptable.
    if (standby.replicator->fatal()) {
      std::fprintf(stderr, "crash_torture: iter %d (%s): standby fatal: %s\n",
                   iter, fault_spec.c_str(),
                   standby.replicator->last_error().c_str());
      return 1;
    }
    (void)standby.replicator->Promote();
    ++totals.failovers;

    if (catchup_iter && clean) {
      Result<std::string> reported = ldv::ReadFileToString(stats_path);
      const long long catchups =
          reported.ok() ? std::atoll(reported->c_str()) : 0;
      if (catchups <= 0) {
        std::fprintf(stderr,
                     "crash_torture: iter %d: forced catch-up served no "
                     "batches from segment files\n",
                     iter);
        return 1;
      }
      totals.disk_catchup_batches += catchups;
    }

    // Primary-side recovery, twice (idempotence), as in the plain campaign.
    ldv::storage::Database db;
    ldv::storage::RecoveryStats stats;
    Status recovered =
        ldv::exec::RecoverWithWal(&db, primary_data, primary_wal, &stats);
    if (!recovered.ok()) {
      std::fprintf(stderr,
                   "crash_torture: iter %d (%s): RECOVERY FAILED: %s\n", iter,
                   fault_spec.c_str(), recovered.ToString().c_str());
      return 1;
    }
    if (stats.truncated_torn_tail) ++totals.torn_tails;
    totals.txns_replayed += stats.txns_applied;

    ldv::storage::Database db2;
    ldv::storage::RecoveryStats stats2;
    Status recovered2 =
        ldv::exec::RecoverWithWal(&db2, primary_data, primary_wal, &stats2);
    if (!recovered2.ok()) {
      std::fprintf(stderr,
                   "crash_torture: iter %d: second recovery failed: %s\n",
                   iter, recovered2.ToString().c_str());
      return 1;
    }
    if (stats2.truncated_torn_tail) {
      std::fprintf(stderr,
                   "crash_torture: iter %d: second recovery saw a torn tail "
                   "(truncation was not durable)\n",
                   iter);
      return 1;
    }

    // Standby restart determinism: a fresh recovery of the standby's own
    // dirs must reproduce the promoted in-memory tables exactly.
    ldv::storage::Database standby_rebuilt;
    ldv::storage::RecoveryStats standby_stats;
    Status standby_recovered = ldv::exec::RecoverWithWal(
        &standby_rebuilt, standby_data, standby_wal, &standby_stats);
    if (!standby_recovered.ok()) {
      std::fprintf(stderr,
                   "crash_torture: iter %d: standby recovery failed: %s\n",
                   iter, standby_recovered.ToString().c_str());
      return 1;
    }

    ldv::exec::Executor executor(&db);
    ldv::exec::Executor executor2(&db2);
    ldv::exec::Executor standby_executor(&standby_rebuilt);
    for (int t = 0; t < config.threads; ++t) {
      const std::string table = TableName(t);
      if (db.FindTable(table) == nullptr) continue;
      Result<std::string> got = ScanTable(&executor, table);
      if (!got.ok()) return Fail("scan", got.status());
      Result<std::string> again = ScanTable(&executor2, table);
      if (!again.ok()) return Fail("rescan", again.status());
      if (*got != *again) {
        std::fprintf(stderr,
                     "crash_torture: iter %d: recovery not idempotent for "
                     "%s\n  first : %s\n  second: %s\n",
                     iter, table.c_str(), got->c_str(), again->c_str());
        return 1;
      }

      Result<std::string> standby_got = ScanStandby(&standby, table);
      if (!standby_got.ok()) {
        return Fail("standby scan", standby_got.status());
      }
      if (standby.db.FindTable(table) != nullptr) {
        if (standby_rebuilt.FindTable(table) == nullptr) {
          std::fprintf(stderr,
                       "crash_torture: iter %d: %s missing after standby "
                       "restart\n",
                       iter, table.c_str());
          return 1;
        }
        Result<std::string> standby_again =
            ScanTable(&standby_executor, table);
        if (!standby_again.ok()) {
          return Fail("standby rescan", standby_again.status());
        }
        if (*standby_got != *standby_again) {
          std::fprintf(stderr,
                       "crash_torture: iter %d: standby restart not "
                       "identical for %s\n  promoted : %s\n  recovered: %s\n",
                       iter, table.c_str(), standby_got->c_str(),
                       standby_again->c_str());
          return 1;
        }
      }

      ThreadIntents intents;
      if (!LoadIntents(ldv::JoinPath(intent_dir,
                                     "intent-" + std::to_string(t) + ".log"),
                       &intents)) {
        std::fprintf(stderr,
                     "crash_torture: iter %d: intent log for %s unreadable\n",
                     iter, table.c_str());
        return 1;
      }

      // Prefix walks over the same intents: once for the primary's
      // recovered state, once for the promoted standby.
      TableOracle oracle = baseline[static_cast<size_t>(t)];
      size_t matched_primary = SIZE_MAX;
      size_t matched_standby = SIZE_MAX;
      std::string state = OracleToString(oracle);
      if (state == *got) matched_primary = 0;
      if (state == *standby_got) matched_standby = 0;
      for (size_t k = 0; k < intents.units.size(); ++k) {
        ApplyToOracle(intents.units[k], &oracle);
        state = OracleToString(oracle);
        if (state == *got) matched_primary = k + 1;
        if (state == *standby_got) matched_standby = k + 1;
      }
      if (matched_primary == SIZE_MAX) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): %s matches no intent "
                     "prefix (%zu units, %zu acked)\n  recovered: %s\n",
                     iter, fault_spec.c_str(), table.c_str(),
                     intents.units.size(), intents.acked, got->c_str());
        return 1;
      }
      if (matched_standby == SIZE_MAX) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): promoted standby's %s "
                     "matches no intent prefix (%zu units, %zu acked)\n"
                     "  standby: %s\n",
                     iter, fault_spec.c_str(), table.c_str(),
                     intents.units.size(), intents.acked,
                     standby_got->c_str());
        return 1;
      }
      if (matched_standby < intents.acked) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): COMMITTED DATA LOST AT "
                     "FAILOVER on %s: %zu units acknowledged, promoted "
                     "standby has %zu\n",
                     iter, fault_spec.c_str(), table.c_str(), intents.acked,
                     matched_standby);
        return 1;
      }
      if (matched_primary < intents.acked) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): COMMITTED DATA LOST on "
                     "%s: %zu units acknowledged, only %zu recovered\n",
                     iter, fault_spec.c_str(), table.c_str(), intents.acked,
                     matched_primary);
        return 1;
      }

      // The next iteration's primary continues from its own recovered
      // state, so the baseline folds the primary's surviving prefix.
      TableOracle next = baseline[static_cast<size_t>(t)];
      for (size_t k = 0; k < matched_primary; ++k) {
        ApplyToOracle(intents.units[k], &next);
      }
      baseline[static_cast<size_t>(t)] = std::move(next);
      totals.units_committed += static_cast<int64_t>(matched_primary);
    }
  }

  std::printf(
      "crash_torture --repl: OK — %d iterations, %lld primary kills (%lld "
      "clean), %lld failovers verified, %lld catch-up batches from segment "
      "files, %lld torn tails truncated, %lld units committed, %lld txns "
      "replayed\n",
      config.iters, static_cast<long long>(totals.crashes),
      static_cast<long long>(totals.clean_exits),
      static_cast<long long>(totals.failovers),
      static_cast<long long>(totals.disk_catchup_batches),
      static_cast<long long>(totals.torn_tails),
      static_cast<long long>(totals.units_committed),
      static_cast<long long>(totals.txns_replayed));
  for (const auto& [crash_point, count] : totals.crashes_by_point) {
    std::printf("  kills at %-12s %lld\n", crash_point.c_str(),
                static_cast<long long>(count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  TortureConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--iters") {
      config.iters = std::atoi(next());
    } else if (arg == "--threads") {
      config.threads = std::atoi(next());
    } else if (arg == "--units") {
      config.units = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--workdir") {
      config.workdir = next();
    } else if (arg == "--checkpoint-every") {
      config.checkpoint_every = std::atoll(next());
    } else if (arg == "--keep") {
      config.keep = true;
    } else if (arg == "--repl") {
      config.repl = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: crash_torture [--repl] [--iters N] [--threads K] "
          "[--units M] [--seed S] [--workdir DIR] [--checkpoint-every C] "
          "[--keep]\n");
      return 0;
    } else {
      std::fprintf(stderr, "crash_torture: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  bool temp_workdir = config.workdir.empty();
  if (temp_workdir) {
    Result<std::string> made = ldv::MakeTempDir("crash_torture");
    if (!made.ok()) return Fail("mktemp", made.status());
    config.workdir = *made;
  }

  if (config.repl) {
    int rc = RunReplTorture(config);
    if (rc == 0 && temp_workdir && !config.keep) {
      (void)ldv::RemoveAll(config.workdir);
    }
    return rc;
  }

  const std::string data_dir = ldv::JoinPath(config.workdir, "data");
  const std::string wal_dir = ldv::JoinPath(config.workdir, "wal");
  const std::string intent_dir = ldv::JoinPath(config.workdir, "intents");
  Status made = ldv::MakeDirs(intent_dir);
  if (!made.ok()) return Fail("mkdir", made);

  // Per-table expected state, carried across iterations (each iteration's
  // verified prefix folds into the baseline the next iteration builds on).
  std::vector<TableOracle> baseline(static_cast<size_t>(config.threads));
  TortureTotals totals;

  for (int iter = 0; iter < config.iters; ++iter) {
    const uint64_t iter_seed = config.seed * 1000003ULL +
                               static_cast<uint64_t>(iter);
    ldv::Rng plan_rng(iter_seed ^ 0xD1B54A32D192ED03ULL);

    // Fault plan: most iterations crash at a random point after a random
    // number of calls; some run to completion (clean path must stay clean).
    std::string fault_spec;
    std::string point;
    if (!plan_rng.Bernoulli(0.15)) {
      point = kCrashPoints[plan_rng.Uniform(
          0, static_cast<int64_t>(std::size(kCrashPoints)) - 1)];
      // Scale the trigger to how often the point actually fires so most
      // iterations die mid-run: wal.* points fire roughly once per commit
      // unit, fs.* only during checkpoints (one call per table + catalog).
      const int64_t commits = static_cast<int64_t>(config.threads) *
                              config.units;
      int64_t after =
          point.rfind("fs.", 0) == 0
              ? plan_rng.Uniform(
                    0, std::max<int64_t>(
                           4, commits / std::max<int64_t>(
                                            1, config.checkpoint_every) *
                                  (config.threads + 1)))
              : plan_rng.Uniform(0, commits);
      fault_spec = ldv::StrFormat("%s=after:%lld,crash:1", point.c_str(),
                                  static_cast<long long>(after));
    }

    // Fresh intent logs: verified prefixes of earlier iterations already
    // live in `baseline`.
    for (int t = 0; t < config.threads; ++t) {
      (void)ldv::RemoveAll(
          ldv::JoinPath(intent_dir, "intent-" + std::to_string(t) + ".log"));
    }

    pid_t pid = fork();
    if (pid < 0) {
      return Fail("fork", Status::IOError(strerror(errno)));
    }
    if (pid == 0) {
      _exit(RunWriterChild(config, data_dir, wal_dir, intent_dir, iter_seed,
                           fault_spec));
    }
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) < 0) {
      return Fail("waitpid", Status::IOError(strerror(errno)));
    }
    const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 3) {
      std::fprintf(stderr, "crash_torture: iter %d: child setup failed\n",
                   iter);
      return 1;
    }
    if (clean) {
      ++totals.clean_exits;
    } else {
      ++totals.crashes;
      ++totals.crashes_by_point[point.empty() ? "(exit)" : point];
    }

    // Recover twice into independent databases: the second run checks
    // idempotence (the first may durably truncate a torn tail; the second
    // must find a clean log and rebuild identical state).
    ldv::storage::Database db;
    ldv::storage::RecoveryStats stats;
    Status recovered =
        ldv::exec::RecoverWithWal(&db, data_dir, wal_dir, &stats);
    if (!recovered.ok()) {
      std::fprintf(stderr,
                   "crash_torture: iter %d (%s): RECOVERY FAILED: %s\n", iter,
                   fault_spec.c_str(), recovered.ToString().c_str());
      return 1;
    }
    if (stats.truncated_torn_tail) ++totals.torn_tails;
    totals.txns_replayed += stats.txns_applied;

    ldv::storage::Database db2;
    ldv::storage::RecoveryStats stats2;
    Status recovered2 =
        ldv::exec::RecoverWithWal(&db2, data_dir, wal_dir, &stats2);
    if (!recovered2.ok()) {
      std::fprintf(stderr,
                   "crash_torture: iter %d: second recovery failed: %s\n",
                   iter, recovered2.ToString().c_str());
      return 1;
    }
    if (stats2.truncated_torn_tail) {
      std::fprintf(stderr,
                   "crash_torture: iter %d: second recovery saw a torn tail "
                   "(truncation was not durable)\n",
                   iter);
      return 1;
    }

    ldv::exec::Executor executor(&db);
    ldv::exec::Executor executor2(&db2);
    for (int t = 0; t < config.threads; ++t) {
      const std::string table = TableName(t);
      if (db.FindTable(table) == nullptr) {
        // The child died before CREATE TABLE became durable; nothing can
        // have committed into it.
        continue;
      }
      Result<std::string> got = ScanTable(&executor, table);
      if (!got.ok()) return Fail("scan", got.status());
      Result<std::string> again = ScanTable(&executor2, table);
      if (!again.ok()) return Fail("rescan", again.status());
      if (*got != *again) {
        std::fprintf(stderr,
                     "crash_torture: iter %d: recovery not idempotent for "
                     "%s\n  first : %s\n  second: %s\n",
                     iter, table.c_str(), got->c_str(), again->c_str());
        return 1;
      }

      ThreadIntents intents;
      if (!LoadIntents(ldv::JoinPath(intent_dir,
                                     "intent-" + std::to_string(t) + ".log"),
                       &intents)) {
        std::fprintf(stderr,
                     "crash_torture: iter %d: intent log for %s unreadable\n",
                     iter, table.c_str());
        return 1;
      }

      // Committed-prefix check: walk every prefix of this iteration's
      // intents on top of the baseline. The *largest* matching prefix is
      // the committed one — no-op units (UPDATE/DELETE of an absent id)
      // leave the state unchanged, so shorter prefixes can coincide.
      TableOracle oracle = baseline[static_cast<size_t>(t)];
      size_t matched = SIZE_MAX;
      if (OracleToString(oracle) == *got) matched = 0;
      for (size_t k = 0; k < intents.units.size(); ++k) {
        ApplyToOracle(intents.units[k], &oracle);
        if (OracleToString(oracle) == *got) matched = k + 1;
      }
      if (matched == SIZE_MAX) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): %s matches no intent "
                     "prefix (%zu units, %zu acked)\n  recovered: %s\n",
                     iter, fault_spec.c_str(), table.c_str(),
                     intents.units.size(), intents.acked, got->c_str());
        return 1;
      }
      if (matched < intents.acked) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): COMMITTED DATA LOST on "
                     "%s: %zu units acknowledged, only %zu recovered\n",
                     iter, fault_spec.c_str(), table.c_str(), intents.acked,
                     matched);
        return 1;
      }

      // Fold the surviving prefix into the baseline for the next iteration.
      TableOracle next = baseline[static_cast<size_t>(t)];
      for (size_t k = 0; k < matched; ++k) {
        ApplyToOracle(intents.units[k], &next);
      }
      baseline[static_cast<size_t>(t)] = std::move(next);
      totals.units_committed += static_cast<int64_t>(matched);
    }
  }

  std::printf(
      "crash_torture: OK — %d iterations, %lld crashes (%lld clean), "
      "%lld torn tails truncated, %lld units committed, %lld txns "
      "replayed\n",
      config.iters, static_cast<long long>(totals.crashes),
      static_cast<long long>(totals.clean_exits),
      static_cast<long long>(totals.torn_tails),
      static_cast<long long>(totals.units_committed),
      static_cast<long long>(totals.txns_replayed));
  for (const auto& [point, count] : totals.crashes_by_point) {
    std::printf("  crashes at %-12s %lld\n", point.c_str(),
                static_cast<long long>(count));
  }
  if (temp_workdir && !config.keep) (void)ldv::RemoveAll(config.workdir);
  return 0;
}
