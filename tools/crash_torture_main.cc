// crash_torture: kill-at-faultpoint durability torture for the WAL +
// recovery path.
//
// Each iteration forks a writer child that runs a random DML workload
// through the engine (explicit transactions, rollbacks, concurrent writer
// threads, periodic checkpoints) with one fault point armed in crash mode
// (`wal.append`, `wal.tear`, `wal.fsync`, `fs.write`, `fs.rename`), so the
// child _exit(2)s at exactly the chosen call — mid-commit, mid-group-write,
// or mid-checkpoint. The parent then recovers the database from snapshot +
// WAL and checks:
//
//   1. Committed-prefix invariant. Before issuing each commit unit the
//      child appends a durable intent line; after the engine acknowledges
//      it appends an ack line. Every writer thread owns one table, so the
//      recovered content of thread t's table must equal its carried-forward
//      baseline plus a *prefix* of this iteration's intents, and every
//      acknowledged unit must be inside that prefix (an ack means durable).
//   2. Recovery idempotence. Recovering the same snapshot + log twice must
//      produce identical state (recovery never appends to the log, and
//      torn-tail truncation is durable the first time).
//
// A torn final WAL record must be truncated, never fatal; recovery failure
// or a lost acknowledged unit fails the run.
//
// Usage:
//   crash_torture [--iters N] [--threads K] [--units M] [--seed S]
//                 [--workdir DIR] [--checkpoint-every C] [--keep]

#include <sys/types.h>
#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "exec/wal_redo.h"
#include "net/db_client.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/fsutil.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using ldv::Result;
using ldv::Status;

// ---------------------------------------------------------------------------
// Workload model and oracle
// ---------------------------------------------------------------------------

// One DML against the thread's own table. Duplicate ids are allowed (no
// primary keys), so the oracle keeps a multiset of values per id: UPDATE
// rewrites every copy, DELETE removes every copy.
struct Op {
  enum class Kind { kInsert, kUpdate, kDelete } kind = Kind::kInsert;
  int64_t id = 0;
  int64_t v = 0;

  std::string Sql(const std::string& table) const {
    switch (kind) {
      case Kind::kInsert:
        return ldv::StrFormat("INSERT INTO %s VALUES (%lld, %lld)",
                              table.c_str(), static_cast<long long>(id),
                              static_cast<long long>(v));
      case Kind::kUpdate:
        return ldv::StrFormat("UPDATE %s SET v = %lld WHERE id = %lld",
                              table.c_str(), static_cast<long long>(v),
                              static_cast<long long>(id));
      case Kind::kDelete:
        return ldv::StrFormat("DELETE FROM %s WHERE id = %lld", table.c_str(),
                              static_cast<long long>(id));
    }
    return "";
  }

  std::string Encode() const {
    const char* k = kind == Kind::kInsert   ? "ins"
                    : kind == Kind::kUpdate ? "upd"
                                            : "del";
    return ldv::StrFormat("%s:%lld:%lld", k, static_cast<long long>(id),
                          static_cast<long long>(v));
  }
};

// One commit unit: a single autocommit statement or an explicit
// BEGIN..COMMIT group. Atomic either way — fully in the recovered state or
// fully absent.
struct Unit {
  std::vector<Op> ops;
};

// id -> values of the live copies.
using TableOracle = std::map<int64_t, std::vector<int64_t>>;

void ApplyToOracle(const Unit& unit, TableOracle* oracle) {
  for (const Op& op : unit.ops) {
    switch (op.kind) {
      case Op::Kind::kInsert:
        (*oracle)[op.id].push_back(op.v);
        break;
      case Op::Kind::kUpdate: {
        auto it = oracle->find(op.id);
        if (it != oracle->end()) {
          for (int64_t& v : it->second) v = op.v;
        }
        break;
      }
      case Op::Kind::kDelete:
        oracle->erase(op.id);
        break;
    }
  }
}

// Canonical "id=v;" listing, sorted by (id, v) — comparable against a
// table scan.
std::string OracleToString(const TableOracle& oracle) {
  std::string out;
  for (const auto& [id, values] : oracle) {
    std::vector<int64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (int64_t v : sorted) {
      out += ldv::StrFormat("%lld=%lld;", static_cast<long long>(id),
                            static_cast<long long>(v));
    }
  }
  return out;
}

Op RandomOp(ldv::Rng* rng) {
  Op op;
  int64_t dice = rng->Uniform(0, 9);
  op.kind = dice < 5   ? Op::Kind::kInsert
            : dice < 8 ? Op::Kind::kUpdate
                       : Op::Kind::kDelete;
  op.id = rng->Uniform(0, 255);
  op.v = rng->Uniform(0, 999'999);
  return op;
}

std::string EncodeUnit(const Unit& unit) {
  std::string out;
  for (size_t i = 0; i < unit.ops.size(); ++i) {
    if (i > 0) out += ",";
    out += unit.ops[i].Encode();
  }
  return out;
}

bool DecodeUnit(const std::string& text, Unit* unit) {
  unit->ops.clear();
  for (const std::string& part : ldv::Split(text, ',')) {
    std::vector<std::string> fields = ldv::Split(part, ':');
    if (fields.size() != 3) return false;
    Op op;
    if (fields[0] == "ins") {
      op.kind = Op::Kind::kInsert;
    } else if (fields[0] == "upd") {
      op.kind = Op::Kind::kUpdate;
    } else if (fields[0] == "del") {
      op.kind = Op::Kind::kDelete;
    } else {
      return false;
    }
    op.id = std::atoll(fields[1].c_str());
    op.v = std::atoll(fields[2].c_str());
    unit->ops.push_back(op);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Durable intent log (the verifier's source of truth)
// ---------------------------------------------------------------------------

class IntentLog {
 public:
  bool OpenForAppend(const std::string& path) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    return fd_ >= 0;
  }

  // Intent lines must be durable *before* the unit is issued: a committed
  // unit whose intent line was lost would look like corruption to the
  // verifier.
  bool AppendDurable(const std::string& line) {
    return Append(line) && ::fsync(fd_) == 0;
  }

  // Ack lines tolerate loss (a lost ack only weakens the check).
  bool Append(const std::string& line) {
    std::string data = line + "\n";
    return ::write(fd_, data.data(), data.size()) ==
           static_cast<ssize_t>(data.size());
  }

  ~IntentLog() {
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Writer child
// ---------------------------------------------------------------------------

struct TortureConfig {
  int iters = 25;
  int threads = 4;
  int units = 40;  // commit units per thread per iteration
  uint64_t seed = 42;
  std::string workdir;
  int64_t checkpoint_every = 8;
  bool keep = false;
};

std::string TableName(int thread) { return "t" + std::to_string(thread); }

const char* const kCrashPoints[] = {
    "wal.append", "wal.tear", "wal.fsync", "fs.write", "fs.rename",
};

// Opens the recovered database for writing: recovery, a fresh WAL handle
// continuing the LSN sequence, engine with checkpointing armed.
Status OpenEngine(const std::string& data_dir, const std::string& wal_dir,
                  int64_t checkpoint_every, ldv::storage::Database* db,
                  std::unique_ptr<ldv::net::EngineHandle>* engine) {
  ldv::storage::RecoveryStats stats;
  LDV_RETURN_IF_ERROR(ldv::exec::RecoverWithWal(db, data_dir, wal_dir, &stats));
  LDV_ASSIGN_OR_RETURN(
      std::unique_ptr<ldv::storage::Wal> wal,
      ldv::storage::Wal::Open(wal_dir, ldv::storage::WalOptions{},
                              stats.next_lsn));
  *engine = std::make_unique<ldv::net::EngineHandle>(db);
  ldv::net::EngineDurabilityOptions durability;
  durability.data_dir = data_dir;
  durability.checkpoint_every = checkpoint_every;
  (*engine)->AttachWal(std::move(wal), durability);
  return Status::Ok();
}

// Runs in the forked child: recover, arm the crash fault, hammer the engine
// until the fault kills the process (or the workload completes and the
// child exits 0). Exit code 3 = setup failure (always fails the run).
int RunWriterChild(const TortureConfig& config, const std::string& data_dir,
                   const std::string& wal_dir, const std::string& intent_dir,
                   uint64_t iter_seed, const std::string& fault_spec) {
  ldv::storage::Database db;
  std::unique_ptr<ldv::net::EngineHandle> engine;
  Status opened = OpenEngine(data_dir, wal_dir, config.checkpoint_every, &db,
                             &engine);
  if (!opened.ok()) {
    std::fprintf(stderr, "child: open failed: %s\n",
                 opened.ToString().c_str());
    return 3;
  }

  // Tables must exist before the fault is armed: their CREATE belongs to
  // the baseline, not to an intent prefix.
  for (int t = 0; t < config.threads; ++t) {
    ldv::net::DbRequest create;
    create.sql = "CREATE TABLE IF NOT EXISTS " + TableName(t) +
                 " (id INT, v INT)";
    Result<ldv::exec::ResultSet> created = engine->Execute(create);
    if (!created.ok()) {
      std::fprintf(stderr, "child: create failed: %s\n",
                   created.status().ToString().c_str());
      return 3;
    }
  }
  Status flushed = engine->FlushWal();
  if (!flushed.ok()) {
    std::fprintf(stderr, "child: flush failed: %s\n",
                 flushed.ToString().c_str());
    return 3;
  }

  if (!fault_spec.empty()) {
    ldv::FaultInjector& injector = ldv::FaultInjector::Instance();
    Status configured = injector.ConfigureFromSpec(fault_spec);
    if (!configured.ok()) {
      std::fprintf(stderr, "child: bad fault spec: %s\n",
                   configured.ToString().c_str());
      return 3;
    }
    injector.Enable(iter_seed);
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < config.threads; ++t) {
    writers.emplace_back([&, t] {
      ldv::Rng rng(iter_seed * 0x9E3779B9ULL + static_cast<uint64_t>(t));
      IntentLog log;
      if (!log.OpenForAppend(
              ldv::JoinPath(intent_dir, "intent-" + std::to_string(t) +
                                            ".log"))) {
        return;
      }
      const std::string table = TableName(t);
      const int64_t session = t + 1;
      for (int u = 0; u < config.units; ++u) {
        // Occasionally open a transaction just to roll it back: aborted
        // work must never reach the log nor disturb redo determinism.
        if (rng.Bernoulli(0.1)) {
          ldv::net::DbRequest req;
          req.sql = "BEGIN";
          if (engine->ExecuteSession(req, session).ok()) {
            req.sql = RandomOp(&rng).Sql(table);
            (void)engine->ExecuteSession(req, session);
            req.sql = "ROLLBACK";
            (void)engine->ExecuteSession(req, session);
          }
        }

        Unit unit;
        const bool txn = rng.Bernoulli(0.3);
        const int64_t ops = txn ? rng.Uniform(2, 4) : 1;
        for (int64_t i = 0; i < ops; ++i) unit.ops.push_back(RandomOp(&rng));

        if (!log.AppendDurable("I " + EncodeUnit(unit))) return;
        bool ok = true;
        if (txn) {
          ldv::net::DbRequest req;
          req.sql = "BEGIN";
          ok = engine->ExecuteSession(req, session).ok();
          for (const Op& op : unit.ops) {
            if (!ok) break;
            req.sql = op.Sql(table);
            ok = engine->ExecuteSession(req, session).ok();
          }
          if (ok) {
            req.sql = "COMMIT";
            ok = engine->ExecuteSession(req, session).ok();
          } else {
            req.sql = "ROLLBACK";
            (void)engine->ExecuteSession(req, session);
          }
        } else {
          ldv::net::DbRequest req;
          req.sql = unit.ops[0].Sql(table);
          ok = engine->ExecuteSession(req, session).ok();
        }
        if (ok && !log.Append("A")) return;
      }
    });
  }
  for (std::thread& w : writers) w.join();
  ldv::FaultInjector::Instance().Disable();
  return 0;
}

// ---------------------------------------------------------------------------
// Parent-side verification
// ---------------------------------------------------------------------------

struct ThreadIntents {
  std::vector<Unit> units;
  size_t acked = 0;  // acks are a prefix: the writer issues sequentially
};

bool LoadIntents(const std::string& path, ThreadIntents* out) {
  *out = ThreadIntents{};
  if (!ldv::FileExists(path)) return true;  // thread never got started
  Result<std::string> text = ldv::ReadFileToString(path);
  if (!text.ok()) return false;
  for (const std::string& line : ldv::Split(*text, '\n')) {
    if (line.empty()) continue;
    if (line == "A") {
      ++out->acked;
    } else if (line.rfind("I ", 0) == 0) {
      Unit unit;
      if (!DecodeUnit(line.substr(2), &unit)) return false;
      out->units.push_back(std::move(unit));
    } else {
      return false;
    }
  }
  return out->acked <= out->units.size();
}

// Scans one recovered table into the oracle's canonical string form.
Result<std::string> ScanTable(ldv::exec::Executor* executor,
                              const std::string& table) {
  Result<ldv::exec::ResultSet> rows = executor->Execute(
      "SELECT id, v FROM " + table + " ORDER BY id, v", {});
  if (!rows.ok()) return rows.status();
  std::string out;
  for (const auto& row : rows->rows) {
    out += ldv::StrFormat("%lld=%lld;",
                          static_cast<long long>(row[0].AsInt()),
                          static_cast<long long>(row[1].AsInt()));
  }
  return out;
}

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "crash_torture: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

struct TortureTotals {
  int64_t crashes = 0;
  int64_t clean_exits = 0;
  int64_t torn_tails = 0;
  int64_t units_committed = 0;
  int64_t txns_replayed = 0;
  std::map<std::string, int64_t> crashes_by_point;
};

}  // namespace

int main(int argc, char** argv) {
  TortureConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--iters") {
      config.iters = std::atoi(next());
    } else if (arg == "--threads") {
      config.threads = std::atoi(next());
    } else if (arg == "--units") {
      config.units = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--workdir") {
      config.workdir = next();
    } else if (arg == "--checkpoint-every") {
      config.checkpoint_every = std::atoll(next());
    } else if (arg == "--keep") {
      config.keep = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: crash_torture [--iters N] [--threads K] [--units M] "
          "[--seed S] [--workdir DIR] [--checkpoint-every C] [--keep]\n");
      return 0;
    } else {
      std::fprintf(stderr, "crash_torture: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  bool temp_workdir = config.workdir.empty();
  if (temp_workdir) {
    Result<std::string> made = ldv::MakeTempDir("crash_torture");
    if (!made.ok()) return Fail("mktemp", made.status());
    config.workdir = *made;
  }
  const std::string data_dir = ldv::JoinPath(config.workdir, "data");
  const std::string wal_dir = ldv::JoinPath(config.workdir, "wal");
  const std::string intent_dir = ldv::JoinPath(config.workdir, "intents");
  Status made = ldv::MakeDirs(intent_dir);
  if (!made.ok()) return Fail("mkdir", made);

  // Per-table expected state, carried across iterations (each iteration's
  // verified prefix folds into the baseline the next iteration builds on).
  std::vector<TableOracle> baseline(static_cast<size_t>(config.threads));
  TortureTotals totals;

  for (int iter = 0; iter < config.iters; ++iter) {
    const uint64_t iter_seed = config.seed * 1000003ULL +
                               static_cast<uint64_t>(iter);
    ldv::Rng plan_rng(iter_seed ^ 0xD1B54A32D192ED03ULL);

    // Fault plan: most iterations crash at a random point after a random
    // number of calls; some run to completion (clean path must stay clean).
    std::string fault_spec;
    std::string point;
    if (!plan_rng.Bernoulli(0.15)) {
      point = kCrashPoints[plan_rng.Uniform(
          0, static_cast<int64_t>(std::size(kCrashPoints)) - 1)];
      // Scale the trigger to how often the point actually fires so most
      // iterations die mid-run: wal.* points fire roughly once per commit
      // unit, fs.* only during checkpoints (one call per table + catalog).
      const int64_t commits = static_cast<int64_t>(config.threads) *
                              config.units;
      int64_t after =
          point.rfind("fs.", 0) == 0
              ? plan_rng.Uniform(
                    0, std::max<int64_t>(
                           4, commits / std::max<int64_t>(
                                            1, config.checkpoint_every) *
                                  (config.threads + 1)))
              : plan_rng.Uniform(0, commits);
      fault_spec = ldv::StrFormat("%s=after:%lld,crash:1", point.c_str(),
                                  static_cast<long long>(after));
    }

    // Fresh intent logs: verified prefixes of earlier iterations already
    // live in `baseline`.
    for (int t = 0; t < config.threads; ++t) {
      (void)ldv::RemoveAll(
          ldv::JoinPath(intent_dir, "intent-" + std::to_string(t) + ".log"));
    }

    pid_t pid = fork();
    if (pid < 0) {
      return Fail("fork", Status::IOError(strerror(errno)));
    }
    if (pid == 0) {
      _exit(RunWriterChild(config, data_dir, wal_dir, intent_dir, iter_seed,
                           fault_spec));
    }
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) < 0) {
      return Fail("waitpid", Status::IOError(strerror(errno)));
    }
    const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 3) {
      std::fprintf(stderr, "crash_torture: iter %d: child setup failed\n",
                   iter);
      return 1;
    }
    if (clean) {
      ++totals.clean_exits;
    } else {
      ++totals.crashes;
      ++totals.crashes_by_point[point.empty() ? "(exit)" : point];
    }

    // Recover twice into independent databases: the second run checks
    // idempotence (the first may durably truncate a torn tail; the second
    // must find a clean log and rebuild identical state).
    ldv::storage::Database db;
    ldv::storage::RecoveryStats stats;
    Status recovered =
        ldv::exec::RecoverWithWal(&db, data_dir, wal_dir, &stats);
    if (!recovered.ok()) {
      std::fprintf(stderr,
                   "crash_torture: iter %d (%s): RECOVERY FAILED: %s\n", iter,
                   fault_spec.c_str(), recovered.ToString().c_str());
      return 1;
    }
    if (stats.truncated_torn_tail) ++totals.torn_tails;
    totals.txns_replayed += stats.txns_applied;

    ldv::storage::Database db2;
    ldv::storage::RecoveryStats stats2;
    Status recovered2 =
        ldv::exec::RecoverWithWal(&db2, data_dir, wal_dir, &stats2);
    if (!recovered2.ok()) {
      std::fprintf(stderr,
                   "crash_torture: iter %d: second recovery failed: %s\n",
                   iter, recovered2.ToString().c_str());
      return 1;
    }
    if (stats2.truncated_torn_tail) {
      std::fprintf(stderr,
                   "crash_torture: iter %d: second recovery saw a torn tail "
                   "(truncation was not durable)\n",
                   iter);
      return 1;
    }

    ldv::exec::Executor executor(&db);
    ldv::exec::Executor executor2(&db2);
    for (int t = 0; t < config.threads; ++t) {
      const std::string table = TableName(t);
      if (db.FindTable(table) == nullptr) {
        // The child died before CREATE TABLE became durable; nothing can
        // have committed into it.
        continue;
      }
      Result<std::string> got = ScanTable(&executor, table);
      if (!got.ok()) return Fail("scan", got.status());
      Result<std::string> again = ScanTable(&executor2, table);
      if (!again.ok()) return Fail("rescan", again.status());
      if (*got != *again) {
        std::fprintf(stderr,
                     "crash_torture: iter %d: recovery not idempotent for "
                     "%s\n  first : %s\n  second: %s\n",
                     iter, table.c_str(), got->c_str(), again->c_str());
        return 1;
      }

      ThreadIntents intents;
      if (!LoadIntents(ldv::JoinPath(intent_dir,
                                     "intent-" + std::to_string(t) + ".log"),
                       &intents)) {
        std::fprintf(stderr,
                     "crash_torture: iter %d: intent log for %s unreadable\n",
                     iter, table.c_str());
        return 1;
      }

      // Committed-prefix check: walk every prefix of this iteration's
      // intents on top of the baseline. The *largest* matching prefix is
      // the committed one — no-op units (UPDATE/DELETE of an absent id)
      // leave the state unchanged, so shorter prefixes can coincide.
      TableOracle oracle = baseline[static_cast<size_t>(t)];
      size_t matched = SIZE_MAX;
      if (OracleToString(oracle) == *got) matched = 0;
      for (size_t k = 0; k < intents.units.size(); ++k) {
        ApplyToOracle(intents.units[k], &oracle);
        if (OracleToString(oracle) == *got) matched = k + 1;
      }
      if (matched == SIZE_MAX) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): %s matches no intent "
                     "prefix (%zu units, %zu acked)\n  recovered: %s\n",
                     iter, fault_spec.c_str(), table.c_str(),
                     intents.units.size(), intents.acked, got->c_str());
        return 1;
      }
      if (matched < intents.acked) {
        std::fprintf(stderr,
                     "crash_torture: iter %d (%s): COMMITTED DATA LOST on "
                     "%s: %zu units acknowledged, only %zu recovered\n",
                     iter, fault_spec.c_str(), table.c_str(), intents.acked,
                     matched);
        return 1;
      }

      // Fold the surviving prefix into the baseline for the next iteration.
      TableOracle next = baseline[static_cast<size_t>(t)];
      for (size_t k = 0; k < matched; ++k) {
        ApplyToOracle(intents.units[k], &next);
      }
      baseline[static_cast<size_t>(t)] = std::move(next);
      totals.units_committed += static_cast<int64_t>(matched);
    }
  }

  std::printf(
      "crash_torture: OK — %d iterations, %lld crashes (%lld clean), "
      "%lld torn tails truncated, %lld units committed, %lld txns "
      "replayed\n",
      config.iters, static_cast<long long>(totals.crashes),
      static_cast<long long>(totals.clean_exits),
      static_cast<long long>(totals.torn_tails),
      static_cast<long long>(totals.units_committed),
      static_cast<long long>(totals.txns_replayed));
  for (const auto& [point, count] : totals.crashes_by_point) {
    std::printf("  crashes at %-12s %lld\n", point.c_str(),
                static_cast<long long>(count));
  }
  if (temp_workdir && !config.keep) (void)ldv::RemoveAll(config.workdir);
  return 0;
}
