#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite twice — once
# plain, once instrumented with AddressSanitizer + UndefinedBehaviorSanitizer
# (see the LDV_SANITIZE option in the top-level CMakeLists.txt).
#
# --bench-smoke additionally runs bench_micro once, asserts the
# disabled-instrumentation overhead bound (<2%, see DESIGN.md §8), and
# leaves the run's metrics snapshot in build/metrics_smoke.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    *) echo "check.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "$BENCH_SMOKE" == 1 ]]; then
  echo "== bench smoke =="
  LDV_METRICS_OUT=build/metrics_smoke.json ./build/bench/bench_micro \
    --benchmark_filter='BM_Obs|BM_ScanFilter' \
    --benchmark_out=build/bench_smoke.json --benchmark_out_format=json
  python3 tools/bench_smoke_check.py build/bench_smoke.json \
    build/metrics_smoke.json
fi

echo "== asan+ubsan build =="
cmake -B build-san -S . -DLDV_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j
(cd build-san && ctest --output-on-failure -j)

echo "check.sh: plain and sanitizer suites both passed"
