#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite twice — once
# plain, once instrumented with AddressSanitizer + UndefinedBehaviorSanitizer
# (see the LDV_SANITIZE option in the top-level CMakeLists.txt).
#
# --bench-smoke additionally runs bench_micro and bench_concurrent once,
# asserts the disabled-instrumentation overhead bound (<2%, see DESIGN.md
# §8), the group-commit bound (>= 3x single-writer fsync throughput at 8
# writers, DESIGN.md §9), the morsel-parallel scaling bound (>= 2.5x at 8
# threads with enough cores, no-regression otherwise, DESIGN.md §10), the
# resource-governance responsiveness bound (cancel/deadline kills land
# within 100 ms mid-scan at 1 and 8 threads, DESIGN.md §11), the
# inter-query parallelism bound (>= 3x read-only QPS at 8 clients vs 1 with
# enough cores, no-regression otherwise, DESIGN.md §12), the
# repeated-statement bound (>= 2x QPS for EXECUTE through the plan cache vs
# re-sent literal SQL, DESIGN.md §13) and the vectorized-execution bound
# (>= 2x single-threaded scan-filter-agg rows/s for the columnar kernels vs
# the row engine, DESIGN.md §15). The artifacts (benchmark results, metrics
# snapshot, scaling curve, governance probe, concurrency curve,
# prepared-statement comparison, vectorized comparison) are left in build/
# and mirrored to BENCH_*.json in the repo root.
#
# --tsan additionally builds with ThreadSanitizer (LDV_SANITIZE=thread) and
# runs the concurrency-sensitive suites (thread pool, parallel execution,
# vectorized differential, exec, net, txn/governance, mvcc,
# prepared-statement differential fuzzer) under it.
#
# --torture N runs N seeded kill-at-faultpoint iterations of crash_torture
# (on top of the short smoke pass ctest already includes).
#
# --repl-torture N runs N seeded iterations of the replication chaos
# campaign (crash_torture --repl): kill the streaming primary at WAL/net
# fault points, sever the stream mid-load, promote the hot standby, and
# verify zero committed-data loss plus bit-identical standby restart.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
TSAN=0
TORTURE_ITERS=0
REPL_TORTURE_ITERS=0
expect_torture=0
expect_repl_torture=0
for arg in "$@"; do
  if [[ "$expect_torture" == 1 ]]; then
    TORTURE_ITERS="$arg"; expect_torture=0; continue
  fi
  if [[ "$expect_repl_torture" == 1 ]]; then
    REPL_TORTURE_ITERS="$arg"; expect_repl_torture=0; continue
  fi
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --tsan) TSAN=1 ;;
    --torture) expect_torture=1 ;;
    --repl-torture) expect_repl_torture=1 ;;
    *) echo "check.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done
if [[ "$expect_torture" == 1 ]]; then
  echo "check.sh: --torture needs an iteration count" >&2; exit 2
fi
if [[ "$expect_repl_torture" == 1 ]]; then
  echo "check.sh: --repl-torture needs an iteration count" >&2; exit 2
fi

echo "== tracked build artifacts =="
# Generated trees must never be committed; fail fast if any tracked path
# lives under a build directory.
if git ls-files | grep -E '^build[^/]*/' | head -5 | grep .; then
  echo "check.sh: tracked files under build*/ — git rm -r --cached them" >&2
  exit 1
fi

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
# --timeout: no single test may wedge the gate — a hung cancellation or a
# deadlocked pool shows up as a per-test failure, not a stuck CI job.
(cd build && ctest --output-on-failure --timeout 120 -j)

if [[ "$BENCH_SMOKE" == 1 ]]; then
  echo "== bench smoke =="
  LDV_METRICS_OUT=build/metrics_smoke.json \
  LDV_BENCH_PARALLEL_OUT=build/bench_parallel.json \
  LDV_BENCH_GOVERNANCE_OUT=build/bench_governance.json \
  ./build/bench/bench_micro \
    --benchmark_filter='BM_Obs|BM_ScanFilter|BM_WalCommit/sync:2|BM_Parallel' \
    --benchmark_out=build/bench_smoke.json --benchmark_out_format=json
  ./build/bench/bench_concurrent build/bench_concurrent.json
  ./build/bench/bench_prepared build/bench_prepared.json
  ./build/bench/bench_repl build/bench_repl.json
  ./build/bench/bench_vector build/bench_vector.json
  python3 tools/bench_smoke_check.py build/bench_smoke.json \
    build/metrics_smoke.json build/bench_parallel.json \
    build/bench_governance.json build/bench_concurrent.json \
    build/bench_prepared.json build/bench_repl.json \
    build/bench_vector.json
  # Repo-root artifacts so a gate run leaves an inspectable record.
  cp build/bench_smoke.json BENCH_SMOKE.json
  cp build/bench_parallel.json BENCH_PARALLEL.json
  cp build/bench_governance.json BENCH_GOVERNANCE.json
  cp build/bench_concurrent.json BENCH_CONCURRENT.json
  cp build/bench_prepared.json BENCH_PREPARED.json
  cp build/bench_repl.json BENCH_REPL.json
  cp build/bench_vector.json BENCH_VECTOR.json
fi

if [[ "$TORTURE_ITERS" -gt 0 ]]; then
  echo "== crash torture ($TORTURE_ITERS iterations) =="
  ./build/tools/crash_torture --iters "$TORTURE_ITERS" --threads 4 \
    --units 30 --seed "${TORTURE_SEED:-42}"
fi

if [[ "$REPL_TORTURE_ITERS" -gt 0 ]]; then
  echo "== replication chaos torture ($REPL_TORTURE_ITERS iterations) =="
  ./build/tools/crash_torture --repl --iters "$REPL_TORTURE_ITERS" \
    --threads 3 --units 25 --seed "${TORTURE_SEED:-42}"
fi

echo "== asan+ubsan build =="
cmake -B build-san -S . -DLDV_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j
(cd build-san && ctest --output-on-failure --timeout 240 -j)

if [[ "$TSAN" == 1 ]]; then
  echo "== tsan build (concurrency suites) =="
  cmake -B build-tsan -S . -DLDV_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target \
    thread_pool_test parallel_exec_test vectorized_exec_test exec_select_test \
    exec_features_test net_test txn_test governance_test mvcc_test \
    prepared_statement_test prepared_fuzz_test repl_test
  # -R must precede the bare -j: ctest would otherwise swallow it as the
  # job count and silently run the whole (mostly unbuilt) suite.
  (cd build-tsan && ctest --output-on-failure --timeout 240 \
    -R 'ThreadPool|Parallel|Vectorized|ExecSelect|ExecFeatures|Net|Txn|Governance|Mvcc|SharedMutex|SnapshotManager|Prepared|Normalize|Repl' -j)
fi

echo "check.sh: plain and sanitizer suites both passed"
