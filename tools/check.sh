#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite twice — once
# plain, once instrumented with AddressSanitizer + UndefinedBehaviorSanitizer
# (see the LDV_SANITIZE option in the top-level CMakeLists.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== asan+ubsan build =="
cmake -B build-san -S . -DLDV_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j
(cd build-san && ctest --output-on-failure -j)

echo "check.sh: plain and sanitizer suites both passed"
