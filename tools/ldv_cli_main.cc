// ldv: command-line front end mirroring the prototype's ldv-audit /
// ldv-exec workflow (paper §IX) for the TPC-H experiment application, plus
// package inspection and CDE-style ptrace packaging of real commands.
//
//   ldv audit   --mode MODE --query Qx-y --out DIR [--sf SF] [--seed N]
//               [--db-socket PATH] [--retries N] [--retry-deadline-ms N]
//               [--fault SPEC] [--fault-seed N]
//               [--metrics-out FILE] [--trace-out FILE]
//   ldv replay  --package DIR --query Qx-y [--sf SF] [--seed N]
//               [--metrics-out FILE] [--trace-out FILE]
//   ldv inspect --package DIR
//   ldv trace-dot --package DIR
//   ldv ptrace  --out DIR -- <command> [args...]
//
// `--db-socket` audits over a live DB server socket (start one with
// ldv_server); the connection is wrapped in the retrying client, so the
// audit survives transient transport failures. `--fault` arms the in-process
// fault injector (spec grammar in common/fault.h), e.g. for rehearsing a
// flaky-network audit: --fault "net.send=p:0.2;net.recv=p:0.2".
//
// `--metrics-out` writes a metrics snapshot after the run: {"local": <this
// process>} plus, when auditing over --db-socket, {"server": <the server's
// snapshot>} fetched via the Stats protocol message. `--trace-out` records
// trace spans during the run and writes a Chrome trace_event file (load in
// chrome://tracing or Perfetto); with --db-socket the server's spans are
// fetched and merged into the same file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "exec/executor.h"
#include "exec/plan_cache.h"
#include "ldv/auditor.h"
#include "ldv/packager.h"
#include "ldv/replayer.h"
#include "net/db_client.h"
#include "net/retrying_db_client.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "os/ptrace_tracer.h"
#include "tpch/app.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "trace/prov_export.h"
#include "trace/serialize.h"
#include "util/fsutil.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

int Fail(const ldv::Status& status) {
  std::fprintf(stderr, "ldv: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::printf(
      "usage:\n"
      "  ldv audit   --mode server-included|server-excluded|ptu|vm-image\n"
      "              --query Q1-1..Q4-5 --out DIR [--sf SF] [--seed N]\n"
      "              [--db-socket PATH] [--retries N]\n"
      "              [--retry-deadline-ms N] [--fault SPEC] [--fault-seed N]\n"
      "              [--metrics-out FILE] [--trace-out FILE]\n"
      "  ldv replay  --package DIR --query Qx-y [--sf SF] [--seed N]\n"
      "              [--metrics-out FILE] [--trace-out FILE]\n"
      "  ldv inspect --package DIR\n"
      "  ldv trace-dot --package DIR\n"
      "  ldv trace-prov --package DIR      (W3C PROV-JSON export)\n"
      "  ldv ptrace  --out DIR -- <command> [args...]\n"
      "  ldv cancel  --db-socket PATH --pid N [--qid N]\n"
      "              (cancel in-flight statements on a live server; --qid 0\n"
      "               or omitted targets every statement of the process)\n"
      "  ldv stats   --db-socket PATH\n"
      "              (print a live server's metrics snapshot as JSON:\n"
      "               counters, in-flight statements, snapshot/lock state,\n"
      "               plus a replication summary — role, applied LSN,\n"
      "               per-standby lag — when the server has a WAL)\n"
      "  ldv promote --db-socket PATH\n"
      "              (failover: flip a hot standby into a writable primary\n"
      "               after its apply queue drains; idempotent)\n"
      "global: --threads N   query degree of parallelism (default: hardware\n"
      "                      concurrency; 1 disables parallel execution)\n"
      "        --no-vectorize  row-at-a-time execution only (vectorized\n"
      "                      columnar kernels are the default; results are\n"
      "                      bit-identical either way)\n"
      "        --plan-cache-entries N   bound on the shared prepared-\n"
      "                      statement plan cache (default 256; 0 disables)\n");
  return 2;
}

struct Flags {
  std::map<std::string, std::string> named;
  std::vector<std::string> rest;  // after "--"
};

Flags ParseFlags(int argc, char** argv, int start) {
  Flags flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") {
      for (int k = i + 1; k < argc; ++k) flags.rest.push_back(argv[k]);
      break;
    }
    if (arg == "--no-vectorize") {  // valueless: takes no operand
      flags.named["no-vectorize"] = "1";
      continue;
    }
    if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      flags.named[arg.substr(2)] = argv[++i];
    }
  }
  return flags;
}

/// Arms the process-wide fault injector from --fault/--fault-seed. Returns
/// non-OK on a malformed spec.
ldv::Status ArmFaultsFromFlags(const Flags& flags) {
  if (!flags.named.count("fault")) return ldv::Status::Ok();
  ldv::FaultInjector& injector = ldv::FaultInjector::Instance();
  LDV_RETURN_IF_ERROR(injector.ConfigureFromSpec(flags.named.at("fault")));
  uint64_t fault_seed =
      flags.named.count("fault-seed")
          ? static_cast<uint64_t>(
                std::atoll(flags.named.at("fault-seed").c_str()))
          : 42;
  injector.Enable(fault_seed);
  std::printf("ldv: fault injection armed (%s, seed=%llu)\n",
              flags.named.at("fault").c_str(),
              static_cast<unsigned long long>(fault_seed));
  return ldv::Status::Ok();
}

/// Starts local span recording when --trace-out is set; with a control
/// connection, recording also starts on the server.
void StartObservability(const Flags& flags, ldv::net::DbClient* control) {
  if (!flags.named.count("trace-out")) return;
  ldv::obs::TraceRecorder::Clear();
  ldv::obs::TraceRecorder::Enable();
  if (control != nullptr) {
    ldv::Status started = ldv::net::StartServerTrace(control);
    if (!started.ok()) {
      std::fprintf(stderr, "ldv: server trace start failed: %s\n",
                   started.ToString().c_str());
    }
  }
}

/// Writes the --metrics-out / --trace-out files, merging the server-side
/// snapshot and spans fetched over `control` when available. Server fetch
/// failures degrade to local-only files rather than failing the command.
ldv::Status WriteObservability(const Flags& flags,
                               ldv::net::DbClient* control) {
  // The dumps are the run's durable outputs — an armed --fault injector must
  // not sabotage them. Disabling keeps the per-point counts, so the fault.*
  // metrics still reflect the run.
  ldv::FaultInjector::Instance().Disable();
  std::vector<ldv::obs::SpanEvent> server_events;
  ldv::Json server_stats = ldv::Json::MakeObject();
  bool have_server_stats = false;
  if (control != nullptr) {
    if (flags.named.count("trace-out")) {
      auto trace = ldv::net::FetchServerTrace(control);
      if (trace.ok()) {
        server_events = ldv::obs::TraceRecorder::EventsFromJson(*trace);
      } else {
        std::fprintf(stderr, "ldv: server trace fetch failed: %s\n",
                     trace.status().ToString().c_str());
      }
    }
    auto stats = ldv::net::FetchServerStats(control);
    if (stats.ok()) {
      server_stats = std::move(*stats);
      have_server_stats = true;
    } else {
      std::fprintf(stderr, "ldv: server stats fetch failed: %s\n",
                   stats.status().ToString().c_str());
    }
  }
  if (flags.named.count("metrics-out")) {
    ldv::obs::CaptureFaultInjectorMetrics(&ldv::obs::MetricsRegistry::Global());
    ldv::Json root = ldv::Json::MakeObject();
    root.Set("local", ldv::obs::MetricsRegistry::Global().Snapshot().ToJson());
    if (have_server_stats) root.Set("server", std::move(server_stats));
    const std::string& path = flags.named.at("metrics-out");
    LDV_RETURN_IF_ERROR(ldv::WriteStringToFile(path, root.Dump(true) + "\n"));
    std::printf("ldv: wrote metrics to %s\n", path.c_str());
  }
  if (flags.named.count("trace-out")) {
    const std::string& path = flags.named.at("trace-out");
    LDV_RETURN_IF_ERROR(ldv::obs::TraceRecorder::WriteTo(path, server_events));
    ldv::obs::TraceRecorder::Disable();
    ldv::obs::TraceRecorder::Clear();
    std::printf("ldv: wrote trace to %s\n", path.c_str());
  }
  return ldv::Status::Ok();
}

ldv::tpch::AppOptions MakeAppOptions(const ldv::tpch::QuerySpec& query,
                                     double sf, uint64_t seed) {
  ldv::tpch::AppOptions options;
  options.query_sql = query.sql;
  ldv::tpch::TpchSizes sizes = ldv::tpch::SizesFor(sf);
  options.insert_orderkey_base = sizes.orders;
  options.update_orderkey_max = sizes.orders;
  options.customer_max = sizes.customers;
  options.seed = seed;
  return options;
}

void PrintTimings(const char* phase, const ldv::tpch::StepTimings& t) {
  std::printf(
      "%s timings: inserts=%.4fs first_select=%.4fs other_selects=%.4fs "
      "updates=%.4fs rows=%lld fp=%llu\n",
      phase, t.inserts_seconds, t.first_select_seconds,
      t.other_selects_seconds, t.updates_seconds,
      static_cast<long long>(t.rows_returned),
      static_cast<unsigned long long>(t.result_fingerprint));
}

int CmdAudit(const Flags& flags) {
  auto mode = ldv::ParsePackageMode(
      flags.named.count("mode") ? flags.named.at("mode") : "server-included");
  if (!mode.ok()) return Fail(mode.status());
  auto query = ldv::tpch::FindQuery(
      flags.named.count("query") ? flags.named.at("query") : "Q1-1");
  if (!query.ok()) return Fail(query.status());
  if (!flags.named.count("out")) return Usage();
  double sf = flags.named.count("sf") ? std::atof(flags.named.at("sf").c_str())
                                      : 0.005;
  uint64_t seed = flags.named.count("seed")
                      ? static_cast<uint64_t>(
                            std::atoll(flags.named.at("seed").c_str()))
                      : 7;

  ldv::storage::Database db;
  ldv::tpch::GenOptions gen;
  gen.scale_factor = sf;
  ldv::Status generated = ldv::tpch::Generate(&db, gen);
  if (!generated.ok()) return Fail(generated);
  std::printf("ldv: generated TPC-H sf=%.4f (%lld rows)\n", sf,
              static_cast<long long>(db.TotalLiveRows()));

  ldv::AuditOptions options;
  options.mode = *mode;
  options.package_dir = flags.named.at("out");
  options.sandbox_root = options.package_dir + ".sandbox";
  options.server_binary_path = ldv::FindLdvServerBinary();
  if (flags.named.count("db-socket")) {
    options.db_socket_path = flags.named.at("db-socket");
  }
  if (flags.named.count("retries")) {
    options.db_retry.max_attempts = std::atoi(flags.named.at("retries").c_str());
  }
  if (flags.named.count("retry-deadline-ms")) {
    options.db_retry.request_deadline_micros =
        std::atoll(flags.named.at("retry-deadline-ms").c_str()) * 1000;
  }
  ldv::Status armed = ArmFaultsFromFlags(flags);
  if (!armed.ok()) return Fail(armed);
  ldv::Status made = ldv::MakeDirs(options.sandbox_root);
  if (!made.ok()) return Fail(made);

  // Dedicated control connection for the Stats/Trace protocol messages, so
  // the fetches do not interleave with the audited statement stream. Goes
  // through the same retry policy as the audit: the end-of-run stats fetch
  // must survive a fault-armed server.
  std::unique_ptr<ldv::net::RetryingDbClient> control;
  if (flags.named.count("db-socket") &&
      (flags.named.count("metrics-out") || flags.named.count("trace-out"))) {
    control = ldv::net::RetryingDbClient::ForSocket(
        flags.named.at("db-socket"), options.db_retry);
  }
  StartObservability(flags, control.get());

  ldv::tpch::StepTimings timings;
  ldv::Auditor auditor(&db, options);
  auto report =
      auditor.Run(ldv::tpch::MakeExperimentApp(MakeAppOptions(*query, sf, seed),
                                               &timings));
  if (!report.ok()) return Fail(report.status());
  PrintTimings("audit", timings);
  std::printf(
      "ldv: package %s mode=%s statements=%lld tuples=%lld trace=%lld nodes/"
      "%lld edges (%.2f MB)\n",
      report->package_dir.c_str(),
      std::string(ldv::PackageModeName(*mode)).c_str(),
      static_cast<long long>(report->statements_audited),
      static_cast<long long>(report->tuples_persisted),
      static_cast<long long>(report->trace_nodes),
      static_cast<long long>(report->trace_edges),
      static_cast<double>(ldv::TreeSize(report->package_dir)) / 1e6);
  ldv::Status obs_written = WriteObservability(flags, control.get());
  if (!obs_written.ok()) return Fail(obs_written);
  return 0;
}

int CmdReplay(const Flags& flags) {
  if (!flags.named.count("package")) return Usage();
  auto query = ldv::tpch::FindQuery(
      flags.named.count("query") ? flags.named.at("query") : "Q1-1");
  if (!query.ok()) return Fail(query.status());
  double sf = flags.named.count("sf") ? std::atof(flags.named.at("sf").c_str())
                                      : 0.005;
  uint64_t seed = flags.named.count("seed")
                      ? static_cast<uint64_t>(
                            std::atoll(flags.named.at("seed").c_str()))
                      : 7;

  ldv::ReplayOptions options;
  options.package_dir = flags.named.at("package");
  options.scratch_dir = options.package_dir + ".scratch";
  StartObservability(flags, nullptr);  // before Open: captures replay.init
  auto replayer = ldv::Replayer::Open(options);
  if (!replayer.ok()) return Fail(replayer.status());
  ldv::tpch::StepTimings timings;
  auto report = (*replayer)->Run(
      ldv::tpch::MakeExperimentApp(MakeAppOptions(*query, sf, seed),
                                   &timings));
  if (!report.ok()) return Fail(report.status());
  PrintTimings("replay", timings);
  std::printf("ldv: replayed mode=%s init=%.4fs restored=%lld replayed=%lld\n",
              std::string(ldv::PackageModeName(report->mode)).c_str(),
              report->init_seconds,
              static_cast<long long>(report->restored_tuples),
              static_cast<long long>(report->statements_replayed));
  ldv::Status obs_written = WriteObservability(flags, nullptr);
  if (!obs_written.ok()) return Fail(obs_written);
  return 0;
}

int CmdInspect(const Flags& flags) {
  if (!flags.named.count("package")) return Usage();
  auto info = ldv::InspectPackage(flags.named.at("package"));
  if (!info.ok()) return Fail(info.status());
  std::printf("mode:            %s\n",
              std::string(ldv::PackageModeName(info->mode)).c_str());
  std::printf("total:           %.3f MB\n",
              static_cast<double>(info->total_bytes) / 1e6);
  std::printf("app files:       %.3f MB\n",
              static_cast<double>(info->app_files_bytes) / 1e6);
  std::printf("server binary:   %.3f MB\n",
              static_cast<double>(info->server_binary_bytes) / 1e6);
  std::printf("tuple subset:    %.3f MB (%lld tuples)\n",
              static_cast<double>(info->tuple_data_bytes) / 1e6,
              static_cast<long long>(info->packaged_tuples));
  std::printf("full data files: %.3f MB\n",
              static_cast<double>(info->full_data_bytes) / 1e6);
  std::printf("replay log:      %.3f MB\n",
              static_cast<double>(info->replay_log_bytes) / 1e6);
  std::printf("trace:           %.3f MB\n",
              static_cast<double>(info->trace_bytes) / 1e6);
  std::printf("vm image:        %.3f MB\n",
              static_cast<double>(info->vm_image_bytes) / 1e6);
  return 0;
}

int CmdTraceDot(const Flags& flags) {
  if (!flags.named.count("package")) return Usage();
  auto bytes = ldv::ReadFileToString(ldv::JoinPath(
      flags.named.at("package"), std::string(ldv::kTraceFile)));
  if (!bytes.ok()) return Fail(bytes.status());
  auto graph = ldv::trace::DeserializeTrace(*bytes);
  if (!graph.ok()) return Fail(graph.status());
  std::fputs(graph->ToDot().c_str(), stdout);
  return 0;
}

int CmdTraceProv(const Flags& flags) {
  if (!flags.named.count("package")) return Usage();
  auto bytes = ldv::ReadFileToString(ldv::JoinPath(
      flags.named.at("package"), std::string(ldv::kTraceFile)));
  if (!bytes.ok()) return Fail(bytes.status());
  auto graph = ldv::trace::DeserializeTrace(*bytes);
  if (!graph.ok()) return Fail(graph.status());
  std::fputs(ldv::trace::ExportProvJson(*graph).c_str(), stdout);
  return 0;
}

int CmdPtrace(const Flags& flags) {
  if (!flags.named.count("out") || flags.rest.empty()) return Usage();
  ldv::os::PtraceTracer tracer;
  auto report = tracer.Run(flags.rest);
  if (!report.ok()) return Fail(report.status());
  auto package = ldv::BuildCdePackage(*report, flags.named.at("out"));
  if (!package.ok()) return Fail(package.status());
  std::printf(
      "ldv: traced %zu events, exit=%d; packaged %lld files (%.3f MB) into "
      "%s\n",
      report->events.size(), report->exit_code,
      static_cast<long long>(package->files_copied),
      static_cast<double>(package->bytes_copied) / 1e6,
      package->package_dir.c_str());
  return 0;
}

/// `ldv cancel`: sends the kCancel protocol verb to a live server. The kill
/// is cooperative — targets unwind with Cancelled at their next governor
/// check (DESIGN.md §11).
int CmdCancel(const Flags& flags) {
  if (!flags.named.count("db-socket") || !flags.named.count("pid")) {
    return Usage();
  }
  auto client =
      ldv::net::SocketDbClient::Connect(flags.named.at("db-socket"));
  if (!client.ok()) return Fail(client.status());
  const int64_t pid = std::atoll(flags.named.at("pid").c_str());
  const int64_t qid = flags.named.count("qid")
                          ? std::atoll(flags.named.at("qid").c_str())
                          : 0;
  ldv::Result<int64_t> cancelled =
      ldv::net::CancelServerQuery(client->get(), pid, qid);
  if (!cancelled.ok()) return Fail(cancelled.status());
  std::printf("ldv: signalled %lld in-flight statement(s)\n",
              static_cast<long long>(*cancelled));
  return 0;
}

/// `ldv stats`: fetches the server's metrics snapshot (the same document the
/// audit embeds) and prints it — includes engine.concurrent_reads,
/// txn.snapshots_live and the lock-contention counters, so concurrent
/// serving is observable from the command line.
int CmdStats(const Flags& flags) {
  if (!flags.named.count("db-socket")) return Usage();
  auto client =
      ldv::net::SocketDbClient::Connect(flags.named.at("db-socket"));
  if (!client.ok()) return Fail(client.status());
  ldv::Result<ldv::Json> stats = ldv::net::FetchServerStats(client->get());
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%s\n", stats->Dump(/*pretty=*/true).c_str());
  // Replication at a glance (servers without a WAL have no such section).
  const ldv::Json* repl = stats->Find("replication");
  if (repl != nullptr && repl->is_object()) {
    std::printf("replication: role=%s",
                repl->GetString("role", "?").c_str());
    if (const ldv::Json* applied = repl->Find("applied_lsn")) {
      std::printf(" applied_lsn=%lld lag_lsn=%lld",
                  static_cast<long long>(applied->AsInt()),
                  static_cast<long long>(repl->GetInt("lag_lsn", 0)));
      const std::string error = repl->GetString("last_error", "");
      if (!error.empty()) std::printf(" last_error=\"%s\"", error.c_str());
    } else {
      std::printf(" last_appended_lsn=%lld",
                  static_cast<long long>(repl->GetInt("last_appended_lsn", 0)));
    }
    std::printf("\n");
    const ldv::Json* standbys = repl->Find("standbys");
    if (standbys != nullptr && standbys->is_array()) {
      for (const ldv::Json& standby : standbys->AsArray()) {
        std::printf("  standby %s: acked_lsn=%lld lag_lsn=%lld "
                    "last_seen=%lldms ago\n",
                    standby.GetString("standby", "?").c_str(),
                    static_cast<long long>(standby.GetInt("acked_lsn", 0)),
                    static_cast<long long>(standby.GetInt("lag_lsn", 0)),
                    static_cast<long long>(
                        standby.GetInt("last_seen_ms_ago", 0)));
      }
    }
  }
  return 0;
}

/// `ldv promote`: flips a hot standby into a writable primary (kPromote).
/// Safe to re-issue; an already-primary server answers idempotently.
int CmdPromote(const Flags& flags) {
  if (!flags.named.count("db-socket")) return Usage();
  auto client =
      ldv::net::SocketDbClient::Connect(flags.named.at("db-socket"));
  if (!client.ok()) return Fail(client.status());
  ldv::Result<uint64_t> applied = ldv::net::PromoteServer(client->get());
  if (!applied.ok()) return Fail(applied.status());
  std::printf("ldv: promoted; server is primary at lsn %llu\n",
              static_cast<unsigned long long>(*applied));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags = ParseFlags(argc, argv, 2);
  if (flags.named.count("threads")) {
    // Pool size for morsel-parallel query execution; results are
    // bit-identical at any value (DESIGN.md §10).
    ldv::ThreadPool::SetDefaultDop(
        std::atoi(flags.named.at("threads").c_str()));
  }
  if (flags.named.count("no-vectorize")) {
    // Row-at-a-time execution only; results are bit-identical to the
    // vectorized default (DESIGN.md §15).
    ldv::exec::SetDefaultVectorize(false);
  }
  if (flags.named.count("plan-cache-entries")) {
    // Bound on the shared prepared-statement plan cache; 0 disables
    // caching, every EXECUTE then replans (DESIGN.md §13).
    const int64_t entries =
        std::atoll(flags.named.at("plan-cache-entries").c_str());
    if (entries < 0) {
      std::fprintf(stderr,
                   "ldv: --plan-cache-entries must be >= 0 (got %lld); 0 "
                   "disables caching\n",
                   static_cast<long long>(entries));
      return 2;
    }
    ldv::exec::PlanCache::Global().set_capacity(static_cast<size_t>(entries));
  }
  if (command == "audit") return CmdAudit(flags);
  if (command == "replay") return CmdReplay(flags);
  if (command == "inspect") return CmdInspect(flags);
  if (command == "trace-dot") return CmdTraceDot(flags);
  if (command == "trace-prov") return CmdTraceProv(flags);
  if (command == "ptrace") return CmdPtrace(flags);
  if (command == "cancel") return CmdCancel(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "promote") return CmdPromote(flags);
  return Usage();
}
