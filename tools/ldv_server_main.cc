// ldv_server: the standalone DB server binary. This is the artifact that
// server-included and PTU packages embed as "the DB server binaries"
// (paper Table III) — it genuinely serves the LDV engine over a Unix-domain
// socket.
//
// Usage:
//   ldv_server --socket /tmp/ldv.sock [--data DIR] [--tpch SF] [--seed N]
//
//   --data DIR   load (and on shutdown save) the native data files in DIR
//   --tpch SF    populate a fresh TPC-H database at scale factor SF

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "net/db_server.h"
#include "storage/persistence.h"
#include "tpch/generator.h"
#include "util/fsutil.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Fail(const ldv::Status& status) {
  std::fprintf(stderr, "ldv_server: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/ldv.sock";
  std::string data_dir;
  double tpch_sf = 0;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--data") {
      data_dir = next();
    } else if (arg == "--tpch") {
      tpch_sf = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ldv_server --socket PATH [--data DIR] [--tpch SF] "
          "[--seed N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "ldv_server: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  ldv::storage::Database db;
  if (!data_dir.empty() && ldv::FileExists(data_dir + "/catalog.json")) {
    ldv::Status loaded = ldv::storage::LoadDatabase(&db, data_dir);
    if (!loaded.ok()) return Fail(loaded);
    std::printf("ldv_server: loaded %lld rows from %s\n",
                static_cast<long long>(db.TotalLiveRows()), data_dir.c_str());
  } else if (tpch_sf > 0) {
    ldv::tpch::GenOptions options;
    options.scale_factor = tpch_sf;
    options.seed = seed;
    ldv::Status generated = ldv::tpch::Generate(&db, options);
    if (!generated.ok()) return Fail(generated);
    std::printf("ldv_server: generated TPC-H sf=%.4f (%lld rows)\n", tpch_sf,
                static_cast<long long>(db.TotalLiveRows()));
  }

  ldv::net::EngineHandle engine(&db);
  ldv::net::DbServer server(&engine, socket_path);
  ldv::Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::printf("ldv_server: listening on %s\n", socket_path.c_str());

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();
  if (!data_dir.empty()) {
    ldv::Status saved = ldv::storage::SaveDatabase(db, data_dir);
    if (!saved.ok()) return Fail(saved);
    std::printf("ldv_server: saved data files to %s\n", data_dir.c_str());
  }
  return 0;
}
