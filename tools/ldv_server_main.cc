// ldv_server: the standalone DB server binary. This is the artifact that
// server-included and PTU packages embed as "the DB server binaries"
// (paper Table III) — it genuinely serves the LDV engine over a Unix-domain
// socket.
//
// Usage:
//   ldv_server --socket /tmp/ldv.sock [--data DIR] [--tpch SF] [--seed N]
//              [--wal-dir DIR] [--checkpoint-every N] [--sync-mode MODE]
//              [--max-conns N] [--io-timeout-ms N]
//              [--disconnect-poll-ms N] [--dedup-ttl-ms N]
//              [--fault SPEC] [--fault-seed N]
//              [--metrics-out FILE] [--trace-out FILE]
//
//   --data DIR        load (and on shutdown save) the native data files in DIR
//   --wal-dir DIR     write-ahead log directory: every committed transaction
//                     is fsynced there before the client sees success, and
//                     startup recovers snapshot + WAL tail instead of a bare
//                     load
//   --checkpoint-every N  checkpoint (snapshot + WAL segment retirement)
//                     after N committed transactions (0 = only on shutdown)
//   --sync-mode MODE  fsync | fdatasync | none (default fsync)
//   --tpch SF         populate a fresh TPC-H database at scale factor SF
//   --max-conns N     refuse connections past N with a protocol error
//   --io-timeout-ms N per-connection socket send/recv timeout
//   --disconnect-poll-ms N  how often the disconnect watcher polls sessions
//                     with a statement in flight (idle sessions are skipped;
//                     an idle server does not poll at all)
//   --dedup-ttl-ms N  idle lifetime of response-dedup cache entries
//                     (omit the flag for no TTL; capacity still bounds the
//                     cache)
//   --fault SPEC      arm the fault injector, e.g. "net.send=p:0.1;net.recv=p:0.1"
//   --fault-seed N    seed of the injector's deterministic streams
//   --metrics-out F   write a metrics snapshot (JSON) to F on shutdown
//   --trace-out F     record spans for the whole run; write a Chrome
//                     trace_event file to F on shutdown (clients can still
//                     collect spans mid-run via TraceStart/TraceDump)
//   --threads N       query degree of parallelism (morsel-driven execution;
//                     default hardware concurrency, 1 disables). Results are
//                     bit-identical at any value.
//   --statement-timeout-ms N  default per-statement deadline; a statement
//                     running past it is cooperatively cancelled with
//                     DeadlineExceeded (0 = no default; a request's own
//                     timeout field overrides)
//   --mem-limit-mb N  per-query memory budget: a statement materializing
//                     more than N MiB fails with ResourceExhausted instead
//                     of OOMing the server (0 = unlimited)
//   --plan-cache-entries N  bound on the shared prepared-statement plan
//                     cache (statements; default 256, 0 disables caching so
//                     every EXECUTE replans)
//   --replicate-from SOCKET  run as a hot standby of the primary listening
//                     on SOCKET: stream its WAL, apply it continuously,
//                     serve reads, reject writes until promoted
//                     (`ldv promote`). Requires --wal-dir.
//   --standby-name NAME  name this standby registers under on the primary
//
// The duration flags (--io-timeout-ms, --disconnect-poll-ms, --dedup-ttl-ms)
// require positive values; zero or negative is a usage error (exit 2).

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "exec/plan_cache.h"
#include "exec/wal_redo.h"
#include "net/db_server.h"
#include "obs/metrics.h"
#include "repl/primary.h"
#include "repl/standby.h"
#include "obs/span.h"
#include "storage/persistence.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "tpch/generator.h"
#include "util/fsutil.h"
#include "util/thread_pool.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Fail(const ldv::Status& status) {
  std::fprintf(stderr, "ldv_server: %s\n", status.ToString().c_str());
  return 1;
}

int FailUsage(const char* flag, int64_t value) {
  std::fprintf(stderr,
               "ldv_server: %s requires a positive value (got %lld)\n", flag,
               static_cast<long long>(value));
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/ldv.sock";
  std::string data_dir;
  std::string wal_dir;
  std::string sync_mode = "fsync";
  int64_t checkpoint_every = 0;
  std::string replicate_from;
  std::string standby_name = "standby";
  std::string fault_spec;
  std::string metrics_out;
  std::string trace_out;
  double tpch_sf = 0;
  uint64_t seed = 42;
  uint64_t fault_seed = 42;
  int64_t statement_timeout_ms = 0;
  int64_t mem_limit_mb = 0;
  ldv::net::DbServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--data") {
      data_dir = next();
    } else if (arg == "--wal-dir") {
      wal_dir = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::atoll(next());
    } else if (arg == "--sync-mode") {
      sync_mode = next();
    } else if (arg == "--tpch") {
      tpch_sf = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--max-conns") {
      server_options.max_connections = std::atoi(next());
    } else if (arg == "--io-timeout-ms") {
      const int64_t millis = std::atoll(next());
      if (millis <= 0) return FailUsage("--io-timeout-ms", millis);
      server_options.io_timeout_micros = millis * 1000;
    } else if (arg == "--disconnect-poll-ms") {
      const int64_t millis = std::atoll(next());
      if (millis <= 0) return FailUsage("--disconnect-poll-ms", millis);
      server_options.disconnect_poll_millis = millis;
    } else if (arg == "--dedup-ttl-ms") {
      const int64_t millis = std::atoll(next());
      if (millis <= 0) return FailUsage("--dedup-ttl-ms", millis);
      server_options.dedup_ttl_millis = millis;
    } else if (arg == "--replicate-from") {
      replicate_from = next();
    } else if (arg == "--standby-name") {
      standby_name = next();
    } else if (arg == "--fault") {
      fault_spec = next();
    } else if (arg == "--fault-seed") {
      fault_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--no-vectorize") {
      // Row-at-a-time execution only; results are bit-identical to the
      // vectorized default (DESIGN.md §15).
      ldv::exec::SetDefaultVectorize(false);
    } else if (arg == "--threads") {
      ldv::ThreadPool::SetDefaultDop(std::atoi(next()));
    } else if (arg == "--statement-timeout-ms") {
      statement_timeout_ms = std::atoll(next());
    } else if (arg == "--mem-limit-mb") {
      mem_limit_mb = std::atoll(next());
    } else if (arg == "--plan-cache-entries") {
      const int64_t entries = std::atoll(next());
      if (entries < 0) {
        std::fprintf(stderr,
                     "ldv_server: --plan-cache-entries must be >= 0 (got "
                     "%lld); 0 disables caching\n",
                     static_cast<long long>(entries));
        return 2;
      }
      ldv::exec::PlanCache::Global().set_capacity(
          static_cast<size_t>(entries));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ldv_server --socket PATH [--data DIR] [--tpch SF] "
          "[--seed N] [--wal-dir DIR] [--checkpoint-every N] "
          "[--sync-mode fsync|fdatasync|none] [--max-conns N] "
          "[--io-timeout-ms N] [--disconnect-poll-ms N] [--dedup-ttl-ms N] "
          "[--fault SPEC] [--fault-seed N] "
          "[--metrics-out FILE] [--trace-out FILE] [--threads N] "
          "[--no-vectorize] "
          "[--statement-timeout-ms N] [--mem-limit-mb N] "
          "[--plan-cache-entries N] "
          "[--replicate-from SOCKET] [--standby-name NAME]\n");
      return 0;
    } else {
      std::fprintf(stderr, "ldv_server: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  if (!fault_spec.empty()) {
    ldv::FaultInjector& injector = ldv::FaultInjector::Instance();
    ldv::Status configured = injector.ConfigureFromSpec(fault_spec);
    if (!configured.ok()) return Fail(configured);
    injector.Enable(fault_seed);
    std::printf("ldv_server: fault injection armed (%s, seed=%llu)\n",
                fault_spec.c_str(),
                static_cast<unsigned long long>(fault_seed));
  }

  ldv::Result<ldv::storage::WalSyncMode> parsed_sync =
      ldv::storage::ParseWalSyncMode(sync_mode);
  if (!parsed_sync.ok()) return Fail(parsed_sync.status());

  ldv::storage::Database db;
  ldv::storage::RecoveryStats recovery_stats;
  const bool has_snapshot =
      !data_dir.empty() && ldv::FileExists(data_dir + "/catalog.json");
  if (!wal_dir.empty()) {
    // Snapshot + redo of the committed WAL tail; a torn final record is
    // truncated, mid-log corruption aborts startup with file + offset.
    ldv::Status recovered =
        ldv::exec::RecoverWithWal(&db, data_dir, wal_dir, &recovery_stats);
    if (!recovered.ok()) return Fail(recovered);
    std::printf("ldv_server: recovered %lld rows (%s)\n",
                static_cast<long long>(db.TotalLiveRows()),
                recovery_stats.ToString().c_str());
    if (tpch_sf > 0 && db.TableNames().empty()) {
      if (data_dir.empty()) {
        return Fail(ldv::Status::InvalidArgument(
            "--tpch with --wal-dir needs --data: generated rows are not "
            "WAL-logged, so they must live in a snapshot"));
      }
      ldv::tpch::GenOptions options;
      options.scale_factor = tpch_sf;
      options.seed = seed;
      ldv::Status generated = ldv::tpch::Generate(&db, options);
      if (!generated.ok()) return Fail(generated);
      ldv::Status saved = ldv::storage::SaveDatabase(db, data_dir);
      if (!saved.ok()) return Fail(saved);
      std::printf("ldv_server: generated TPC-H sf=%.4f (%lld rows, snapshot "
                  "saved)\n",
                  tpch_sf, static_cast<long long>(db.TotalLiveRows()));
    }
  } else if (has_snapshot) {
    ldv::Status loaded = ldv::storage::LoadDatabase(&db, data_dir);
    if (!loaded.ok()) return Fail(loaded);
    std::printf("ldv_server: loaded %lld rows from %s\n",
                static_cast<long long>(db.TotalLiveRows()), data_dir.c_str());
  } else if (tpch_sf > 0) {
    ldv::tpch::GenOptions options;
    options.scale_factor = tpch_sf;
    options.seed = seed;
    ldv::Status generated = ldv::tpch::Generate(&db, options);
    if (!generated.ok()) return Fail(generated);
    std::printf("ldv_server: generated TPC-H sf=%.4f (%lld rows)\n", tpch_sf,
                static_cast<long long>(db.TotalLiveRows()));
  }

  if (!trace_out.empty()) ldv::obs::TraceRecorder::Enable();

  ldv::net::EngineHandle engine(&db);
  if (statement_timeout_ms > 0) {
    engine.set_statement_timeout_millis(statement_timeout_ms);
    std::printf("ldv_server: statement timeout %lld ms\n",
                static_cast<long long>(statement_timeout_ms));
  }
  if (mem_limit_mb > 0) {
    engine.set_mem_limit_bytes(static_cast<size_t>(mem_limit_mb) << 20);
    std::printf("ldv_server: per-query memory limit %lld MiB\n",
                static_cast<long long>(mem_limit_mb));
  }
  if (!wal_dir.empty()) {
    ldv::storage::WalOptions wal_options;
    wal_options.sync_mode = *parsed_sync;
    ldv::Result<std::unique_ptr<ldv::storage::Wal>> wal =
        ldv::storage::Wal::Open(wal_dir, wal_options, recovery_stats.next_lsn);
    if (!wal.ok()) return Fail(wal.status());
    ldv::net::EngineDurabilityOptions durability;
    durability.data_dir = data_dir;
    durability.checkpoint_every = checkpoint_every;
    engine.AttachWal(std::move(*wal), durability);
    std::printf("ldv_server: wal at %s (sync=%s, checkpoint-every=%lld)\n",
                wal_dir.c_str(), sync_mode.c_str(),
                static_cast<long long>(checkpoint_every));
  }

  // Replication (DESIGN.md §14). Any server with a WAL can feed standbys;
  // --replicate-from additionally makes this server a hot standby of the
  // named primary (read-only until promoted).
  std::unique_ptr<ldv::repl::ReplicationManager> repl_manager;
  std::unique_ptr<ldv::repl::StandbyReplicator> replicator;
  if (!replicate_from.empty() && wal_dir.empty()) {
    std::fprintf(stderr,
                 "ldv_server: --replicate-from requires --wal-dir (the "
                 "standby streams into its own durable log)\n");
    return 2;
  }
  if (engine.wal() != nullptr) {
    repl_manager =
        std::make_unique<ldv::repl::ReplicationManager>(engine.wal());
    engine.set_commit_ack_barrier([&repl_manager](uint64_t lsn) {
      return repl_manager->WaitDurable(lsn);
    });
    engine.set_wal_retire_floor(
        [&repl_manager] { return repl_manager->RetireFloor(); });
  }
  if (!replicate_from.empty()) {
    ldv::repl::StandbyReplicator::Options standby_options;
    standby_options.standby_name = standby_name;
    replicator = std::make_unique<ldv::repl::StandbyReplicator>(
        &engine, replicate_from, standby_options);
    repl_manager->set_role("standby");
  }

  // Handlers go in before the listener opens: a SIGTERM racing startup must
  // still drain instead of killing a half-started server.
  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  ldv::net::DbServer server(&engine, socket_path, server_options);
  if (repl_manager != nullptr) {
    server.set_repl_handler(
        [&repl_manager, &replicator](const ldv::net::DbRequest& request)
            -> ldv::Result<ldv::exec::ResultSet> {
          if (request.kind == ldv::net::RequestKind::kPromote &&
              replicator != nullptr) {
            // Drain the apply loop, flip writable; idempotent on repeat.
            const uint64_t applied = replicator->Promote();
            repl_manager->set_role("primary");
            return ldv::repl::MakePromoteResult("primary", applied);
          }
          return repl_manager->HandleRequest(request);
        });
    server.set_stats_augmenter([&repl_manager, &replicator](ldv::Json* stats) {
      if (replicator != nullptr && !replicator->promoted()) {
        replicator->AugmentStats(stats);
      } else {
        repl_manager->AugmentStats(stats);
      }
    });
  }
  ldv::Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::printf("ldv_server: listening on %s\n", socket_path.c_str());
  if (replicator != nullptr) {
    replicator->Start();
    std::printf("ldv_server: hot standby of %s (read-only until promoted)\n",
                replicate_from.c_str());
  }

  while (!g_stop.load()) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  // Graceful drain: stop accepting, finish in-flight requests, then make
  // the log durable before any snapshotting. The replication manager shuts
  // down first so committers blocked on standby acks wake up instead of
  // pinning the drain.
  if (repl_manager != nullptr) repl_manager->Shutdown();
  server.Stop();
  if (replicator != nullptr) replicator->Stop();
  ldv::Status flushed = engine.FlushWal();
  if (!flushed.ok()) return Fail(flushed);
  // Saves must not be sabotaged by an armed injector: the data files and
  // observability dumps are the run's durable outputs. Disabling keeps the
  // per-point call/injection counts, so fault.* metrics still come out.
  ldv::FaultInjector::Instance().Disable();
  if (!metrics_out.empty()) {
    ldv::Status written = ldv::obs::WriteGlobalMetrics(metrics_out);
    if (!written.ok()) return Fail(written);
    std::printf("ldv_server: wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    ldv::Status written = ldv::obs::TraceRecorder::WriteTo(trace_out);
    if (!written.ok()) return Fail(written);
    std::printf("ldv_server: wrote trace to %s\n", trace_out.c_str());
  }
  if (!wal_dir.empty() && !data_dir.empty()) {
    // Final checkpoint: snapshot + retire covered segments, so the next
    // start replays an empty tail.
    ldv::Status checkpointed = engine.Checkpoint();
    if (!checkpointed.ok()) return Fail(checkpointed);
    std::printf("ldv_server: checkpointed to %s\n", data_dir.c_str());
  } else if (!data_dir.empty()) {
    ldv::Status saved = ldv::storage::SaveDatabase(db, data_dir);
    if (!saved.ok()) return Fail(saved);
    std::printf("ldv_server: saved data files to %s\n", data_dir.c_str());
  }
  return 0;
}
